//! Abstract interpretation over pipelines: canonicalization, equivalence
//! classes, and machine-checkable pruning certificates.
//!
//! The campaign's pipeline space is the full cross product `component ×
//! component × reducer` — 107,632 pipelines on the shipped registry — and
//! a substantial fraction of it is provably redundant. This module turns
//! the contract facts ([`lc_core::Contract`]) into a static analysis that
//! partitions the whole space into equivalence classes *before* anything
//! is executed:
//!
//! 1. **Abstract state.** Each pipeline is interpreted over an abstract
//!    input shape: an interval lattice over chunk lengths ([`LenRange`],
//!    join = interval hull) plus the per-stage facts the contracts
//!    provide (word granularity, size class, expansion bound, zero and
//!    value-structure behavior). The shape gates the no-op rule below.
//! 2. **Exact rewriting.** Stage prefixes are de-fused
//!    (`Contract::fused_of`: DIFFMS = TCMS ∘ DIFF byte-for-byte) and
//!    canonicalized by a terminating rewrite system: inverse cancellation
//!    (`A` then `B` with `A.inverse_of == B`), idempotent-square
//!    collapse, no-op absorption (identity below the abstract length
//!    bound), and commutation sorting (pointwise word maps bubble before
//!    word permutations whose field size they divide — the PR 4 rule).
//!    Two prefixes with the same exact normal form feed *byte-identical*
//!    data to the reducer with identical accumulated statistics.
//! 3. **Pattern abstraction.** Reducers that declare a
//!    [`SizeDeterminant`] — RZE's output is a function of the
//!    zero/nonzero pattern of its words, RLE/RRE's of the
//!    adjacent-equality pattern — admit a coarser relation: scanning the
//!    exact normal form backwards from the reducer, a pointwise
//!    *bijection* whose word size divides the reducer's granularity
//!    preserves the equality pattern (and, if it fixes zero, the zero
//!    pattern), and a tuple permutation whose field size the granularity
//!    divides maps the pattern by a fixed, length-determined
//!    permutation. Pipelines with equal pattern normal forms produce
//!    equal *compressed sizes* and identical reducer kernel statistics
//!    on every input — their stage-1/2 timings may differ, which is why
//!    the campaign replays (rather than re-derives) timing for pruned
//!    members.
//!
//! Every non-representative member of a class carries a [`Certificate`]
//! naming the exact rewrite chain and the contract facts each step
//! relies on. [`check_certificates`] re-validates them without trusting
//! the canonicalizer: a structural layer re-derives every side condition
//! from the real contracts and replays the chain, and a differential
//! layer executes sampled classes of every certificate kind against the
//! adversarial corpus. The seeded-bug harness ([`run_absint_harness`])
//! proves the checker is not vacuous: every [`AbsintMutation`] — wrong
//! lattice join, dropped side conditions, merged permutations, lying
//! contract facts — is caught.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lc_core::{
    CommuteClass, Component, ComponentKind, Contract, KernelStats, SizeClass, SizeDeterminant,
    CHUNK_SIZE,
};
use lc_json::Value;

use crate::corpus;

// ---------------------------------------------------------------------------
// Abstract input shape
// ---------------------------------------------------------------------------

/// Interval lattice over possible chunk lengths (bytes). The abstract
/// interpreter folds every observed/declared chunk length through
/// [`LenRange::join`]; `⊤` is `[0, CHUNK_SIZE]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LenRange {
    /// Smallest possible chunk length.
    pub lo: usize,
    /// Largest possible chunk length.
    pub hi: usize,
}

impl LenRange {
    /// The top element: any chunk the framework can produce.
    pub fn top() -> Self {
        Self {
            lo: 0,
            hi: CHUNK_SIZE,
        }
    }

    /// Least upper bound (interval hull).
    pub fn join(self, other: Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Fold a set of concrete chunk lengths into the lattice. An empty
    /// set means "unknown" and yields ⊤. The `rules` table lets the
    /// mutation harness seed a wrong join (meet-instead-of-join on the
    /// upper bound), which mis-narrows the interval.
    pub fn from_lengths(lengths: &[usize], rules: &RuleTable) -> Self {
        let mut it = lengths.iter();
        let Some(&first) = it.next() else {
            return Self::top();
        };
        let mut acc = Self {
            lo: first,
            hi: first,
        };
        for &l in it {
            let v = Self { lo: l, hi: l };
            acc = if rules.join_narrows {
                // Seeded bug: "join" that narrows the upper bound.
                Self {
                    lo: acc.lo.max(v.lo),
                    hi: acc.hi.min(v.hi),
                }
            } else {
                acc.join(v)
            };
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Rule table (soundness switchboard for the mutation harness)
// ---------------------------------------------------------------------------

/// Which rewrite side conditions the canonicalizer honors. All `false`
/// (the [`RuleTable::SOUND`] constant) is the shipped behavior; each
/// `true` flag is one seeded absint bug for the harness, and the
/// (always-sound) certificate checker must catch every one of them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleTable {
    /// Wrong lattice join: the length interval narrows instead of
    /// widening, so no-op absorption fires on chunks that are too long.
    pub join_narrows: bool,
    /// No-op absorption ignores the abstract shape entirely.
    pub absorb_noop_unbounded: bool,
    /// Inverse cancellation fires on any adjacent equal pair, without an
    /// `inverse_of` witness.
    pub cancel_without_inverse: bool,
    /// Square collapse fires without an `idempotent` witness.
    pub collapse_without_idempotence: bool,
    /// Commutation sorting ignores the `word divides field` condition.
    pub commute_ignores_divisibility: bool,
    /// Opaque shufflers (BIT) are treated as word permutations.
    pub commute_opaque_as_perm: bool,
    /// Pattern drop ignores the `word divides granularity` condition.
    pub drop_ignores_divisibility: bool,
    /// Pattern drop for zero-pattern reducers ignores `fixes_zero`.
    pub drop_ignores_fixes_zero: bool,
    /// Tuple permutations are pattern-transparent even when the
    /// granularity does not divide the field size.
    pub tupl_ignores_granularity: bool,
    /// All tuple permutations collapse to one abstract permutation.
    pub merge_all_tupl_perms: bool,
    /// Zero-pattern reducers are canonicalized under the (weaker)
    /// equality-pattern relation.
    pub relation_confuses_zero_eq: bool,
}

impl RuleTable {
    /// The sound table: every side condition honored.
    pub const SOUND: RuleTable = RuleTable {
        join_narrows: false,
        absorb_noop_unbounded: false,
        cancel_without_inverse: false,
        collapse_without_idempotence: false,
        commute_ignores_divisibility: false,
        commute_opaque_as_perm: false,
        drop_ignores_divisibility: false,
        drop_ignores_fixes_zero: false,
        tupl_ignores_granularity: false,
        merge_all_tupl_perms: false,
        relation_confuses_zero_eq: false,
    };
}

// ---------------------------------------------------------------------------
// Rewrite steps and certificates
// ---------------------------------------------------------------------------

/// One application of a rewrite rule, naming the contract facts it
/// relies on. `at` is the position in the atom sequence the step was
/// applied at, so the checker can replay the chain deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteStep {
    /// `fused` was replaced by `base` then `post` (`Contract::fused_of`).
    Defuse {
        at: usize,
        fused: String,
        base: String,
        post: String,
    },
    /// The atom at `at` is the identity on every possible chunk:
    /// `noop_below == Some(bound)` and the abstract shape's upper length
    /// bound `len_hi < bound`.
    AbsorbNoop {
        at: usize,
        name: String,
        bound: usize,
        len_hi: usize,
    },
    /// `first` (at `at`) then `second` compose to the identity
    /// (`first.inverse_of == second`).
    CancelInverse {
        at: usize,
        first: String,
        second: String,
    },
    /// Two adjacent copies of an `idempotent` atom collapsed to one.
    CollapseIdempotent { at: usize, name: String },
    /// Adjacent `(perm, pointwise)` swapped to canonical `(pointwise,
    /// perm)` order (`Contract::commutes_with`).
    CommuteSwap {
        at: usize,
        perm: String,
        pointwise: String,
    },
    /// Pattern tier: a pointwise bijection whose word size divides the
    /// reducer granularity preserves the reducer-relevant pattern and
    /// was dropped.
    DropBijection { name: String, granularity: usize },
    /// Pattern tier: a tuple permutation whose field size the
    /// granularity divides maps the pattern by a fixed permutation and
    /// was kept symbolically.
    TuplPermutation { name: String, granularity: usize },
    /// Pattern tier: an atom with no pattern structure ended the
    /// backward scan; everything up to it must match byte-exactly.
    StopOpaque { name: String },
}

impl RewriteStep {
    /// Stable rule identifier for census counts and JSON.
    pub fn rule(&self) -> &'static str {
        match self {
            RewriteStep::Defuse { .. } => "defuse",
            RewriteStep::AbsorbNoop { .. } => "absorb-noop",
            RewriteStep::CancelInverse { .. } => "cancel-inverse",
            RewriteStep::CollapseIdempotent { .. } => "collapse-idempotent",
            RewriteStep::CommuteSwap { .. } => "commute-swap",
            RewriteStep::DropBijection { .. } => "drop-bijection",
            RewriteStep::TuplPermutation { .. } => "tupl-permutation",
            RewriteStep::StopOpaque { .. } => "stop-opaque",
        }
    }

    /// JSON object form.
    pub fn to_json(&self) -> Value {
        let mut fields: Vec<(&str, Value)> = vec![("rule", Value::from(self.rule()))];
        match self {
            RewriteStep::Defuse {
                at,
                fused,
                base,
                post,
            } => {
                fields.push(("at", Value::from(*at as u64)));
                fields.push(("fused", Value::from(fused.as_str())));
                fields.push(("base", Value::from(base.as_str())));
                fields.push(("post", Value::from(post.as_str())));
            }
            RewriteStep::AbsorbNoop {
                at,
                name,
                bound,
                len_hi,
            } => {
                fields.push(("at", Value::from(*at as u64)));
                fields.push(("component", Value::from(name.as_str())));
                fields.push(("bound", Value::from(*bound as u64)));
                fields.push(("len_hi", Value::from(*len_hi as u64)));
            }
            RewriteStep::CancelInverse { at, first, second } => {
                fields.push(("at", Value::from(*at as u64)));
                fields.push(("first", Value::from(first.as_str())));
                fields.push(("second", Value::from(second.as_str())));
            }
            RewriteStep::CollapseIdempotent { at, name } => {
                fields.push(("at", Value::from(*at as u64)));
                fields.push(("component", Value::from(name.as_str())));
            }
            RewriteStep::CommuteSwap {
                at,
                perm,
                pointwise,
            } => {
                fields.push(("at", Value::from(*at as u64)));
                fields.push(("perm", Value::from(perm.as_str())));
                fields.push(("pointwise", Value::from(pointwise.as_str())));
            }
            RewriteStep::DropBijection { name, granularity }
            | RewriteStep::TuplPermutation { name, granularity } => {
                fields.push(("component", Value::from(name.as_str())));
                fields.push(("granularity", Value::from(*granularity as u64)));
            }
            RewriteStep::StopOpaque { name } => {
                fields.push(("component", Value::from(name.as_str())));
            }
        }
        Value::object(fields)
    }
}

/// Which equivalence relation a class is certified under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Members feed byte-identical data to the reducer with identical
    /// accumulated prefix statistics: everything about the measurement
    /// is equal.
    Exact,
    /// Members agree on the reducer-relevant input pattern at the given
    /// word granularity: compressed sizes and reducer statistics are
    /// equal on every input; prefix timings may differ and are replayed.
    Pattern {
        /// The reducer's declared size determinant.
        relation: SizeDeterminant,
        /// The reducer's word size, at which the pattern is evaluated.
        granularity: usize,
    },
}

impl Tier {
    /// Stable label.
    pub fn label(&self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::Pattern {
                relation: SizeDeterminant::ZeroPattern,
                ..
            } => "pattern-zero",
            Tier::Pattern { .. } => "pattern-equality",
        }
    }
}

/// Machine-checkable proof that `member` is redundant given
/// `representative`: both canonicalize to `normal_form` via the recorded
/// rewrite chains, every step of which names the contract facts it uses.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// The pruned pipeline, as `(s1, s2, s3)` positions in the space.
    pub member: (usize, usize, usize),
    /// The measured pipeline (least dense index in the class).
    pub representative: (usize, usize, usize),
    /// The relation the equivalence holds under.
    pub tier: Tier,
    /// Rewrite chain canonicalizing the member's prefix.
    pub member_steps: Vec<RewriteStep>,
    /// Rewrite chain canonicalizing the representative's prefix.
    pub rep_steps: Vec<RewriteStep>,
    /// Rendered normal form both chains arrive at.
    pub normal_form: String,
}

impl Certificate {
    /// JSON object form.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("member", triple_json(self.member)),
            ("representative", triple_json(self.representative)),
            ("tier", Value::from(self.tier.label())),
            ("normal_form", Value::from(self.normal_form.as_str())),
            (
                "member_steps",
                Value::array(self.member_steps.iter().map(RewriteStep::to_json)),
            ),
            (
                "rep_steps",
                Value::array(self.rep_steps.iter().map(RewriteStep::to_json)),
            ),
        ])
    }
}

fn triple_json(t: (usize, usize, usize)) -> Value {
    Value::array([
        Value::from(t.0 as u64),
        Value::from(t.1 as u64),
        Value::from(t.2 as u64),
    ])
}

// ---------------------------------------------------------------------------
// The canonicalizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Atom {
    name: String,
    c: Contract,
}

fn atom_of(c: &Arc<dyn Component>) -> Atom {
    Atom {
        name: c.name().to_string(),
        c: c.contract(),
    }
}

fn is_pointwise_bijection(c: &Contract) -> bool {
    c.commute == CommuteClass::PointwiseWordMap
        && c.exact_inverse
        && c.size == SizeClass::Preserving
}

fn is_word_perm(c: &Contract, rules: &RuleTable) -> bool {
    c.size == SizeClass::Preserving
        && (c.commute == CommuteClass::WordPermutation
            || (rules.commute_opaque_as_perm
                && c.commute == CommuteClass::Opaque
                && c.kind == ComponentKind::Shuffler))
}

/// De-fuse stage atoms using `fused_of` witnesses. A fused component is
/// only expanded when both named halves exist in the component set (a
/// restricted space keeps it opaque — conservative, still sound).
fn defuse(
    stages: &[&Atom],
    by_name: &HashMap<String, Atom>,
    steps: &mut Vec<RewriteStep>,
) -> Vec<Atom> {
    let mut atoms = Vec::with_capacity(stages.len() + 2);
    for stage in stages {
        if let Some((base, post)) = stage.c.fused_of {
            if let (Some(b), Some(p)) = (by_name.get(base), by_name.get(post)) {
                steps.push(RewriteStep::Defuse {
                    at: atoms.len(),
                    fused: stage.name.clone(),
                    base: base.to_string(),
                    post: post.to_string(),
                });
                atoms.push(b.clone());
                atoms.push(p.clone());
                continue;
            }
        }
        atoms.push((*stage).clone());
    }
    atoms
}

/// Run the exact rewrite system to fixpoint. Terminates: every rule
/// either removes an atom or strictly reduces the number of
/// `(permutation, pointwise)` inversions.
fn exact_fixpoint(
    atoms: &mut Vec<Atom>,
    shape: LenRange,
    rules: &RuleTable,
    steps: &mut Vec<RewriteStep>,
) {
    loop {
        let mut changed = false;

        // No-op absorption: identity on every chunk the shape allows.
        let mut i = 0;
        while i < atoms.len() {
            if let Some(bound) = atoms[i].c.noop_below {
                if rules.absorb_noop_unbounded || shape.hi < bound {
                    steps.push(RewriteStep::AbsorbNoop {
                        at: i,
                        name: atoms[i].name.clone(),
                        bound,
                        len_hi: shape.hi,
                    });
                    atoms.remove(i);
                    changed = true;
                    continue;
                }
            }
            i += 1;
        }

        // Inverse cancellation: A then B with A.inverse_of == B.
        let mut i = 0;
        while i + 1 < atoms.len() {
            let witnessed = atoms[i]
                .c
                .inverse_of
                .is_some_and(|b| b == atoms[i + 1].name);
            if witnessed || (rules.cancel_without_inverse && atoms[i].name == atoms[i + 1].name) {
                steps.push(RewriteStep::CancelInverse {
                    at: i,
                    first: atoms[i].name.clone(),
                    second: atoms[i + 1].name.clone(),
                });
                atoms.drain(i..i + 2);
                changed = true;
                continue;
            }
            i += 1;
        }

        // Idempotent-square collapse.
        let mut i = 0;
        while i + 1 < atoms.len() {
            if atoms[i].name == atoms[i + 1].name
                && (atoms[i].c.idempotent || rules.collapse_without_idempotence)
            {
                steps.push(RewriteStep::CollapseIdempotent {
                    at: i,
                    name: atoms[i].name.clone(),
                });
                atoms.remove(i);
                changed = true;
                continue;
            }
            i += 1;
        }

        // Commutation sorting: pointwise maps before permutations.
        let mut i = 0;
        while i + 1 < atoms.len() {
            let (a, b) = (&atoms[i], &atoms[i + 1]);
            let commute_ok =
                rules.commute_ignores_divisibility || a.c.word_size % b.c.word_size == 0;
            if is_word_perm(&a.c, rules)
                && is_pointwise_bijection(&b.c)
                && b.c.size == SizeClass::Preserving
                && commute_ok
            {
                steps.push(RewriteStep::CommuteSwap {
                    at: i,
                    perm: a.name.clone(),
                    pointwise: b.name.clone(),
                });
                atoms.swap(i, i + 1);
                changed = true;
            }
            i += 1;
        }

        if !changed {
            break;
        }
    }
}

/// Backward pattern scan from the reducer. Returns `(residual, perms)`:
/// the atom names that must match byte-exactly, and the symbolic
/// permutation names applied after them (in application order).
fn pattern_scan(
    atoms: &[Atom],
    relation: SizeDeterminant,
    gran: usize,
    rules: &RuleTable,
    steps: &mut Vec<RewriteStep>,
) -> (Vec<String>, Vec<String>) {
    let mut perms_rev: Vec<String> = Vec::new();
    let mut residual: Vec<String> = Vec::new();
    for i in (0..atoms.len()).rev() {
        let a = &atoms[i];
        let div_ok = rules.drop_ignores_divisibility || gran.is_multiple_of(a.c.word_size);
        let zero_ok = relation != SizeDeterminant::ZeroPattern
            || a.c.fixes_zero
            || rules.drop_ignores_fixes_zero;
        if is_pointwise_bijection(&a.c) && div_ok && zero_ok {
            steps.push(RewriteStep::DropBijection {
                name: a.name.clone(),
                granularity: gran,
            });
            continue;
        }
        let perm_ok = rules.tupl_ignores_granularity || a.c.word_size.is_multiple_of(gran);
        if is_word_perm(&a.c, rules) && perm_ok {
            steps.push(RewriteStep::TuplPermutation {
                name: a.name.clone(),
                granularity: gran,
            });
            perms_rev.push(if rules.merge_all_tupl_perms {
                "TUPL*".to_string()
            } else {
                a.name.clone()
            });
            continue;
        }
        steps.push(RewriteStep::StopOpaque {
            name: a.name.clone(),
        });
        residual = atoms[..=i].iter().map(|x| x.name.clone()).collect();
        break;
    }
    perms_rev.reverse();
    (residual, perms_rev)
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum NfKey {
    Exact {
        atoms: Vec<String>,
        reducer: String,
    },
    Pattern {
        residual: Vec<String>,
        perms: Vec<String>,
        relation: SizeDeterminant,
        gran: usize,
        reducer: String,
    },
}

fn render_nf(key: &NfKey) -> String {
    match key {
        NfKey::Exact { atoms, reducer } => {
            format!("[{}] > {reducer} (exact)", atoms.join(" "))
        }
        NfKey::Pattern {
            residual,
            perms,
            relation,
            gran,
            reducer,
        } => {
            let rel = match relation {
                SizeDeterminant::ZeroPattern => "zero",
                SizeDeterminant::EqualityPattern => "eq",
                SizeDeterminant::Opaque => "opaque",
            };
            format!(
                "[{}] perm[{}] > {reducer} ({rel}@{gran})",
                residual.join(" "),
                perms.join(" ")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

/// The full-space partition: class ids, certificates for every pruned
/// member, and canonicalization bookkeeping.
#[derive(Debug, Clone)]
pub struct ClassMap {
    /// Stage-1/2 component count (`nc`).
    pub components: usize,
    /// Reducer count (`nr`).
    pub reducers: usize,
    /// Concrete chunk lengths the shape was joined from (empty = ⊤).
    pub lengths: Vec<usize>,
    /// The joined abstract input shape.
    pub shape: LenRange,
    /// Dense pipeline index `(s1·nc + s2)·nr + s3` → class id.
    pub class_of: Vec<u32>,
    /// Number of equivalence classes.
    pub classes: usize,
    /// One certificate per non-representative member.
    pub certificates: Vec<Certificate>,
    /// Rewrite-rule application counts across the whole space.
    pub rule_counts: Vec<(&'static str, usize)>,
    /// Wall time spent classifying.
    pub runtime: Duration,
}

impl ClassMap {
    /// Total pipelines in the space.
    pub fn pipelines(&self) -> usize {
        self.components * self.components * self.reducers
    }

    /// Pipelines pruned (non-representative members).
    pub fn pruned(&self) -> usize {
        self.certificates.len()
    }

    /// Dense pipeline index of `(s1, s2, s3)`.
    pub fn index(&self, p: (usize, usize, usize)) -> usize {
        (p.0 * self.components + p.1) * self.reducers + p.2
    }

    /// FNV-1a fingerprint over the sorted `(pruned, representative)`
    /// dense-index pairs — the campaign journal records this so resumes
    /// refuse a mismatched class map.
    pub fn fingerprint(&self) -> u64 {
        let mut pairs: Vec<(u64, u64)> = self
            .certificates
            .iter()
            .map(|c| {
                (
                    self.index(c.member) as u64,
                    self.index(c.representative) as u64,
                )
            })
            .collect();
        pairs.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (a, b) in pairs {
            eat(a);
            eat(b);
        }
        h
    }
}

/// Partition the pipeline space `components × components × reducers`
/// into equivalence classes. `lengths` are the concrete chunk lengths
/// the campaign will feed (empty = unknown = ⊤); `rules` is
/// [`RuleTable::SOUND`] outside the mutation harness.
pub fn classify(
    components: &[Arc<dyn Component>],
    reducers: &[Arc<dyn Component>],
    lengths: &[usize],
    rules: &RuleTable,
) -> ClassMap {
    let t0 = Instant::now();
    let shape = LenRange::from_lengths(lengths, rules);
    let nc = components.len();
    let nr = reducers.len();
    let stage_atoms: Vec<Atom> = components.iter().map(atom_of).collect();
    let reducer_atoms: Vec<Atom> = reducers.iter().map(atom_of).collect();
    let by_name: HashMap<String, Atom> = stage_atoms
        .iter()
        .map(|a| (a.name.clone(), a.clone()))
        .collect();

    // Per-prefix exact canonicalization, then per-(relation, granularity)
    // pattern scans cached per prefix: (residual atom names, symbolic
    // permutation names, the rewrite steps that produced them).
    type PatternScan = (Vec<String>, Vec<String>, Vec<RewriteStep>);
    struct Prefix {
        atoms: Vec<Atom>,
        steps: Vec<RewriteStep>,
        pattern: HashMap<(SizeDeterminant, usize), PatternScan>,
    }
    let mut prefixes: Vec<Prefix> = Vec::with_capacity(nc * nc);
    for i1 in 0..nc {
        for i2 in 0..nc {
            let mut steps = Vec::new();
            let mut atoms = defuse(&[&stage_atoms[i1], &stage_atoms[i2]], &by_name, &mut steps);
            exact_fixpoint(&mut atoms, shape, rules, &mut steps);
            prefixes.push(Prefix {
                atoms,
                steps,
                pattern: HashMap::new(),
            });
        }
    }

    // Group pipelines by normal-form key.
    let mut groups: HashMap<NfKey, Vec<usize>> = HashMap::new();
    for i1 in 0..nc {
        for i2 in 0..nc {
            let pidx = i1 * nc + i2;
            for (ir, r) in reducer_atoms.iter().enumerate() {
                let mut relation = r.c.size_determinant;
                if rules.relation_confuses_zero_eq && relation == SizeDeterminant::ZeroPattern {
                    relation = SizeDeterminant::EqualityPattern;
                }
                let dense = (i1 * nc + i2) * nr + ir;
                let key = if relation == SizeDeterminant::Opaque {
                    NfKey::Exact {
                        atoms: prefixes[pidx]
                            .atoms
                            .iter()
                            .map(|a| a.name.clone())
                            .collect(),
                        reducer: r.name.clone(),
                    }
                } else {
                    let gran = r.c.word_size;
                    let Prefix { atoms, pattern, .. } = &mut prefixes[pidx];
                    let (residual, perms, _) = pattern
                        .entry((relation, gran))
                        .or_insert_with(|| {
                            let mut psteps = Vec::new();
                            let (res, perms) =
                                pattern_scan(atoms, relation, gran, rules, &mut psteps);
                            (res, perms, psteps)
                        })
                        .clone();
                    NfKey::Pattern {
                        residual,
                        perms,
                        relation,
                        gran,
                        reducer: r.name.clone(),
                    }
                };
                groups.entry(key).or_default().push(dense);
            }
        }
    }

    // Deterministic class ids: sort classes by least member.
    let mut classes: Vec<(NfKey, Vec<usize>)> = groups.into_iter().collect();
    for (_, members) in classes.iter_mut() {
        members.sort_unstable();
    }
    classes.sort_unstable_by_key(|(_, members)| members[0]);

    let mut class_of = vec![0u32; nc * nc * nr];
    let mut certificates = Vec::new();
    let mut rule_tally: HashMap<&'static str, usize> = HashMap::new();

    // Tally exact-phase rules once per prefix and pattern-phase rules
    // once per (prefix, relation, granularity) they were computed for.
    for p in &prefixes {
        for s in &p.steps {
            *rule_tally.entry(s.rule()).or_default() += 1;
        }
        for (_, _, psteps) in p.pattern.values() {
            for s in psteps {
                *rule_tally.entry(s.rule()).or_default() += 1;
            }
        }
    }

    let unpack = |dense: usize| -> (usize, usize, usize) {
        let ir = dense % nr;
        let rest = dense / nr;
        (rest / nc, rest % nc, ir)
    };

    for (cid, (key, members)) in classes.iter().enumerate() {
        let rep_dense = members[0];
        let rep = unpack(rep_dense);
        for &dense in members.iter() {
            class_of[dense] = cid as u32;
        }
        if members.len() == 1 {
            continue;
        }
        let tier = match key {
            NfKey::Exact { .. } => Tier::Exact,
            NfKey::Pattern { relation, gran, .. } => Tier::Pattern {
                relation: *relation,
                granularity: *gran,
            },
        };
        let nf = render_nf(key);
        let steps_of = |p: (usize, usize, usize)| -> Vec<RewriteStep> {
            let prefix = &prefixes[p.0 * nc + p.1];
            let mut s = prefix.steps.clone();
            if let Tier::Pattern {
                relation,
                granularity,
            } = tier
            {
                if let Some((_, _, psteps)) = prefix.pattern.get(&(relation, granularity)) {
                    s.extend(psteps.iter().cloned());
                }
            }
            s
        };
        let rep_steps = steps_of(rep);
        for &dense in members.iter().skip(1) {
            let member = unpack(dense);
            certificates.push(Certificate {
                member,
                representative: rep,
                tier,
                member_steps: steps_of(member),
                rep_steps: rep_steps.clone(),
                normal_form: nf.clone(),
            });
        }
    }

    let mut rule_counts: Vec<(&'static str, usize)> = rule_tally.into_iter().collect();
    rule_counts.sort_unstable();

    ClassMap {
        components: nc,
        reducers: nr,
        lengths: lengths.to_vec(),
        shape,
        class_of,
        classes: classes.len(),
        certificates,
        rule_counts,
        runtime: t0.elapsed(),
    }
}

// ---------------------------------------------------------------------------
// Census
// ---------------------------------------------------------------------------

/// Human/CI-facing summary of a [`ClassMap`].
#[derive(Debug, Clone)]
pub struct Census {
    /// Total pipelines in the space.
    pub pipelines: usize,
    /// Equivalence classes.
    pub classes: usize,
    /// Certified-redundant pipelines (`pipelines − classes`).
    pub pruned: usize,
    /// Pruned members certified at the exact tier.
    pub exact_pruned: usize,
    /// Pruned members certified at a pattern tier.
    pub pattern_pruned: usize,
    /// Per-reducer `(name, classes, pruned)` rows.
    pub per_reducer: Vec<(String, usize, usize)>,
    /// Rewrite-rule application counts.
    pub rule_counts: Vec<(&'static str, usize)>,
    /// The abstract shape the classification ran under.
    pub shape: LenRange,
    /// Class-map fingerprint (journal compatibility key).
    pub fingerprint: u64,
    /// Classification wall time.
    pub runtime: Duration,
}

/// Summarize `map` for the space it was built from.
pub fn census(map: &ClassMap, reducers: &[Arc<dyn Component>]) -> Census {
    let nr = map.reducers;
    let nc = map.components;
    let mut exact_pruned = 0;
    let mut pattern_pruned = 0;
    let mut per_reducer_pruned = vec![0usize; nr];
    for cert in &map.certificates {
        match cert.tier {
            Tier::Exact => exact_pruned += 1,
            Tier::Pattern { .. } => pattern_pruned += 1,
        }
        per_reducer_pruned[cert.member.2] += 1;
    }
    let per_reducer = reducers
        .iter()
        .enumerate()
        .map(|(ir, r)| {
            let total = nc * nc;
            (
                r.name().to_string(),
                total - per_reducer_pruned[ir],
                per_reducer_pruned[ir],
            )
        })
        .collect();
    Census {
        pipelines: map.pipelines(),
        classes: map.classes,
        pruned: map.pruned(),
        exact_pruned,
        pattern_pruned,
        per_reducer,
        rule_counts: map.rule_counts.clone(),
        shape: map.shape,
        fingerprint: map.fingerprint(),
        runtime: map.runtime,
    }
}

impl Census {
    /// JSON form, stable field order (schema `lc-analyze-canonical/v1`).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("schema", Value::from("lc-analyze-canonical/v1")),
            ("pipelines", Value::from(self.pipelines as u64)),
            ("classes", Value::from(self.classes as u64)),
            ("pruned", Value::from(self.pruned as u64)),
            ("exact_pruned", Value::from(self.exact_pruned as u64)),
            ("pattern_pruned", Value::from(self.pattern_pruned as u64)),
            (
                "shape",
                Value::object([
                    ("lo", Value::from(self.shape.lo as u64)),
                    ("hi", Value::from(self.shape.hi as u64)),
                ]),
            ),
            (
                "fingerprint",
                Value::from(format!("{:016x}", self.fingerprint)),
            ),
            (
                "rule_counts",
                Value::object(
                    self.rule_counts
                        .iter()
                        .map(|(rule, n)| (*rule, Value::from(*n as u64))),
                ),
            ),
            (
                "per_reducer",
                Value::array(self.per_reducer.iter().map(|(name, classes, pruned)| {
                    Value::object([
                        ("reducer", Value::from(name.as_str())),
                        ("classes", Value::from(*classes as u64)),
                        ("pruned", Value::from(*pruned as u64)),
                    ])
                })),
            ),
            ("runtime_ms", Value::from(self.runtime.as_secs_f64() * 1e3)),
        ])
    }

    /// Plain-text census table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "canonicalization: {} pipelines -> {} classes ({} certified-redundant: {} exact, {} pattern)\n",
            self.pipelines, self.classes, self.pruned, self.exact_pruned, self.pattern_pruned
        ));
        out.push_str(&format!(
            "shape: chunk length in [{}, {}]   class-map fingerprint: {:016x}\n",
            self.shape.lo, self.shape.hi, self.fingerprint
        ));
        out.push_str("rewrite rules applied:\n");
        for (rule, n) in &self.rule_counts {
            out.push_str(&format!("  {rule:<20} {n}\n"));
        }
        out.push_str("per-reducer classes (pruned):\n");
        for (name, classes, pruned) in &self.per_reducer {
            if *pruned > 0 {
                out.push_str(&format!("  {name:<10} {classes:>6} ({pruned} pruned)\n"));
            }
        }
        let unpruned: usize = self.per_reducer.iter().filter(|(_, _, p)| *p == 0).count();
        if unpruned > 0 {
            out.push_str(&format!(
                "  ({unpruned} reducers with no pruned pipelines omitted)\n"
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Certificate checker
// ---------------------------------------------------------------------------

/// How much differential work the checker does on top of the full
/// structural pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckDepth {
    /// A couple of sampled classes per certificate kind — test-suite
    /// budget.
    Quick,
    /// More samples per kind plus larger member caps — CI budget.
    Full,
}

/// One rejected certificate.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// The certificate's member pipeline.
    pub member: (usize, usize, usize),
    /// `"structural"` or `"differential"`.
    pub layer: &'static str,
    /// What failed.
    pub detail: String,
}

/// Checker outcome: every certificate structurally validated, sampled
/// classes of every kind differentially executed.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Certificates examined (all of them).
    pub certificates: usize,
    /// Distinct certificate kinds (tier × rule set) seen.
    pub kinds: usize,
    /// Classes executed differentially.
    pub differential_classes: usize,
    /// Rejections (empty = all certificates valid).
    pub failures: Vec<CheckFailure>,
    /// Checker wall time.
    pub runtime: Duration,
}

impl CheckReport {
    /// `true` when every certificate passed both layers.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// JSON object form.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("certificates", Value::from(self.certificates as u64)),
            ("kinds", Value::from(self.kinds as u64)),
            (
                "differential_classes",
                Value::from(self.differential_classes as u64),
            ),
            ("clean", Value::from(self.is_clean())),
            (
                "failures",
                Value::array(self.failures.iter().map(|f| {
                    Value::object([
                        ("member", triple_json(f.member)),
                        ("layer", Value::from(f.layer)),
                        ("detail", Value::from(f.detail.as_str())),
                    ])
                })),
            ),
            ("runtime_ms", Value::from(self.runtime.as_secs_f64() * 1e3)),
        ])
    }
}

/// Replay one exact-phase rewrite chain against the real contracts,
/// verifying every side condition. Returns the final atom names or the
/// first violated fact.
fn replay_exact(
    start: [&Atom; 2],
    steps: &[RewriteStep],
    by_name: &HashMap<String, Atom>,
    sound_shape: LenRange,
) -> Result<Vec<String>, String> {
    let mut state: Vec<Atom> = vec![start[0].clone(), start[1].clone()];
    let contract = |name: &str| -> Result<Contract, String> {
        by_name
            .get(name)
            .map(|a| a.c.clone())
            .ok_or_else(|| format!("unknown component {name}"))
    };
    for step in steps {
        match step {
            RewriteStep::Defuse {
                at,
                fused,
                base,
                post,
            } => {
                if state.get(*at).map(|a| a.name.as_str()) != Some(fused.as_str()) {
                    return Err(format!("defuse: state[{at}] is not {fused}"));
                }
                let c = contract(fused)?;
                if c.fused_of != Some((base.as_str(), post.as_str())) {
                    return Err(format!(
                        "defuse: {fused} does not declare fused_of ({base}, {post})"
                    ));
                }
                let b = by_name
                    .get(base)
                    .ok_or_else(|| format!("defuse: {base} not in set"))?;
                let p = by_name
                    .get(post)
                    .ok_or_else(|| format!("defuse: {post} not in set"))?;
                state.splice(*at..*at + 1, [b.clone(), p.clone()]);
            }
            RewriteStep::AbsorbNoop {
                at,
                name,
                bound,
                len_hi: _,
            } => {
                if state.get(*at).map(|a| a.name.as_str()) != Some(name.as_str()) {
                    return Err(format!("absorb-noop: state[{at}] is not {name}"));
                }
                let c = contract(name)?;
                if c.noop_below != Some(*bound) {
                    return Err(format!(
                        "absorb-noop: {name} does not declare noop_below {bound}"
                    ));
                }
                if sound_shape.hi >= *bound {
                    return Err(format!(
                        "absorb-noop: shape hi {} is not below bound {bound} for {name}",
                        sound_shape.hi
                    ));
                }
                state.remove(*at);
            }
            RewriteStep::CancelInverse { at, first, second } => {
                if state.get(*at).map(|a| a.name.as_str()) != Some(first.as_str())
                    || state.get(*at + 1).map(|a| a.name.as_str()) != Some(second.as_str())
                {
                    return Err(format!(
                        "cancel-inverse: state[{at}..] is not ({first}, {second})"
                    ));
                }
                let c = contract(first)?;
                if c.inverse_of != Some(second.as_str()) {
                    return Err(format!(
                        "cancel-inverse: {first} does not declare inverse_of {second}"
                    ));
                }
                state.drain(*at..*at + 2);
            }
            RewriteStep::CollapseIdempotent { at, name } => {
                if state.get(*at).map(|a| a.name.as_str()) != Some(name.as_str())
                    || state.get(*at + 1).map(|a| a.name.as_str()) != Some(name.as_str())
                {
                    return Err(format!(
                        "collapse-idempotent: state[{at}..] is not ({name}, {name})"
                    ));
                }
                let c = contract(name)?;
                if !c.idempotent {
                    return Err(format!("collapse-idempotent: {name} is not idempotent"));
                }
                state.remove(*at);
            }
            RewriteStep::CommuteSwap {
                at,
                perm,
                pointwise,
            } => {
                if state.get(*at).map(|a| a.name.as_str()) != Some(perm.as_str())
                    || state.get(*at + 1).map(|a| a.name.as_str()) != Some(pointwise.as_str())
                {
                    return Err(format!(
                        "commute-swap: state[{at}..] is not ({perm}, {pointwise})"
                    ));
                }
                let cp = contract(perm)?;
                let cw = contract(pointwise)?;
                if cp.commute != CommuteClass::WordPermutation
                    || cw.commute != CommuteClass::PointwiseWordMap
                    || !cp.commutes_with(&cw)
                {
                    return Err(format!(
                        "commute-swap: {perm} and {pointwise} do not commute"
                    ));
                }
                state.swap(*at, *at + 1);
            }
            // Pattern-phase steps are not replayed: the checker
            // re-derives the pattern normal form itself (soundly) from
            // the exact atoms below.
            RewriteStep::DropBijection { .. }
            | RewriteStep::TuplPermutation { .. }
            | RewriteStep::StopOpaque { .. } => {}
        }
    }
    Ok(state.into_iter().map(|a| a.name).collect())
}

/// A certificate's kind: its tier plus the set of rewrite rules its
/// chains rely on. Differential sampling covers every kind.
fn cert_kind(cert: &Certificate) -> String {
    let mut rules: Vec<&'static str> = cert
        .member_steps
        .iter()
        .chain(cert.rep_steps.iter())
        .map(RewriteStep::rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    format!("{}:{}", cert.tier.label(), rules.join(","))
}

fn encode_with(c: &dyn Component, x: &[u8]) -> (Vec<u8>, KernelStats) {
    let mut out = Vec::new();
    let mut stats = KernelStats::new();
    c.encode_chunk(x, &mut out, &mut stats);
    (out, stats)
}

fn add_stats(a: &KernelStats, b: &KernelStats) -> KernelStats {
    let mut s = *a;
    s.merge(b);
    s
}

/// Validate certificates against the real component set: a structural
/// pass over *every* certificate (side conditions re-derived from the
/// contracts, chains replayed, normal forms recomputed with the sound
/// rules) and a differential pass executing sampled classes of every
/// certificate kind on the adversarial corpus.
pub fn check_certificates(
    components: &[Arc<dyn Component>],
    reducers: &[Arc<dyn Component>],
    map: &ClassMap,
    depth: CheckDepth,
) -> CheckReport {
    let t0 = Instant::now();
    let stage_atoms: Vec<Atom> = components.iter().map(atom_of).collect();
    let by_name: HashMap<String, Atom> = stage_atoms
        .iter()
        .map(|a| (a.name.clone(), a.clone()))
        .collect();
    let sound_shape = LenRange::from_lengths(&map.lengths, &RuleTable::SOUND);
    let mut failures = Vec::new();

    // ---- structural pass: every certificate ----
    for cert in &map.certificates {
        if let Err(detail) =
            check_one_structural(cert, &stage_atoms, reducers, &by_name, sound_shape)
        {
            failures.push(CheckFailure {
                member: cert.member,
                layer: "structural",
                detail,
            });
        }
    }

    // ---- differential pass: sampled classes per certificate kind ----
    // Group certificates into classes by representative, then index the
    // classes by kind.
    let mut classes: HashMap<(usize, usize, usize), Vec<&Certificate>> = HashMap::new();
    for cert in &map.certificates {
        classes.entry(cert.representative).or_default().push(cert);
    }
    let mut by_kind: HashMap<String, Vec<(usize, usize, usize)>> = HashMap::new();
    for (rep, certs) in &classes {
        for cert in certs {
            by_kind.entry(cert_kind(cert)).or_default().push(*rep);
        }
    }
    let kinds = by_kind.len();
    let (classes_per_kind, members_cap) = match depth {
        CheckDepth::Quick => (2usize, 3usize),
        CheckDepth::Full => (6usize, 6usize),
    };
    // Certificates only claim equivalence on chunks the abstract shape
    // admits (no-op absorption depends on it), so the differential corpus
    // is filtered to the shape the classification ran under.
    let mut inputs = corpus_for_checking(depth);
    inputs.retain(|x| x.len() >= sound_shape.lo && x.len() <= sound_shape.hi);
    let mut sampled: Vec<(usize, usize, usize)> = Vec::new();
    let mut kind_names: Vec<&String> = by_kind.keys().collect();
    kind_names.sort_unstable();
    for kind in kind_names {
        let mut reps = by_kind[kind].clone();
        reps.sort_unstable();
        reps.dedup();
        // Deterministic spread: first, last, and evenly spaced between.
        let n = reps.len().min(classes_per_kind);
        for k in 0..n {
            let idx = if n == 1 {
                0
            } else {
                k * (reps.len() - 1) / (n - 1)
            };
            sampled.push(reps[idx]);
        }
    }
    sampled.sort_unstable();
    sampled.dedup();
    let differential_classes = sampled.len();
    for rep in sampled {
        let certs = &classes[&rep];
        let members: Vec<&&Certificate> = certs.iter().take(members_cap).collect();
        for cert in members {
            if let Err(detail) = check_one_differential(cert, components, reducers, &inputs) {
                failures.push(CheckFailure {
                    member: cert.member,
                    layer: "differential",
                    detail,
                });
            }
        }
    }

    CheckReport {
        certificates: map.certificates.len(),
        kinds,
        differential_classes,
        failures,
        runtime: t0.elapsed(),
    }
}

fn check_one_structural(
    cert: &Certificate,
    stage_atoms: &[Atom],
    reducers: &[Arc<dyn Component>],
    by_name: &HashMap<String, Atom>,
    sound_shape: LenRange,
) -> Result<(), String> {
    let (m1, m2, mr) = cert.member;
    let (r1, r2, rr) = cert.representative;
    if mr != rr {
        return Err("member and representative use different reducers".to_string());
    }
    let reducer = reducers
        .get(mr)
        .ok_or_else(|| format!("reducer index {mr} out of range"))?;
    let rc = reducer.contract();

    let member_atoms = replay_exact(
        [&stage_atoms[m1], &stage_atoms[m2]],
        &cert.member_steps,
        by_name,
        sound_shape,
    )?;
    let rep_atoms = replay_exact(
        [&stage_atoms[r1], &stage_atoms[r2]],
        &cert.rep_steps,
        by_name,
        sound_shape,
    )?;

    match cert.tier {
        Tier::Exact => {
            if member_atoms != rep_atoms {
                return Err(format!(
                    "exact normal forms differ: [{}] vs [{}]",
                    member_atoms.join(" "),
                    rep_atoms.join(" ")
                ));
            }
        }
        Tier::Pattern {
            relation,
            granularity,
        } => {
            if rc.size_determinant != relation {
                return Err(format!(
                    "tier claims {:?} but reducer {} declares {:?}",
                    relation,
                    reducer.name(),
                    rc.size_determinant
                ));
            }
            if rc.word_size != granularity {
                return Err(format!(
                    "tier granularity {granularity} != reducer word size {}",
                    rc.word_size
                ));
            }
            // Re-derive the pattern normal forms with the sound scanner.
            let atoms_of = |names: &[String]| -> Result<Vec<Atom>, String> {
                names
                    .iter()
                    .map(|n| {
                        by_name
                            .get(n)
                            .cloned()
                            .ok_or_else(|| format!("unknown component {n}"))
                    })
                    .collect()
            };
            let mut scratch = Vec::new();
            let m = pattern_scan(
                &atoms_of(&member_atoms)?,
                relation,
                granularity,
                &RuleTable::SOUND,
                &mut scratch,
            );
            let r = pattern_scan(
                &atoms_of(&rep_atoms)?,
                relation,
                granularity,
                &RuleTable::SOUND,
                &mut scratch,
            );
            if m != r {
                return Err(format!(
                    "pattern normal forms differ: residual/perm ({:?} {:?}) vs ({:?} {:?})",
                    m.0, m.1, r.0, r.1
                ));
            }
        }
    }
    Ok(())
}

/// Execute a certificate on real data: the member and representative
/// prefixes (and the shared reducer) run on every corpus input, and the
/// tier's guarantees are asserted byte-for-byte.
fn check_one_differential(
    cert: &Certificate,
    components: &[Arc<dyn Component>],
    reducers: &[Arc<dyn Component>],
    inputs: &[Vec<u8>],
) -> Result<(), String> {
    let (m1, m2, mr) = cert.member;
    let (r1, r2, _) = cert.representative;
    let reducer = &reducers[mr];
    for x in inputs {
        let run_prefix = |s1: usize, s2: usize| -> (Vec<u8>, KernelStats) {
            let (y1, st1) = encode_with(components[s1].as_ref(), x);
            let (y2, st2) = encode_with(components[s2].as_ref(), &y1);
            (y2, add_stats(&st1, &st2))
        };
        let (my, mstats) = run_prefix(m1, m2);
        let (ry, rstats) = run_prefix(r1, r2);
        let (mz, mrs) = encode_with(reducer.as_ref(), &my);
        let (rz, rrs) = encode_with(reducer.as_ref(), &ry);
        // An absorbed no-op stage still accumulates kernel statistics
        // (reads its input), so chains using absorb-noop only claim byte
        // equality, not prefix-statistics equality.
        let absorbed = cert
            .member_steps
            .iter()
            .chain(cert.rep_steps.iter())
            .any(|s| matches!(s, RewriteStep::AbsorbNoop { .. }));
        match cert.tier {
            Tier::Exact => {
                if my != ry {
                    return Err(format!("prefix bytes differ on a {}-byte input", x.len()));
                }
                if !absorbed && mstats != rstats {
                    return Err(format!(
                        "accumulated prefix statistics differ on a {}-byte input",
                        x.len()
                    ));
                }
                if mz != rz {
                    return Err(format!(
                        "reducer output differs on a {}-byte input",
                        x.len()
                    ));
                }
            }
            Tier::Pattern { .. } => {
                if mz.len() != rz.len() {
                    return Err(format!(
                        "compressed sizes differ ({} vs {}) on a {}-byte input",
                        mz.len(),
                        rz.len(),
                        x.len()
                    ));
                }
                if mrs != rrs {
                    return Err(format!(
                        "reducer encode statistics differ on a {}-byte input",
                        x.len()
                    ));
                }
                // Decode side: statistics must agree and both members
                // must round-trip.
                let mut mdec = Vec::new();
                let mut mds = KernelStats::new();
                let mut rdec = Vec::new();
                let mut rds = KernelStats::new();
                reducer
                    .decode_chunk(&mz, &mut mdec, &mut mds)
                    .map_err(|e| format!("member reducer decode failed: {e:?}"))?;
                reducer
                    .decode_chunk(&rz, &mut rdec, &mut rds)
                    .map_err(|e| format!("representative reducer decode failed: {e:?}"))?;
                if mdec != my || rdec != ry {
                    return Err(format!(
                        "reducer round-trip failed on a {}-byte input",
                        x.len()
                    ));
                }
                if mds != rds {
                    return Err(format!(
                        "reducer decode statistics differ on a {}-byte input",
                        x.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The checker's input set: near-miss refuters plus a slice of the
/// standard adversarial corpus.
fn corpus_for_checking(depth: CheckDepth) -> Vec<Vec<u8>> {
    let mut inputs = corpus::refuters();
    let lengths: &[usize] = match depth {
        CheckDepth::Quick => &[20, 197],
        CheckDepth::Full => &[20, 64, 197, 1000, 4096],
    };
    for &len in lengths {
        inputs.extend(corpus::inputs(len));
    }
    inputs
}

// ---------------------------------------------------------------------------
// Seeded absint bugs (mutation harness)
// ---------------------------------------------------------------------------

/// The seeded absint bug classes. The first eleven doctor the
/// *canonicalizer* (one [`RuleTable`] flag each); the last five doctor a
/// *contract* (a component lies about an absint-relevant fact). The
/// unmutated checker/analyzer must catch every one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsintMutation {
    /// Wrong lattice join: the length interval narrows.
    JoinNarrows,
    /// No-op absorption without the shape side condition.
    AbsorbNoopUnbounded,
    /// Inverse cancellation without an `inverse_of` witness.
    CancelWithoutInverse,
    /// Square collapse without an `idempotent` witness.
    CollapseWithoutIdempotence,
    /// Commutation without the divisibility side condition.
    CommuteIgnoresDivisibility,
    /// BIT treated as a word permutation.
    CommuteOpaqueAsPerm,
    /// Pattern drop without the divisibility side condition.
    DropIgnoresDivisibility,
    /// Zero-pattern drop without the `fixes_zero` side condition.
    DropIgnoresFixesZero,
    /// Tuple permutations pattern-transparent at any granularity.
    TuplIgnoresGranularity,
    /// All tuple permutations merged into one.
    MergeAllTuplPerms,
    /// Zero-pattern reducers canonicalized under the equality relation.
    RelationConfusesZeroEq,
    /// DBEFS_4 falsely claims `fixes_zero`.
    FalseFixesZero,
    /// TCMS_4 falsely claims `idempotent`.
    FalseIdempotent,
    /// TUPL4_2 falsely claims a chunk-sized `noop_below`.
    FalseNoopBelow,
    /// DIFFNB_4 falsely claims it is TCMS_4 ∘ DIFF_4.
    FalseFusedOf,
    /// CLOG_4 falsely claims a zero-pattern size determinant.
    FalseSizeDeterminant,
}

impl AbsintMutation {
    /// All seeds, stable order.
    pub const ALL: [AbsintMutation; 16] = [
        AbsintMutation::JoinNarrows,
        AbsintMutation::AbsorbNoopUnbounded,
        AbsintMutation::CancelWithoutInverse,
        AbsintMutation::CollapseWithoutIdempotence,
        AbsintMutation::CommuteIgnoresDivisibility,
        AbsintMutation::CommuteOpaqueAsPerm,
        AbsintMutation::DropIgnoresDivisibility,
        AbsintMutation::DropIgnoresFixesZero,
        AbsintMutation::TuplIgnoresGranularity,
        AbsintMutation::MergeAllTuplPerms,
        AbsintMutation::RelationConfusesZeroEq,
        AbsintMutation::FalseFixesZero,
        AbsintMutation::FalseIdempotent,
        AbsintMutation::FalseNoopBelow,
        AbsintMutation::FalseFusedOf,
        AbsintMutation::FalseSizeDeterminant,
    ];

    fn rule_table(&self) -> Option<RuleTable> {
        let mut t = RuleTable::SOUND;
        match self {
            AbsintMutation::JoinNarrows => t.join_narrows = true,
            AbsintMutation::AbsorbNoopUnbounded => t.absorb_noop_unbounded = true,
            AbsintMutation::CancelWithoutInverse => t.cancel_without_inverse = true,
            AbsintMutation::CollapseWithoutIdempotence => t.collapse_without_idempotence = true,
            AbsintMutation::CommuteIgnoresDivisibility => t.commute_ignores_divisibility = true,
            AbsintMutation::CommuteOpaqueAsPerm => t.commute_opaque_as_perm = true,
            AbsintMutation::DropIgnoresDivisibility => t.drop_ignores_divisibility = true,
            AbsintMutation::DropIgnoresFixesZero => t.drop_ignores_fixes_zero = true,
            AbsintMutation::TuplIgnoresGranularity => t.tupl_ignores_granularity = true,
            AbsintMutation::MergeAllTuplPerms => t.merge_all_tupl_perms = true,
            AbsintMutation::RelationConfusesZeroEq => t.relation_confuses_zero_eq = true,
            _ => return None,
        }
        Some(t)
    }

    fn contract_lie(&self) -> Option<(&'static str, ContractLie)> {
        match self {
            AbsintMutation::FalseFixesZero => Some(("DBEFS_4", ContractLie::FixesZero)),
            AbsintMutation::FalseIdempotent => Some(("TCMS_4", ContractLie::Idempotent)),
            AbsintMutation::FalseNoopBelow => Some(("TUPL4_2", ContractLie::NoopBelow)),
            AbsintMutation::FalseFusedOf => Some(("DIFFNB_4", ContractLie::FusedOf)),
            AbsintMutation::FalseSizeDeterminant => {
                Some(("CLOG_4", ContractLie::SizeDeterminantZero))
            }
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ContractLie {
    FixesZero,
    Idempotent,
    NoopBelow,
    FusedOf,
    SizeDeterminantZero,
}

/// A component whose contract lies about one absint fact; behavior is
/// untouched.
struct ContractLiar {
    inner: Arc<dyn Component>,
    lie: ContractLie,
}

impl Component for ContractLiar {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn kind(&self) -> ComponentKind {
        self.inner.kind()
    }
    fn word_size(&self) -> usize {
        self.inner.word_size()
    }
    fn tuple_size(&self) -> Option<usize> {
        self.inner.tuple_size()
    }
    fn complexity(&self) -> lc_core::Complexity {
        self.inner.complexity()
    }
    fn contract(&self) -> Contract {
        let mut c = self.inner.contract();
        match self.lie {
            ContractLie::FixesZero => c.fixes_zero = true,
            ContractLie::Idempotent => c.idempotent = true,
            ContractLie::NoopBelow => c.noop_below = Some(CHUNK_SIZE + 1),
            ContractLie::FusedOf => c.fused_of = Some(("DIFF_4", "TCMS_4")),
            ContractLie::SizeDeterminantZero => c.size_determinant = SizeDeterminant::ZeroPattern,
        }
        c
    }
    fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
        self.inner.encode_chunk(input, out, stats);
    }
    fn decode_chunk(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        stats: &mut KernelStats,
    ) -> Result<(), lc_core::DecodeError> {
        self.inner.decode_chunk(input, out, stats)
    }
}

/// One harness case.
pub struct AbsintCase {
    /// The seeded bug.
    pub mutation: AbsintMutation,
    /// Whether the unmutated checker/analyzer caught it.
    pub caught: bool,
    /// Evidence: the first rejection or diagnostic.
    pub detail: String,
}

/// Run every seeded absint bug against the unmutated checker:
/// canonicalizer bugs must produce at least one certificate the
/// structural checker rejects; contract lies must produce an analyzer
/// diagnostic naming the liar (via the absint differential rules).
pub fn run_absint_harness() -> Vec<AbsintCase> {
    let all = lc_components::all().to_vec();
    let reducers: Vec<Arc<dyn Component>> = all
        .iter()
        .filter(|c| c.kind() == ComponentKind::Reducer)
        .cloned()
        .collect();
    let mut cases = Vec::new();
    for mutation in AbsintMutation::ALL {
        let case = if let Some(rules) = mutation.rule_table() {
            // Classify with the buggy canonicalizer, check with the
            // sound checker. JoinNarrows needs a multi-length shape to
            // have a join to get wrong.
            let lengths: &[usize] = if mutation == AbsintMutation::JoinNarrows {
                &[2, CHUNK_SIZE]
            } else {
                &[]
            };
            let map = classify(&all, &reducers, lengths, &rules);
            let sound = classify(&all, &reducers, lengths, &RuleTable::SOUND);
            let report = check_certificates(&all, &reducers, &map, CheckDepth::Quick);
            // A canonicalizer bug is caught if the checker rejects a
            // certificate, or — for bugs that alter bookkeeping without
            // producing invalid merges — if the class map drifted from
            // the sound one (the CI snapshot gate).
            let drifted = map.classes != sound.classes || map.fingerprint() != sound.fingerprint();
            let caught = !report.is_clean() || drifted;
            let detail = report
                .failures
                .first()
                .map(|f| format!("{} {:?}: {}", f.layer, f.member, f.detail))
                .unwrap_or_else(|| {
                    if drifted {
                        format!(
                            "class map drifted: {} vs {} classes",
                            map.classes, sound.classes
                        )
                    } else {
                        "not caught".to_string()
                    }
                });
            AbsintCase {
                mutation,
                caught,
                detail,
            }
        } else {
            // Contract lie: the analyzer's differential rules must flag
            // the liar.
            // invariant: every mutation without a rule table is a contract lie
            let (target, lie) = mutation.contract_lie().unwrap();
            let set: Vec<Arc<dyn Component>> = all
                .iter()
                .map(|c| {
                    if c.name() == target {
                        Arc::new(ContractLiar {
                            inner: c.clone(),
                            lie,
                        }) as Arc<dyn Component>
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let report = crate::analyze(&set);
            let diag = report
                .diagnostics
                .iter()
                .find(|d| d.component == target)
                .cloned();
            AbsintCase {
                mutation,
                caught: diag.is_some(),
                detail: diag
                    .map(|d| format!("{}: {}", d.rule, d.message))
                    .unwrap_or_else(|| "not caught".to_string()),
            }
        };
        cases.push(case);
    }
    cases
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    type ComponentSet = Vec<Arc<dyn Component>>;

    fn registry() -> (ComponentSet, ComponentSet) {
        let all = lc_components::all().to_vec();
        let reducers: ComponentSet = all
            .iter()
            .filter(|c| c.kind() == ComponentKind::Reducer)
            .cloned()
            .collect();
        (all, reducers)
    }

    #[test]
    fn len_range_join_is_hull() {
        let a = LenRange { lo: 5, hi: 10 };
        let b = LenRange { lo: 0, hi: 7 };
        assert_eq!(a.join(b), LenRange { lo: 0, hi: 10 });
        assert_eq!(
            LenRange::from_lengths(&[], &RuleTable::SOUND),
            LenRange::top()
        );
        assert_eq!(
            LenRange::from_lengths(&[3, 100, 7], &RuleTable::SOUND),
            LenRange { lo: 3, hi: 100 }
        );
    }

    #[test]
    fn full_space_partition_counts() {
        let (all, reducers) = registry();
        let map = classify(&all, &reducers, &[], &RuleTable::SOUND);
        assert_eq!(map.pipelines(), 107_632);
        // Every pipeline belongs to exactly one class; every class has
        // exactly one representative (= not certified).
        assert_eq!(map.classes + map.pruned(), map.pipelines());
        // Strictly more than PR 4's 616 commute-only pipelines, and past
        // the issue's ≥ 3,000 target.
        assert!(
            map.pruned() > 616,
            "pruned {} should exceed the commute-only 616",
            map.pruned()
        );
        assert!(
            map.pruned() >= 3000,
            "pruned {} below the certified-redundant target",
            map.pruned()
        );
        // The exact tier subsumes PR 4: 22 commuting pairs × the 16
        // opaque reducers; the 12 pattern reducers absorb their share
        // into (larger) pattern classes.
        let census = census(&map, &reducers);
        assert_eq!(census.exact_pruned, 22 * 16);
        assert!(census.pattern_pruned >= 12 * 22);
    }

    #[test]
    fn classification_is_deterministic() {
        let (all, reducers) = registry();
        let a = classify(&all, &reducers, &[], &RuleTable::SOUND);
        let b = classify(&all, &reducers, &[], &RuleTable::SOUND);
        assert_eq!(a.class_of, b.class_of);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.pruned(), b.pruned());
    }

    #[test]
    fn exact_tier_reproduces_commute_pairs() {
        // (TCMS_1, TUPL2_2, CLOG_1) and (TUPL2_2, TCMS_1, CLOG_1) must
        // share a class at the exact tier (opaque reducer).
        let (all, reducers) = registry();
        let map = classify(&all, &reducers, &[], &RuleTable::SOUND);
        let pos = |name: &str| all.iter().position(|c| c.name() == name).unwrap();
        let rpos = |name: &str| reducers.iter().position(|c| c.name() == name).unwrap();
        let (m, t, r) = (pos("TCMS_1"), pos("TUPL2_2"), rpos("CLOG_1"));
        let a = map.class_of[map.index((m, t, r))];
        let b = map.class_of[map.index((t, m, r))];
        assert_eq!(a, b);
        // The representative is the lower dense index: (TCMS_1, TUPL2_2).
        let cert = map
            .certificates
            .iter()
            .find(|c| c.member == (t, m, r))
            .expect("the swapped order is the pruned member");
        assert_eq!(cert.representative, (m, t, r));
        assert_eq!(cert.tier, Tier::Exact);
        assert!(cert
            .member_steps
            .iter()
            .any(|s| matches!(s, RewriteStep::CommuteSwap { .. })));
    }

    #[test]
    fn pattern_tier_merges_zero_fixing_bijections() {
        // TCMS_1 and TCNB_1 both fix zero at granularity 1 | 2: before
        // RZE_2 the pipelines (TCMS_1, DIFF-free prefix...) — simplest:
        // (TCMS_1, TCMS_1) vs (TCNB_1, TCNB_1) — all drop, same class.
        let (all, reducers) = registry();
        let map = classify(&all, &reducers, &[], &RuleTable::SOUND);
        let pos = |name: &str| all.iter().position(|c| c.name() == name).unwrap();
        let rpos = |name: &str| reducers.iter().position(|c| c.name() == name).unwrap();
        let rze2 = rpos("RZE_2");
        let a = map.class_of[map.index((pos("TCMS_1"), pos("TCMS_2"), rze2))];
        let b = map.class_of[map.index((pos("TCNB_1"), pos("TCNB_2"), rze2))];
        assert_eq!(a, b, "zero-fixing bijections are RZE-transparent");
        // DBEFS does NOT fix zero: it must not join that class.
        let c = map.class_of[map.index((pos("DBEFS_4"), pos("TCMS_2"), rze2))];
        assert_ne!(a, c);
        // But under RLE (equality pattern), DBEFS_4 at granularity 4|4
        // IS transparent.
        let rle4 = rpos("RLE_4");
        let d = map.class_of[map.index((pos("DBEFS_4"), pos("TCMS_4"), rle4))];
        let e = map.class_of[map.index((pos("TCNB_4"), pos("DBESF_4"), rle4))];
        assert_eq!(d, e);
    }

    #[test]
    fn defused_predictors_merge_before_matching_reducers() {
        // DIFFMS_4 = TCMS_4 ∘ DIFF_4 and TCMS_4 is RZE_4-transparent, so
        // (DIFF_4, X) and (DIFFMS_4, X) — with X dropped too — share a
        // class before RZE_4.
        let (all, reducers) = registry();
        let map = classify(&all, &reducers, &[], &RuleTable::SOUND);
        let pos = |name: &str| all.iter().position(|c| c.name() == name).unwrap();
        let rpos = |name: &str| reducers.iter().position(|c| c.name() == name).unwrap();
        let rze4 = rpos("RZE_4");
        let a = map.class_of[map.index((pos("DIFF_4"), pos("TCMS_4"), rze4))];
        let b = map.class_of[map.index((pos("DIFFMS_4"), pos("TCNB_4"), rze4))];
        let c = map.class_of[map.index((pos("DIFFNB_4"), pos("TCMS_4"), rze4))];
        assert_eq!(a, b);
        assert_eq!(a, c);
        // The granularity trap: at word size 4 under RZE_2 the TCMS_4
        // bijection is NOT transparent (4 ∤ 2), so DIFFMS_4 and DIFFNB_4
        // must stay separate there.
        let rze2 = rpos("RZE_2");
        let d = map.class_of[map.index((pos("DIFFMS_4"), pos("TCMS_2"), rze2))];
        let e = map.class_of[map.index((pos("DIFFNB_4"), pos("TCMS_2"), rze2))];
        assert_ne!(d, e);
    }

    #[test]
    fn all_certificates_pass_the_checker() {
        let (all, reducers) = registry();
        let map = classify(&all, &reducers, &[], &RuleTable::SOUND);
        let report = check_certificates(&all, &reducers, &map, CheckDepth::Quick);
        assert_eq!(report.certificates, map.pruned());
        assert!(report.kinds >= 3, "kinds: {}", report.kinds);
        assert!(report.differential_classes > 0);
        assert!(
            report.is_clean(),
            "checker rejected sound certificates: {:#?}",
            report
                .failures
                .iter()
                .map(|f| format!("{:?} {} {}", f.member, f.layer, f.detail))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn census_is_consistent() {
        let (all, reducers) = registry();
        let map = classify(&all, &reducers, &[], &RuleTable::SOUND);
        let census = census(&map, &reducers);
        assert_eq!(census.pipelines, 107_632);
        assert_eq!(census.pruned, census.exact_pruned + census.pattern_pruned);
        assert_eq!(census.classes + census.pruned, census.pipelines);
        let per_reducer_pruned: usize = census.per_reducer.iter().map(|(_, _, p)| p).sum();
        assert_eq!(per_reducer_pruned, census.pruned);
        let json = census.to_json();
        assert_eq!(
            json.get("schema").and_then(|v| v.as_str()),
            Some("lc-analyze-canonical/v1")
        );
        assert_eq!(
            json.get("pruned").and_then(|v| v.as_u64()),
            Some(census.pruned as u64)
        );
        let text = census.render_text();
        assert!(text.contains("certified-redundant"));
    }

    #[test]
    fn every_seeded_absint_bug_is_caught() {
        let cases = run_absint_harness();
        assert!(cases.len() >= 12, "need at least 12 seeds");
        let missed: Vec<String> = cases
            .iter()
            .filter(|c| !c.caught)
            .map(|c| format!("{:?}", c.mutation))
            .collect();
        assert!(missed.is_empty(), "uncaught absint bugs: {missed:?}");
    }

    #[test]
    fn restricted_space_without_fused_halves_stays_sound() {
        // A space containing DIFFMS but not TCMS cannot de-fuse; the
        // classifier must keep it opaque rather than invent atoms.
        let all = lc_components::all().to_vec();
        let subset: Vec<Arc<dyn Component>> = all
            .iter()
            .filter(|c| c.name().starts_with("DIFF"))
            .cloned()
            .collect();
        let reducers: Vec<Arc<dyn Component>> = all
            .iter()
            .filter(|c| c.name().starts_with("RZE"))
            .cloned()
            .collect();
        let map = classify(&subset, &reducers, &[], &RuleTable::SOUND);
        let report = check_certificates(&subset, &reducers, &map, CheckDepth::Quick);
        assert!(report.is_clean(), "failures: {:?}", report.failures.len());
    }
}
