//! Adversarial input corpus for differential contract checking.
//!
//! Deterministic by construction (no RNG state outside this module): the
//! same corpus is generated on every run, so a differential failure is
//! always reproducible from the diagnostic alone. The patterns are chosen
//! to stress the claims components actually make:
//!
//! * constant / run-heavy data — best case for RLE/RRE, exercises maximal
//!   elimination paths;
//! * high-entropy data — worst case for every reducer, exercises the
//!   expansion bounds and copy-on-expand framing;
//! * smooth ramps and float ramps — the paper's scientific-data shape,
//!   exercises predictors and CLOG width selection;
//! * sign-heavy data — exercises TCMS/HCLOG magnitude-sign paths;
//! * lengths covering empty, sub-word, unaligned-tail, and full-chunk
//!   geometry for every word size up to 8.

use lc_core::CHUNK_SIZE;

/// Lengths used for the full corpus. Every word size in {1,2,4,8} sees
/// empty input, an incomplete word, an unaligned tail, and exact
/// alignment; the final entry is a full 16 kB chunk.
pub const LENGTHS: &[usize] = &[0, 1, 3, 7, 8, 9, 63, 64, 65, 255, 1000, 4096, CHUNK_SIZE];

/// Deterministic xorshift64* stream, fixed seed per pattern.
fn xorshift(mut state: u64) -> impl FnMut() -> u64 {
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Generate all corpus inputs of length `len`, most adversarial first.
pub fn inputs(len: usize) -> Vec<Vec<u8>> {
    let mut rng = xorshift(0x9E37_79B9_7F4A_7C15 ^ len as u64);
    let mut random = vec![0u8; len];
    for b in random.iter_mut() {
        *b = rng() as u8;
    }
    let patterns: Vec<Vec<u8>> = vec![
        // High-entropy: worst case for every reducer.
        random,
        // All-zero: maximal elimination for RZE/RAZE/CLOG.
        vec![0u8; len],
        // Constant non-zero: maximal runs at every word size.
        vec![0xA5u8; len],
        // Byte ramp: no runs at word size 1, smooth at larger sizes.
        (0..len).map(|i| i as u8).collect(),
        // Alternating pair: runs of exactly 1, record-dense for RLE.
        (0..len)
            .map(|i| if i % 2 == 0 { 0x11 } else { 0xEE })
            .collect(),
        // Short runs: run/literal boundary churn (i/7 plateaus).
        (0..len).map(|i| ((i / 7) % 256) as u8).collect(),
        // u32 ramp: predictor-friendly, word-aligned structure.
        (0..len)
            .map(|i| (1000u32 + 3 * (i as u32 / 4)).to_le_bytes()[i % 4])
            .collect(),
        // f32 ramp: IEEE-754 shape for DBEFS/DBESF/HCLOG.
        (0..len)
            .map(|i| (1.0f32 + (i as f32 / 4.0) * 1e-3).to_bits().to_le_bytes()[i % 4])
            .collect(),
        // Sign-heavy: small-magnitude negatives defeat plain CLOG.
        (0..len)
            .map(|i| (-3i32 - (i as i32 / 4)).to_le_bytes()[i % 4])
            .collect(),
    ];
    patterns
}

/// The reduced corpus used for the expensive structure probes
/// (permutation reconstruction, pointwise locality): two unaligned and
/// one aligned length, large enough to cover several 8-byte tuples.
pub const PROBE_LENGTHS: &[usize] = &[64, 197, 256];

/// Near-miss refuters for the abstract interpreter's certificate checker:
/// inputs on which *almost*-sound rewrites diverge. Each entry targets a
/// family of plausible-but-wrong merges the seeded-bug harness injects:
///
/// * short random chunks (10/20 bytes) — TUPL pseudo-commutations that
///   hold on long aligned data diverge on lengths with partial tuples;
/// * `0x8000`-style sign-boundary u16 words — TCMS and TCNB agree on a
///   surprising number of small values but split at the sign boundary,
///   refuting granularity-blind bijection drops;
/// * zero words embedded in nonzero runs — refutes conflating the
///   zero pattern with the equality pattern (RLE literal words can be
///   zero; RZE cares, RLE does not);
/// * `f32` data containing exact zeros — refutes treating DBEFS/DBESF as
///   zero-fixing (the de-biased exponent of 0.0 is nonzero);
/// * sub-word and sub-tuple lengths — refutes over-wide no-op claims.
pub fn refuters() -> Vec<Vec<u8>> {
    let mut rng = xorshift(0xD1F7_0000_5EED_CAFE);
    let mut out: Vec<Vec<u8>> = Vec::new();
    for len in [10usize, 20] {
        let mut v = vec![0u8; len];
        for b in v.iter_mut() {
            *b = rng() as u8;
        }
        out.push(v);
    }
    // Sign-boundary words at every power-of-two width: 0x80, 0x8000, …
    let mut sign = Vec::with_capacity(64);
    for i in 0..8u32 {
        sign.extend_from_slice(&(0x8000u16.wrapping_add(i as u16)).to_le_bytes());
        sign.extend_from_slice(&(0x8000_0000u32 | i).to_le_bytes());
    }
    out.push(sign);
    // Zero words inside nonzero runs (and vice versa), 8-byte aligned.
    let mut holes = Vec::with_capacity(64);
    for i in 0..8u64 {
        holes.extend_from_slice(
            &(if i % 3 == 0 {
                0u64
            } else {
                0x4242_4242_4242_4242
            })
            .to_le_bytes(),
        );
    }
    out.push(holes);
    // f32 ramp with exact zeros every fourth value.
    let floats: Vec<u8> = (0..16u32)
        .map(|i| if i % 4 == 0 { 0.0f32 } else { 1.5 + i as f32 })
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect();
    out.push(floats);
    // Sub-word / sub-tuple geometry.
    for len in [1usize, 3, 7] {
        out.push((0..len).map(|i| (0x90 + i) as u8).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(inputs(100), inputs(100));
        assert_ne!(inputs(100)[0], inputs(100)[1]);
    }

    #[test]
    fn lengths_cover_geometry() {
        assert!(LENGTHS.contains(&0));
        assert!(LENGTHS.contains(&CHUNK_SIZE));
        // Unaligned for every word size.
        for w in [2usize, 4, 8] {
            assert!(LENGTHS.iter().any(|&l| l > 0 && l % w != 0), "w={w}");
        }
    }

    #[test]
    fn patterns_have_requested_length() {
        for len in [0usize, 17, 64] {
            for p in inputs(len) {
                assert_eq!(p.len(), len);
            }
        }
    }
}
