//! Differential property checks: every behavioral contract claim is
//! executed against the real `encode_chunk`/`decode_chunk`.
//!
//! | rule id                        | claim checked                                        |
//! |--------------------------------|------------------------------------------------------|
//! | `differential.roundtrip`       | `decode(encode(x)) == x` on the whole corpus         |
//! | `differential.size-preserving` | preserving components: `len(out) == len(in)`         |
//! | `differential.expansion-bound` | reducers: `len(out) ≤ expansion.max_bytes(len(in))`  |
//! | `differential.pointwise`       | `PointwiseWordMap`: output word `i` depends only on  |
//! |                                | input word `i`; tail bytes pass through verbatim     |
//! | `differential.permutation`     | `WordPermutation`: encode is a value-independent     |
//! |                                | byte permutation that maps complete word-size fields |
//! |                                | onto fields and fixes the trailing partial region    |
//! | `differential.stats-length`    | commuting shapes: kernel statistics depend only on   |
//! |                                | the input length, never the values                   |
//! | `differential.inverse-pair`    | `inverse_of = B`: `B.encode(self.encode(x)) == x`    |
//! | `differential.fixes-zero`      | `fixes_zero`: all-zero inputs encode to themselves   |
//! | `differential.noop-below`      | `noop_below = n`: inputs shorter than `n` bytes      |
//! |                                | encode to themselves verbatim                        |
//! | `differential.idempotent`      | `idempotent`: `encode(encode(x)) == encode(x)`       |
//! | `differential.fused-of`        | `fused_of = (B, P)`: `encode == P.encode ∘ B.encode` |
//! |                                | byte-for-byte (when both halves are in the set)      |
//! | `differential.size-determinant`| pattern-preserving value rewrites leave the encoded  |
//! |                                | size and both directions' kernel statistics unchanged|

use std::sync::Arc;

use lc_core::{CommuteClass, Component, KernelStats, SizeClass, SizeDeterminant};

use crate::corpus;
use crate::Diagnostic;

fn encode(c: &dyn Component, input: &[u8]) -> (Vec<u8>, KernelStats) {
    let mut out = Vec::new();
    let mut stats = KernelStats::new();
    c.encode_chunk(input, &mut out, &mut stats);
    (out, stats)
}

pub(crate) fn check(
    components: &[Arc<dyn Component>],
    diagnostics: &mut Vec<Diagnostic>,
    checks: &mut usize,
) {
    for c in components {
        check_component(c.as_ref(), components, diagnostics, checks);
    }
}

fn check_component(
    c: &dyn Component,
    set: &[Arc<dyn Component>],
    diagnostics: &mut Vec<Diagnostic>,
    checks: &mut usize,
) {
    let name = c.name();
    let contract = c.contract();

    // Roundtrip + size class over the full corpus. One diagnostic per
    // rule per component is enough evidence; stop at the first witness.
    let mut roundtrip_ok = true;
    let mut size_ok = true;
    'corpus: for &len in corpus::LENGTHS {
        for input in corpus::inputs(len) {
            *checks += 1;
            let (enc, _) = encode(c, &input);
            if size_ok {
                match contract.size {
                    SizeClass::Preserving if enc.len() != input.len() => {
                        size_ok = false;
                        diagnostics.push(Diagnostic::new(
                            "differential.size-preserving",
                            name,
                            format!(
                                "claims size-preserving but encoded {} bytes to {}",
                                input.len(),
                                enc.len()
                            ),
                        ));
                    }
                    SizeClass::Reducing
                        if enc.len() > contract.expansion.max_bytes(input.len()) =>
                    {
                        size_ok = false;
                        diagnostics.push(Diagnostic::new(
                            "differential.expansion-bound",
                            name,
                            format!(
                                "encoded {} bytes to {}, above the declared bound of {}",
                                input.len(),
                                enc.len(),
                                contract.expansion.max_bytes(input.len())
                            ),
                        ));
                    }
                    _ => {}
                }
            }
            if roundtrip_ok && contract.exact_inverse {
                let mut dec = Vec::new();
                match c.decode_chunk(&enc, &mut dec, &mut KernelStats::new()) {
                    Err(e) => {
                        roundtrip_ok = false;
                        diagnostics.push(Diagnostic::new(
                            "differential.roundtrip",
                            name,
                            format!("decode of own {len}-byte encoding failed: {e:?}"),
                        ));
                    }
                    Ok(()) if dec != input => {
                        roundtrip_ok = false;
                        diagnostics.push(Diagnostic::new(
                            "differential.roundtrip",
                            name,
                            format!(
                                "decode(encode(x)) != x for a {len}-byte input \
                                 (first divergence at byte {})",
                                first_divergence(&input, &dec)
                            ),
                        ));
                    }
                    Ok(()) => {}
                }
            }
            if !roundtrip_ok && !size_ok {
                break 'corpus;
            }
        }
    }

    match contract.commute {
        CommuteClass::PointwiseWordMap => {
            check_pointwise(c, contract.word_size, diagnostics, checks);
            check_stats_length_only(c, diagnostics, checks);
        }
        CommuteClass::WordPermutation => {
            check_permutation(c, contract.word_size, diagnostics, checks);
            check_stats_length_only(c, diagnostics, checks);
        }
        CommuteClass::Opaque => {}
    }

    if let Some(inv) = contract.inverse_of {
        if let Some(other) = set.iter().find(|o| o.name() == inv) {
            *checks += 1;
            for input in corpus::inputs(255) {
                let (mid, _) = encode(c, &input);
                let (back, _) = encode(other.as_ref(), &mid);
                if back != input {
                    diagnostics.push(Diagnostic::new(
                        "differential.inverse-pair",
                        name,
                        format!("{inv}.encode(self.encode(x)) != x"),
                    ));
                    break;
                }
            }
        }
    }

    if contract.fixes_zero {
        'fz: for &len in corpus::PROBE_LENGTHS {
            *checks += 1;
            let zeros = vec![0u8; len];
            let (out, _) = encode(c, &zeros);
            if out != zeros {
                diagnostics.push(Diagnostic::new(
                    "differential.fixes-zero",
                    name,
                    format!(
                        "claims the per-word function fixes zero, but the all-zero \
                         {len}-byte input does not encode to itself"
                    ),
                ));
                break 'fz;
            }
        }
    }

    if let Some(bound) = contract.noop_below {
        'noop: for &len in corpus::LENGTHS {
            if len >= bound {
                continue;
            }
            *checks += 1;
            for input in corpus::inputs(len) {
                let (out, _) = encode(c, &input);
                if out != input {
                    diagnostics.push(Diagnostic::new(
                        "differential.noop-below",
                        name,
                        format!(
                            "claims to be the identity below {bound} bytes, but a \
                             {len}-byte input is transformed"
                        ),
                    ));
                    break 'noop;
                }
            }
        }
    }

    if contract.idempotent {
        'idem: for &len in corpus::PROBE_LENGTHS {
            *checks += 1;
            for input in corpus::inputs(len) {
                let (once, _) = encode(c, &input);
                let (twice, _) = encode(c, &once);
                if twice != once {
                    diagnostics.push(Diagnostic::new(
                        "differential.idempotent",
                        name,
                        format!("encode(encode(x)) != encode(x) for a {len}-byte input"),
                    ));
                    break 'idem;
                }
            }
        }
    }

    if let Some((base, post)) = contract.fused_of {
        let halves = (
            set.iter().find(|o| o.name() == base),
            set.iter().find(|o| o.name() == post),
        );
        if let (Some(b), Some(p)) = halves {
            'fused: for &len in corpus::PROBE_LENGTHS {
                *checks += 1;
                for input in corpus::inputs(len) {
                    let (direct, _) = encode(c, &input);
                    let (mid, _) = encode(b.as_ref(), &input);
                    let (composed, _) = encode(p.as_ref(), &mid);
                    if direct != composed {
                        diagnostics.push(Diagnostic::new(
                            "differential.fused-of",
                            name,
                            format!(
                                "claims encode == {post}.encode ∘ {base}.encode, but they \
                                 differ on a {len}-byte input"
                            ),
                        ));
                        break 'fused;
                    }
                }
            }
        }
    }

    if contract.size_determinant != SizeDeterminant::Opaque {
        check_size_determinant(c, &contract, diagnostics, checks);
    }
}

/// `size_determinant` claim: rewriting the input values while preserving
/// the declared pattern (zero/nonzero per word, or the adjacent-equality
/// structure) must leave the encoded *size* and both directions' kernel
/// statistics unchanged.
fn check_size_determinant(
    c: &dyn Component,
    contract: &lc_core::Contract,
    diagnostics: &mut Vec<Diagnostic>,
    checks: &mut usize,
) {
    let name = c.name();
    let w = contract.word_size;
    for &len in corpus::PROBE_LENGTHS {
        for x in corpus::inputs(len) {
            *checks += 1;
            // Build a pattern-preserving value rewrite of the complete
            // words; tail bytes are kept verbatim (they are emitted
            // literally, so their values may matter byte-for-byte but not
            // for the size).
            let n = len / w;
            let mut y = x.clone();
            match contract.size_determinant {
                SizeDeterminant::ZeroPattern => {
                    // Replace every nonzero word with a fixed nonzero word.
                    for i in 0..n {
                        let word = &mut y[i * w..(i + 1) * w];
                        if word.iter().any(|&b| b != 0) {
                            word.fill(0xA5);
                        }
                    }
                }
                SizeDeterminant::EqualityPattern => {
                    // Relabel words by run index, scanning the *original*
                    // input: adjacent equal words stay equal, adjacent
                    // distinct words stay distinct (neighboring runs get
                    // indices differing by 1, which never collide mod 251).
                    let mut run = 0u64;
                    for i in 0..n {
                        if i > 0 && x[i * w..(i + 1) * w] != x[(i - 1) * w..i * w] {
                            run += 1;
                        }
                        let fill = (run % 251 + 1) as u8;
                        y[i * w..(i + 1) * w].fill(fill);
                    }
                }
                SizeDeterminant::Opaque => unreachable!(),
            }
            let (ex, sx) = encode(c, &x);
            let (ey, sy) = encode(c, &y);
            if ex.len() != ey.len() {
                diagnostics.push(Diagnostic::new(
                    "differential.size-determinant",
                    name,
                    format!(
                        "claims size is a function of the {:?} at word size {w}, but a \
                         pattern-preserving rewrite of a {len}-byte input changed the \
                         encoded size from {} to {}",
                        contract.size_determinant,
                        ex.len(),
                        ey.len()
                    ),
                ));
                return;
            }
            if sx != sy {
                diagnostics.push(Diagnostic::new(
                    "differential.size-determinant",
                    name,
                    format!(
                        "encode kernel statistics changed under a pattern-preserving \
                         rewrite of a {len}-byte input ({:?} at word size {w})",
                        contract.size_determinant
                    ),
                ));
                return;
            }
            let mut dx = (Vec::new(), KernelStats::new());
            let mut dy = (Vec::new(), KernelStats::new());
            if c.decode_chunk(&ex, &mut dx.0, &mut dx.1).is_err()
                || c.decode_chunk(&ey, &mut dy.0, &mut dy.1).is_err()
            {
                return; // already diagnosed by the roundtrip rule
            }
            if dx.1 != dy.1 {
                diagnostics.push(Diagnostic::new(
                    "differential.size-determinant",
                    name,
                    format!(
                        "decode kernel statistics changed under a pattern-preserving \
                         rewrite of a {len}-byte input ({:?} at word size {w})",
                        contract.size_determinant
                    ),
                ));
                return;
            }
        }
    }
}

fn first_divergence(a: &[u8], b: &[u8]) -> usize {
    a.iter()
        .zip(b)
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

/// `PointwiseWordMap` claim: encoding any single complete word alone
/// yields exactly the corresponding slice of the whole-chunk encoding,
/// and trailing incomplete-word bytes are passed through verbatim.
fn check_pointwise(
    c: &dyn Component,
    w: usize,
    diagnostics: &mut Vec<Diagnostic>,
    checks: &mut usize,
) {
    let name = c.name();
    for &len in corpus::PROBE_LENGTHS {
        *checks += 1;
        let x = &corpus::inputs(len)[0]; // high-entropy pattern
        let (y, _) = encode(c, x);
        if y.len() != x.len() {
            return; // already diagnosed by the size check
        }
        let n = len / w;
        for i in 0..n {
            let word = &x[i * w..(i + 1) * w];
            let (solo, _) = encode(c, word);
            if solo != y[i * w..(i + 1) * w] {
                diagnostics.push(Diagnostic::new(
                    "differential.pointwise",
                    name,
                    format!(
                        "output word {i} (len {len}) is not a pointwise function of \
                         input word {i} at the declared word size {w}"
                    ),
                ));
                return;
            }
        }
        if y[n * w..] != x[n * w..] {
            diagnostics.push(Diagnostic::new(
                "differential.pointwise",
                name,
                format!("trailing {} tail bytes are not passed through", len - n * w),
            ));
            return;
        }
    }
}

/// `WordPermutation` claim: reconstruct the byte permutation π from
/// unit-impulse probes, then verify (a) π is a bijection, (b) π maps
/// every complete `w`-byte field onto a field, preserving intra-field
/// byte order, (c) π fixes the trailing region past the last complete
/// field, and (d) π explains the encoding of value-dense inputs (value
/// independence).
fn check_permutation(
    c: &dyn Component,
    w: usize,
    diagnostics: &mut Vec<Diagnostic>,
    checks: &mut usize,
) {
    let name = c.name();
    let fail = |msg: String, diagnostics: &mut Vec<Diagnostic>| {
        diagnostics.push(Diagnostic::new("differential.permutation", name, msg));
    };
    for &len in corpus::PROBE_LENGTHS {
        *checks += 1;
        let zeros = vec![0u8; len];
        let (zeros_out, _) = encode(c, &zeros);
        if zeros_out != zeros {
            fail(
                format!("encode does not fix the all-zero {len}-byte input"),
                diagnostics,
            );
            return;
        }
        // Reconstruct π from impulses.
        let mut pi = vec![usize::MAX; len];
        for j in 0..len {
            let mut probe = vec![0u8; len];
            probe[j] = 0xFF;
            let (out, _) = encode(c, &probe);
            let hits: Vec<usize> = (0..len).filter(|&i| out[i] != 0).collect();
            if hits.len() != 1 || out[hits[0]] != 0xFF {
                fail(
                    format!("impulse at byte {j} (len {len}) does not move to a single position"),
                    diagnostics,
                );
                return;
            }
            pi[j] = hits[0];
        }
        let mut image = vec![false; len];
        for &p in &pi {
            image[p] = true;
        }
        if image.iter().any(|&b| !b) {
            fail(
                format!("reconstructed map at len {len} is not a bijection"),
                diagnostics,
            );
            return;
        }
        // Field structure: complete w-byte fields map onto fields.
        let n_fields = len / w;
        for a in 0..n_fields {
            let base = pi[a * w];
            if base % w != 0 || (0..w).any(|b| pi[a * w + b] != base + b) {
                fail(
                    format!("field {a} (len {len}) is not mapped onto a whole {w}-byte field"),
                    diagnostics,
                );
                return;
            }
        }
        for (i, &p) in pi.iter().enumerate().skip(n_fields * w) {
            if p != i {
                fail(
                    format!("trailing byte {i} (len {len}) is not fixed by the permutation"),
                    diagnostics,
                );
                return;
            }
        }
        // Value independence: π must explain dense inputs too.
        for x in corpus::inputs(len).into_iter().take(3) {
            let (y, _) = encode(c, &x);
            if (0..len).any(|j| y[pi[j]] != x[j]) {
                fail(
                    format!(
                        "encoding of a dense {len}-byte input disagrees with the \
                             reconstructed permutation (value-dependent reordering)"
                    ),
                    diagnostics,
                );
                return;
            }
        }
    }
}

/// Commuting shapes additionally promise that kernel statistics depend
/// only on the input length — required for pruned pipelines to report
/// identical simulated throughputs.
fn check_stats_length_only(
    c: &dyn Component,
    diagnostics: &mut Vec<Diagnostic>,
    checks: &mut usize,
) {
    for &len in corpus::PROBE_LENGTHS {
        *checks += 1;
        let inputs = corpus::inputs(len);
        let (_, s0) = encode(c, &inputs[0]);
        for x in &inputs[1..] {
            let (_, s) = encode(c, x);
            if s != s0 {
                diagnostics.push(Diagnostic::new(
                    "differential.stats-length",
                    c.name(),
                    format!(
                        "kernel statistics vary across same-length ({len}-byte) inputs; \
                         commuting shapes must have length-only statistics"
                    ),
                ));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_passes_all_differential_checks() {
        let all: Vec<_> = lc_components::all().to_vec();
        let mut diagnostics = Vec::new();
        let mut checks = 0;
        check(&all, &mut diagnostics, &mut checks);
        assert!(diagnostics.is_empty(), "{diagnostics:#?}");
        // 62 components × 13 lengths × 9 patterns, plus structure probes.
        assert!(checks > 62 * 13 * 9);
    }
}
