//! Self-mutation harness: prove the analyzer is not vacuous.
//!
//! A static analyzer that reports "clean" is only evidence if it would
//! have reported *something* on a broken registry. This module injects
//! seeded contract violations — one per violation class per component
//! kind — by wrapping a real component in a delegating [`Mutant`] whose
//! behavior (or whose contract) lies in a controlled way, then runs the
//! full analyzer on the doctored set and demands a diagnostic naming the
//! mutated component. [`run_harness`] returns the scorecard;
//! the shipped test asserts a 100% detection rate.

use std::sync::Arc;

use lc_core::{Complexity, Component, ComponentKind, Contract, DecodeError, KernelStats};

use crate::{analyze, Report};

/// The seeded violation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// `decode_chunk` flips the first decoded byte: the inverse-pair
    /// identity `decode(encode(x)) == x` is broken.
    BrokenInverse,
    /// The contract declares a word size different from the
    /// implementation's (doubled, or halved for 8-byte components).
    WrongWordSize,
    /// `encode_chunk` pads its output past the declared expansion bound
    /// (reducers) or past the input length (preserving components);
    /// `decode_chunk` strips the pad so the lie round-trips.
    OverExpansion,
}

impl Mutation {
    /// All classes, in a stable order.
    pub const ALL: [Mutation; 3] = [
        Mutation::BrokenInverse,
        Mutation::WrongWordSize,
        Mutation::OverExpansion,
    ];
}

/// Bytes appended by [`Mutation::OverExpansion`]. Large enough to clear
/// every declared additive slack in the library.
const PAD: usize = 8192;

/// A component that delegates to a real one except for its seeded lie.
pub struct Mutant {
    inner: Arc<dyn Component>,
    mutation: Mutation,
}

impl Mutant {
    /// Wrap `inner` with the given seeded violation.
    pub fn new(inner: Arc<dyn Component>, mutation: Mutation) -> Self {
        Self { inner, mutation }
    }
}

impl Component for Mutant {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn kind(&self) -> ComponentKind {
        self.inner.kind()
    }
    fn word_size(&self) -> usize {
        self.inner.word_size()
    }
    fn tuple_size(&self) -> Option<usize> {
        self.inner.tuple_size()
    }
    fn complexity(&self) -> Complexity {
        self.inner.complexity()
    }
    fn contract(&self) -> Contract {
        let mut contract = self.inner.contract();
        if self.mutation == Mutation::WrongWordSize {
            contract.word_size = if contract.word_size == 8 {
                4
            } else {
                contract.word_size * 2
            };
        }
        contract
    }
    fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
        self.inner.encode_chunk(input, out, stats);
        if self.mutation == Mutation::OverExpansion {
            out.extend(std::iter::repeat_n(0xEEu8, PAD));
        }
    }
    fn decode_chunk(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        stats: &mut KernelStats,
    ) -> Result<(), DecodeError> {
        let input = if self.mutation == Mutation::OverExpansion {
            &input[..input.len().saturating_sub(PAD)]
        } else {
            input
        };
        let start = out.len();
        self.inner.decode_chunk(input, out, stats)?;
        if self.mutation == Mutation::BrokenInverse && out.len() > start {
            out[start] ^= 0x01;
        }
        Ok(())
    }
}

/// One harness case: a registry with a single seeded violation.
pub struct Case {
    /// Name of the mutated component.
    pub target: &'static str,
    /// The violation class injected.
    pub mutation: Mutation,
    /// Whether the analyzer produced a diagnostic naming the target.
    pub caught: bool,
    /// The diagnostics the analyzer actually emitted for the set.
    pub report: Report,
}

/// Representatives: one component per kind, so each violation class is
/// exercised against each component family's real implementation.
pub const TARGETS: [&str; 4] = ["TCMS_4", "TUPL4_2", "DIFF_4", "RLE_4"];

/// Run the full harness: every target × every violation class, one
/// seeded violation per analyzer run. Returns all cases.
pub fn run_harness() -> Vec<Case> {
    let mut cases = Vec::new();
    for target in TARGETS {
        for mutation in Mutation::ALL {
            let set: Vec<Arc<dyn Component>> = lc_components::all()
                .iter()
                .map(|c| {
                    if c.name() == target {
                        Arc::new(Mutant::new(c.clone(), mutation)) as Arc<dyn Component>
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let report = analyze(&set);
            let caught = report.diagnostics.iter().any(|d| d.component == target);
            cases.push(Case {
                target,
                mutation,
                caught,
                report,
            });
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzer_catches_every_seeded_violation() {
        let cases = run_harness();
        assert_eq!(cases.len(), 12, "4 families x 3 violation classes");
        let missed: Vec<String> = cases
            .iter()
            .filter(|c| !c.caught)
            .map(|c| format!("{} + {:?}", c.target, c.mutation))
            .collect();
        assert!(missed.is_empty(), "undetected mutants: {missed:?}");
    }

    #[test]
    fn each_mutation_trips_the_intended_rule() {
        for case in run_harness() {
            let rules: Vec<&str> = case
                .report
                .diagnostics
                .iter()
                .filter(|d| d.component == case.target)
                .map(|d| d.rule.as_str())
                .collect();
            let expected: &[&str] = match case.mutation {
                Mutation::BrokenInverse => &["differential.roundtrip"],
                Mutation::WrongWordSize => &["structural.contract-word-size"],
                Mutation::OverExpansion => &[
                    "differential.expansion-bound",
                    "differential.size-preserving",
                ],
            };
            assert!(
                rules.iter().any(|r| expected.contains(r)),
                "{} + {:?}: got rules {rules:?}, expected one of {expected:?}",
                case.target,
                case.mutation
            );
        }
    }

    #[test]
    fn mutant_is_transparent_without_its_lie() {
        // A BrokenInverse mutant still encodes identically to the inner
        // component — the harness only seeds the *decode* lie.
        let inner = lc_components::lookup("TCMS_4").unwrap();
        let mutant = Mutant::new(inner.clone(), Mutation::BrokenInverse);
        let data: Vec<u8> = (0..100).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        inner.encode_chunk(&data, &mut a, &mut KernelStats::new());
        mutant.encode_chunk(&data, &mut b, &mut KernelStats::new());
        assert_eq!(a, b);
    }
}
