//! Static analysis of LC component contracts.
//!
//! Every component declares a machine-readable [`lc_core::Contract`]; this
//! crate is what makes those declarations trustworthy. It checks them
//! three ways:
//!
//! 1. **Structural rules** ([`structural`]) — facts decidable from the
//!    contracts and trait metadata alone: unique names, contract/trait
//!    agreement, reducer ⇔ size-reducing, expansion bounds compatible
//!    with copy-on-expand, commute claims restricted to size-preserving
//!    components.
//! 2. **Differential property checks** ([`differential`]) — every claim
//!    with behavioral content is executed against the real
//!    `encode_chunk`/`decode_chunk` on an adversarial input corpus
//!    ([`corpus`]): exact inversion, size preservation, expansion bounds,
//!    pointwise-word-map locality, permutation structure, and
//!    length-only kernel statistics.
//! 3. **Self-mutation** ([`mutation`]) — seeded contract violations
//!    (broken inverse, wrong word size, over-expansion) are injected into
//!    otherwise-clean component sets; the harness proves the analyzer
//!    flags every one of them, i.e. the checks are not vacuous.
//! 4. **Abstract interpretation** ([`absint`]) — the contract facts are
//!    composed into a rewrite system that canonicalizes every pipeline in
//!    the campaign space and partitions the space into equivalence
//!    classes, each non-representative member carrying a machine-checkable
//!    certificate; the certificate checker re-derives every side condition
//!    and differentially executes sampled classes, and its own seeded-bug
//!    harness ([`absint::run_absint_harness`]) proves it non-vacuous.
//!
//! The analyzer's verdicts feed `lc-study::campaign`, which uses
//! [`lc_core::Contract::commutes_with`] (and, in canonical mode, the full
//! [`absint`] class map) to deduplicate provably-equivalent pipelines
//! before a sweep, and `lc analyze` in the CLI, which renders a
//! [`Report`] as text or JSON and exits non-zero on any violation.

#![forbid(unsafe_code)]

pub mod absint;
pub mod corpus;
pub mod differential;
pub mod mutation;
pub mod structural;

use std::sync::Arc;
use std::time::Instant;

use lc_core::Component;
use lc_json::Value;

/// One contract violation found by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `"structural.contract-word-size"` or
    /// `"differential.roundtrip"`.
    pub rule: String,
    /// Name of the offending component.
    pub component: String,
    /// Human-readable explanation with the concrete evidence.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(
        rule: impl Into<String>,
        component: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            rule: rule.into(),
            component: component.into(),
            message: message.into(),
        }
    }

    /// JSON object form (`rule`/`component`/`message`).
    pub fn to_json(&self) -> Value {
        Value::object([
            ("rule", Value::from(self.rule.as_str())),
            ("component", Value::from(self.component.as_str())),
            ("message", Value::from(self.message.as_str())),
        ])
    }
}

/// Result of analyzing a component set.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of components analyzed.
    pub components: usize,
    /// Total individual checks executed (structural + differential).
    pub checks: usize,
    /// Provably-commuting unordered stage pairs found among the set.
    pub commuting_pairs: usize,
    /// The commuting pairs by name — exactly the stage pairs the
    /// campaign's commute prune mode deduplicates.
    pub prune_pairs: Vec<(String, String)>,
    /// Violations, in discovery order. Empty ⇔ the set is clean.
    pub diagnostics: Vec<Diagnostic>,
    /// Wall time the analysis took.
    pub runtime: std::time::Duration,
}

impl Report {
    /// `true` when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics grouped by rule id, sorted by rule. Empty ⇔ clean.
    pub fn rule_counts(&self) -> Vec<(String, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for d in &self.diagnostics {
            *counts.entry(d.rule.clone()).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }

    /// JSON form, stable field order, suitable for `lc analyze --format
    /// json` and CI consumption.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("schema", Value::from("lc-analyze/v1")),
            ("components", Value::from(self.components as u64)),
            ("checks", Value::from(self.checks as u64)),
            ("commuting_pairs", Value::from(self.commuting_pairs as u64)),
            (
                "prune_pairs",
                Value::array(self.prune_pairs.iter().map(|(a, b)| {
                    Value::object([
                        ("a", Value::from(a.as_str())),
                        ("b", Value::from(b.as_str())),
                    ])
                })),
            ),
            (
                "rule_counts",
                Value::object(
                    self.rule_counts()
                        .into_iter()
                        .map(|(rule, n)| (rule, Value::from(n as u64))),
                ),
            ),
            ("clean", Value::from(self.is_clean())),
            ("runtime_ms", Value::from(self.runtime.as_secs_f64() * 1e3)),
            (
                "diagnostics",
                Value::array(self.diagnostics.iter().map(Diagnostic::to_json)),
            ),
        ])
    }
}

/// Analyze an arbitrary component set (the mutation harness injects
/// doctored sets here; everything else goes through
/// [`analyze_registry`]).
pub fn analyze(components: &[Arc<dyn Component>]) -> Report {
    let t0 = Instant::now();
    let mut diagnostics = Vec::new();
    let mut checks = 0usize;
    structural::check(components, &mut diagnostics, &mut checks);
    differential::check(components, &mut diagnostics, &mut checks);
    let prune_pairs = commuting_pair_names(components);
    Report {
        components: components.len(),
        checks,
        commuting_pairs: prune_pairs.len(),
        prune_pairs,
        diagnostics,
        runtime: t0.elapsed(),
    }
}

/// Analyze the full shipped registry (all 62 components), adding the
/// registry-level invariants on top of [`analyze`].
pub fn analyze_registry() -> Report {
    let components: Vec<Arc<dyn Component>> = lc_components::all().to_vec();
    let mut report = analyze(&components);
    report.checks += 1;
    if components.len() != lc_components::COMPONENT_COUNT {
        report.diagnostics.push(Diagnostic::new(
            "structural.registry-count",
            "(registry)",
            format!(
                "registry has {} components, expected {}",
                components.len(),
                lc_components::COMPONENT_COUNT
            ),
        ));
    }
    report
}

/// Count unordered component pairs whose contracts provably commute.
pub fn commuting_pairs(components: &[Arc<dyn Component>]) -> usize {
    commuting_pair_names(components).len()
}

/// The provably-commuting unordered pairs by component name, in
/// registry order — the campaign prunes exactly these stage pairs.
pub fn commuting_pair_names(components: &[Arc<dyn Component>]) -> Vec<(String, String)> {
    let contracts: Vec<_> = components.iter().map(|c| c.contract()).collect();
    let mut pairs = Vec::new();
    for i in 0..contracts.len() {
        for j in i + 1..contracts.len() {
            if contracts[i].commutes_with(&contracts[j]) {
                pairs.push((
                    components[i].name().to_string(),
                    components[j].name().to_string(),
                ));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_registry_is_clean() {
        let report = analyze_registry();
        assert!(
            report.is_clean(),
            "registry violations: {:#?}",
            report.diagnostics
        );
        assert_eq!(report.components, 62);
        assert!(report.checks > 62, "checks actually ran");
    }

    #[test]
    fn registry_commuting_pairs_are_mutator_tupl() {
        // 12 mutators × 6 TUPL variants where the mutator word size
        // divides the TUPL field size:
        //   field 1 (TUPL2_1, TUPL4_1, TUPL8_1): w=1 mutators → TCMS_1,
        //     TCNB_1 → 2 each = 6
        //   field 2 (TUPL2_2, TUPL4_2): w ∈ {1,2} → TCMS/TCNB ×2 = 4 each = 8
        //   field 4 (TUPL8_4): w ∈ {1,2,4} → TCMS/TCNB ×3 + DBEFS_4 +
        //     DBESF_4 = 8
        let report = analyze_registry();
        assert_eq!(report.commuting_pairs, 22);
    }

    #[test]
    fn report_json_shape() {
        let report = analyze_registry();
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(|v| v.as_str()),
            Some("lc-analyze/v1")
        );
        assert_eq!(json.get("clean").and_then(|v| v.as_bool()), Some(true));
        let rendered = json.pretty();
        assert!(rendered.contains("commuting_pairs"));
        // Satellite: the JSON carries the prune-pair list (22 named
        // pairs) and per-rule diagnostic counts (empty on a clean set).
        let pairs = json.get("prune_pairs").expect("prune_pairs present");
        if let lc_json::Value::Array(items) = pairs {
            assert_eq!(items.len(), 22);
            assert!(items
                .iter()
                .all(|p| p.get("a").is_some() && p.get("b").is_some()));
        } else {
            panic!("prune_pairs must be an array");
        }
        assert!(json.get("rule_counts").is_some());
    }

    #[test]
    fn dirty_set_reports_per_rule_counts() {
        let mut all: Vec<_> = lc_components::all().to_vec();
        all.push(all[0].clone()); // duplicate name → structural violation
        let report = analyze(&all);
        assert!(!report.is_clean());
        let counts = report.rule_counts();
        assert!(
            counts
                .iter()
                .any(|(rule, n)| rule == "structural.unique-name" && *n >= 1),
            "{counts:?}"
        );
        let json = report.to_json();
        assert!(json
            .get("rule_counts")
            .and_then(|v| v.get("structural.unique-name"))
            .is_some());
    }
}
