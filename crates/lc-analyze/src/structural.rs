//! Structural rules: contract facts decidable without executing a single
//! encode.
//!
//! | rule id                          | invariant                                             |
//! |----------------------------------|-------------------------------------------------------|
//! | `structural.unique-name`         | every component name appears exactly once             |
//! | `structural.contract-kind`       | `contract().kind == kind()`                           |
//! | `structural.contract-word-size`  | `contract().word_size == word_size()`, and ∈ {1,2,4,8}|
//! | `structural.reducer-size-class`  | reducer ⇔ `SizeClass::Reducing` (reducer-only-last:   |
//! |                                  | stage placement rests on exactly this fact)           |
//! | `structural.preserving-exact`    | preserving components declare the exact bound `n`     |
//! | `structural.expansion-bound`     | reducer bounds respect copy-on-expand: `max(n) ≥ n`,  |
//! |                                  | bounded constant overhead at `n = 0`                  |
//! | `structural.commute-class`       | commute claims only on size-preserving components     |
//! | `structural.tuple-size`          | `tuple_size()` is ≥ 2 and divides the chunk           |
//! | `structural.inverse-pair`        | `inverse_of` names a different component in the set   |
//! | `structural.fixes-zero`          | `fixes_zero` only on `PointwiseWordMap` components    |
//! | `structural.fused-of`            | `fused_of` names two components distinct from self    |
//! | `structural.noop-below`          | `noop_below` bound is positive and ≤ one chunk        |
//! | `structural.idempotent`          | `idempotent` only on size-preserving components       |
//! | `structural.size-determinant`    | non-opaque `size_determinant` only on reducers        |

use std::collections::HashMap;
use std::sync::Arc;

use lc_core::{
    CommuteClass, Component, ComponentKind, ExpansionBound, SizeClass, SizeDeterminant, CHUNK_SIZE,
};

use crate::Diagnostic;

/// Largest constant (zero-input) overhead a reducer may declare. The real
/// frames are under 70 bytes; anything bigger is a contract typo.
const MAX_ZERO_OVERHEAD: usize = 4096;

pub(crate) fn check(
    components: &[Arc<dyn Component>],
    diagnostics: &mut Vec<Diagnostic>,
    checks: &mut usize,
) {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for c in components {
        *checks += 1;
        *seen.entry(c.name()).or_insert(0) += 1;
    }
    for (name, count) in &seen {
        if *count > 1 {
            diagnostics.push(Diagnostic::new(
                "structural.unique-name",
                *name,
                format!("registered {count} times; component names must be unique"),
            ));
        }
    }

    for c in components {
        let name = c.name();
        let contract = c.contract();

        *checks += 1;
        if contract.kind != c.kind() {
            diagnostics.push(Diagnostic::new(
                "structural.contract-kind",
                name,
                format!(
                    "contract claims kind {:?} but the component reports {:?}",
                    contract.kind,
                    c.kind()
                ),
            ));
        }

        *checks += 1;
        if contract.word_size != c.word_size() {
            diagnostics.push(Diagnostic::new(
                "structural.contract-word-size",
                name,
                format!(
                    "contract claims word size {} but the component reports {}",
                    contract.word_size,
                    c.word_size()
                ),
            ));
        } else if !matches!(c.word_size(), 1 | 2 | 4 | 8) {
            diagnostics.push(Diagnostic::new(
                "structural.contract-word-size",
                name,
                format!("word size {} is not one of 1/2/4/8", c.word_size()),
            ));
        }

        *checks += 1;
        let is_reducer = c.kind() == ComponentKind::Reducer;
        let is_reducing = contract.size == SizeClass::Reducing;
        if is_reducer != is_reducing {
            diagnostics.push(Diagnostic::new(
                "structural.reducer-size-class",
                name,
                format!(
                    "kind {:?} with size class {:?}: only reducers may change the \
                     chunk size (stage-3-only placement relies on this)",
                    c.kind(),
                    contract.size
                ),
            ));
        }

        *checks += 1;
        match contract.size {
            SizeClass::Preserving => {
                if contract.expansion != ExpansionBound::exact() {
                    diagnostics.push(Diagnostic::new(
                        "structural.preserving-exact",
                        name,
                        "size-preserving component must declare the exact bound n",
                    ));
                }
            }
            SizeClass::Reducing => {
                // Copy-on-expand means a reducer is allowed to expand and
                // get skipped; a bound below n would claim it always
                // shrinks, which no reducer can honor on random data.
                for n in [0usize, 1, 7, CHUNK_SIZE] {
                    if contract.expansion.max_bytes(n) < n {
                        diagnostics.push(Diagnostic::new(
                            "structural.expansion-bound",
                            name,
                            format!(
                                "expansion bound {} < n at n = {n}: incompatible with \
                                 copy-on-expand (reducers may expand before being skipped)",
                                contract.expansion.max_bytes(n)
                            ),
                        ));
                        break;
                    }
                }
                if contract.expansion.max_bytes(0) > MAX_ZERO_OVERHEAD {
                    diagnostics.push(Diagnostic::new(
                        "structural.expansion-bound",
                        name,
                        format!(
                            "constant overhead {} exceeds {MAX_ZERO_OVERHEAD} bytes",
                            contract.expansion.max_bytes(0)
                        ),
                    ));
                }
            }
        }

        *checks += 1;
        if contract.commute != CommuteClass::Opaque && contract.size != SizeClass::Preserving {
            diagnostics.push(Diagnostic::new(
                "structural.commute-class",
                name,
                format!(
                    "commute class {:?} on a size-changing component: commutation \
                     proofs require both stages to preserve the length",
                    contract.commute
                ),
            ));
        }

        *checks += 1;
        if let Some(k) = c.tuple_size() {
            if k < 2 || (k * c.word_size()) > CHUNK_SIZE {
                diagnostics.push(Diagnostic::new(
                    "structural.tuple-size",
                    name,
                    format!(
                        "tuple size {k} at word size {} is out of range",
                        c.word_size()
                    ),
                ));
            }
        }

        *checks += 1;
        if let Some(inv) = contract.inverse_of {
            if inv == name {
                diagnostics.push(Diagnostic::new(
                    "structural.inverse-pair",
                    name,
                    "a component cannot claim to be its own inverse pair",
                ));
            } else if !seen.contains_key(inv) {
                diagnostics.push(Diagnostic::new(
                    "structural.inverse-pair",
                    name,
                    format!("claimed inverse pair {inv:?} is not in the analyzed set"),
                ));
            }
        }

        *checks += 1;
        if contract.fixes_zero && contract.commute != CommuteClass::PointwiseWordMap {
            diagnostics.push(Diagnostic::new(
                "structural.fixes-zero",
                name,
                format!(
                    "fixes_zero is only meaningful for PointwiseWordMap components, \
                     not {:?}",
                    contract.commute
                ),
            ));
        }

        *checks += 1;
        if let Some((base, post)) = contract.fused_of {
            if base == name || post == name || base == post {
                diagnostics.push(Diagnostic::new(
                    "structural.fused-of",
                    name,
                    format!(
                        "fused_of ({base}, {post}) must name two components distinct \
                         from each other and from the fused component"
                    ),
                ));
            }
            // Membership in the analyzed set is deliberately not required
            // (restricted spaces may omit the halves); when both halves
            // are present the composition claim is checked differentially.
        }

        *checks += 1;
        if let Some(bound) = contract.noop_below {
            if bound == 0 || bound > CHUNK_SIZE + 1 {
                diagnostics.push(Diagnostic::new(
                    "structural.noop-below",
                    name,
                    format!(
                        "noop_below bound {bound} is out of range (1..={})",
                        CHUNK_SIZE + 1
                    ),
                ));
            }
        }

        *checks += 1;
        if contract.idempotent && contract.size != SizeClass::Preserving {
            diagnostics.push(Diagnostic::new(
                "structural.idempotent",
                name,
                "idempotence (encode∘encode == encode) requires a size-preserving encoder",
            ));
        }

        *checks += 1;
        if contract.size_determinant != SizeDeterminant::Opaque
            && c.kind() != ComponentKind::Reducer
        {
            diagnostics.push(Diagnostic::new(
                "structural.size-determinant",
                name,
                format!(
                    "size_determinant {:?} on a {:?}: only reducers have a \
                     meaningful size function",
                    contract.size_determinant,
                    c.kind()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_passes_all_structural_rules() {
        let mut diagnostics = Vec::new();
        let mut checks = 0;
        let all: Vec<_> = lc_components::all().to_vec();
        check(&all, &mut diagnostics, &mut checks);
        assert!(diagnostics.is_empty(), "{diagnostics:#?}");
        assert!(checks >= all.len() * 7);
    }

    #[test]
    fn duplicate_registration_is_flagged() {
        let mut all: Vec<_> = lc_components::all().to_vec();
        all.push(all[0].clone());
        let mut diagnostics = Vec::new();
        check(&all, &mut diagnostics, &mut 0);
        assert!(diagnostics
            .iter()
            .any(|d| d.rule == "structural.unique-name"));
    }
}
