//! Registry-wide scalar ↔ SIMD equivalence over the adversarial corpus.
//!
//! For every component in the registry and every corpus input, the encoded
//! bytes and kernel stats under the full detected kernel tier must be
//! bitwise identical to the forced-scalar tier, and decode must roundtrip
//! under both. This is the end-to-end complement of the per-kernel
//! differential suite in `lc-components/tests/kernels_differential.rs`:
//! it goes through the same `encode_stage`/`decode_stage` entry points the
//! archive and campaign runner use, so it also covers the copy-on-expand
//! stage-skip logic under both tiers.

use lc_analyze::corpus;
use lc_components::kernels::{self, Variant};
use lc_core::{decode_stage, encode_stage, KernelStats};

#[test]
fn registry_encodes_identically_under_scalar_and_simd_tiers() {
    // Serialize against other tests in this binary: the tier cap is
    // process-global state.
    let full = kernels::tier();
    let mut cases = 0usize;
    for comp in lc_components::all() {
        for &len in corpus::LENGTHS {
            for input in corpus::inputs(len) {
                // Full-tier encode.
                kernels::set_tier_cap(full);
                let mut enc_simd = Vec::new();
                let mut st_simd = KernelStats::new();
                let applied_simd = encode_stage(comp.as_ref(), &input, &mut enc_simd, &mut st_simd);

                // Forced-scalar encode.
                kernels::set_tier_cap(Variant::Scalar);
                let mut enc_scalar = Vec::new();
                let mut st_scalar = KernelStats::new();
                let applied_scalar =
                    encode_stage(comp.as_ref(), &input, &mut enc_scalar, &mut st_scalar);

                assert_eq!(
                    applied_simd,
                    applied_scalar,
                    "{} len={len}: stage applicability differs across tiers",
                    comp.name()
                );
                assert_eq!(
                    enc_simd,
                    enc_scalar,
                    "{} len={len}: encoded bytes differ across tiers",
                    comp.name()
                );
                assert_eq!(
                    st_simd,
                    st_scalar,
                    "{} len={len}: kernel stats differ across tiers",
                    comp.name()
                );

                if applied_simd {
                    // Scalar decode of the (identical) payload.
                    let mut dec = Vec::new();
                    let mut st = KernelStats::new();
                    decode_stage(comp.as_ref(), &enc_scalar, &mut dec, &mut st).unwrap_or_else(
                        |e| panic!("{} len={len}: scalar decode: {e}", comp.name()),
                    );
                    assert_eq!(dec, input, "{} len={len}: scalar roundtrip", comp.name());

                    // Full-tier decode.
                    kernels::set_tier_cap(full);
                    let mut dec = Vec::new();
                    let mut st = KernelStats::new();
                    decode_stage(comp.as_ref(), &enc_simd, &mut dec, &mut st)
                        .unwrap_or_else(|e| panic!("{} len={len}: simd decode: {e}", comp.name()));
                    assert_eq!(dec, input, "{} len={len}: simd roundtrip", comp.name());
                }
                cases += 1;
            }
        }
    }
    // Restore the tier observed at entry (not a blanket un-cap, which
    // would override an LC_KERNELS pin for the rest of this binary).
    kernels::set_tier_cap(full);
    assert!(cases > 5000, "corpus unexpectedly small: {cases} cases");
}
