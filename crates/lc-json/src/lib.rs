//! Minimal ordered JSON document model.
//!
//! The workspace serializes three artifacts — `run.json`, the campaign
//! journal (`journal.jsonl`), and the quarantine report — and diffs run
//! dumps in `lc-study::compare`. All of that needs exactly: a `Value`
//! tree that preserves object-key insertion order, a strict parser, and
//! deterministic compact/pretty emitters. Determinism is load-bearing:
//! campaign resume promises a byte-identical `run.json`, which holds
//! because `f64` values round-trip losslessly through Rust's shortest
//! `Display` form and object order is insertion order, never a hash.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object field lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a finite `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is an `Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True if this is an `Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parse a JSON document (strict: exactly one value, no trailers).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering: 2-space indent, one field/element per line.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    use fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Infinity; match serde_json's lossy convention.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's Display prints the shortest string that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits"); // invariant: only ASCII bytes were accumulated
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        b => return Err(self.err(format!("invalid escape '\\{}'", b as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty"); // invariant: peek() saw a byte
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    /// Missing keys and non-objects index to `Null` (like `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    /// Out-of-range indices and non-arrays index to `Null`.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl IndexMut<&str> for Value {
    /// Panics when the key is absent or `self` is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        self.get_mut(key)
            .unwrap_or_else(|| panic!("no such object key: {key:?}"))
    }
}

impl IndexMut<usize> for Value {
    /// Panics when the index is out of range or `self` is not an array.
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(items) => &mut items[idx],
            _ => panic!("cannot index non-array with {idx}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Num(f64::from(n))
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(f64::from(*other))
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}
impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::object([
            ("pipelines", Value::from(2048u64)),
            ("ok", Value::from(true)),
            (
                "inputs",
                Value::array(["obs_temp", "msg_sp"].map(Value::from)),
            ),
            (
                "lv",
                Value::object([
                    ("median", Value::from(123.456)),
                    ("n", Value::from(17usize)),
                ]),
            ),
            ("none", Value::Null),
        ])
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = sample();
        assert_eq!(Value::parse(&v.dump()).unwrap(), v);
        assert_eq!(Value::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn object_order_is_insertion_order() {
        let v = sample();
        let s = v.dump();
        let pipelines = s.find("pipelines").unwrap();
        let inputs = s.find("inputs").unwrap();
        let none = s.find("none").unwrap();
        assert!(pipelines < inputs && inputs < none, "{s}");
    }

    #[test]
    fn emitters_are_deterministic() {
        let v = sample();
        assert_eq!(v.pretty(), v.pretty());
        assert_eq!(v.dump(), v.dump());
    }

    #[test]
    fn pretty_format_shape() {
        let v = Value::object([("a", Value::array([Value::from(1u64)]))]);
        assert_eq!(v.pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
        assert_eq!(v.dump(), "{\"a\":[1]}");
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.0e300,
            -7.25,
            123.456,
            0.1 + 0.2,
            2f64.powi(53) + 2.0,
        ] {
            let v = Value::Num(x);
            let back = Value::parse(&v.dump()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::from(42u64).dump(), "42");
        assert_eq!(Value::from(-3i64).dump(), "-3");
        assert_eq!(Value::Num(5.0).dump(), "5");
        assert_eq!(Value::Num(5.5).dump(), "5.5");
    }

    #[test]
    fn index_missing_gives_null() {
        let v = sample();
        assert!(v["nope"]["deeper"][3].is_null());
        assert_eq!(v["lv"]["n"], 17usize);
        assert_eq!(v["inputs"][0], "obs_temp");
        assert_eq!(v["ok"], true);
    }

    #[test]
    fn index_mut_replaces_values() {
        let mut v = sample();
        v["lv"]["median"] = Value::from(999.0);
        assert_eq!(v["lv"]["median"], 999.0);
        v["inputs"][1] = Value::from("swapped");
        assert_eq!(v["inputs"][1], "swapped");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" backslash\\ newline\n tab\t unicode\u{1F600}control\u{1}";
        let v = Value::from(s);
        assert_eq!(Value::parse(&v.dump()).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn parses_standard_escapes_and_surrogates() {
        let v = Value::parse(r#""aA😀\/b""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\u{1F600}/b");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "[01x]",
            "\"bad \\q escape\"",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn nonfinite_numbers_emit_null() {
        assert_eq!(Value::Num(f64::NAN).dump(), "null");
        assert_eq!(Value::Num(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn parse_error_reports_offset() {
        let e = Value::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
