//! End-to-end tests of the `lc` binary.

use std::process::Command;

fn lc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lc"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lc-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn list_shows_all_components() {
    let out = lc().arg("list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("TCMS_4"));
    assert!(text.contains("RAZE_8"));
    assert!(text.contains("TUPL8_4"));
    assert!(text.contains("62 components"));
    assert!(text.contains("107632"));
}

#[test]
fn compress_decompress_roundtrip_via_files() {
    let src = tmp("input.sp");
    let archive = tmp("input.lc");
    let restored = tmp("input.out");
    let file = lc_data::file_by_name("obs_info").unwrap();
    let data = lc_data::generate(file, lc_data::Scale::tiny());
    std::fs::write(&src, &data).unwrap();

    let out = lc()
        .args(["compress", "--pipeline", "DBEFS_4 DIFF_4 RZE_4"])
        .arg(&src)
        .arg(&archive)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = lc()
        .arg("decompress")
        .arg(&archive)
        .arg(&restored)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&restored).unwrap(), data);
}

#[test]
fn unknown_pipeline_component_fails_cleanly() {
    let src = tmp("x.bin");
    std::fs::write(&src, b"hello").unwrap();
    let out = lc()
        .args(["compress", "--pipeline", "NOPE_4 DIFF_4 RZE_4"])
        .arg(&src)
        .arg(tmp("x.lc"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("NOPE_4"), "{err}");
}

#[test]
fn simulate_prints_both_directions() {
    let out = lc()
        .args([
            "simulate",
            "--pipeline",
            "TCMS_4 DIFF_4 CLOG_4",
            "--file",
            "obs_info",
            "--gpu",
            "RTX 4090",
            "--compiler",
            "clang",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("encode"), "{text}");
    assert!(text.contains("decode"), "{text}");
    assert!(text.contains("Clang"), "{text}");
}

#[test]
fn simulate_rejects_clang_on_amd() {
    let out = lc()
        .args([
            "simulate",
            "--pipeline",
            "TCMS_4 DIFF_4 CLOG_4",
            "--gpu",
            "MI100",
            "--compiler",
            "clang",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot target"));
}

#[test]
fn gen_data_writes_requested_file() {
    let dir = tmp("gen");
    let out = lc()
        .args(["gen-data", "--file", "obs_info", "--scale", "8192", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let produced = std::fs::read(dir.join("obs_info.sp")).unwrap();
    assert!(produced.len() >= 64 * 1024);
}

#[test]
fn profile_reports_statistics() {
    let src = tmp("prof.sp");
    let file = lc_data::file_by_name("obs_temp").unwrap();
    std::fs::write(&src, lc_data::generate(file, lc_data::Scale::tiny())).unwrap();
    let out = lc().arg("profile").arg(&src).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("word repeat fraction"), "{text}");
}

#[test]
fn streamed_compress_decompress_roundtrip() {
    let src = tmp("stream.sp");
    let archive = tmp("stream.lc");
    let restored = tmp("stream.out");
    let file = lc_data::file_by_name("obs_error").unwrap();
    let data = lc_data::generate(file, lc_data::Scale::tiny());
    std::fs::write(&src, &data).unwrap();

    let out = lc()
        .args(["compress", "--pipeline", "TCMS_4 DIFF_4 RZE_4", "--stream"])
        .arg(&src)
        .arg(&archive)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("streamed"));

    // decompress auto-detects the streamed format by magic.
    let out = lc()
        .arg("decompress")
        .arg(&archive)
        .arg(&restored)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&restored).unwrap(), data);
}

#[test]
fn verify_subcommand_accepts_good_and_rejects_corrupt() {
    let src = tmp("v.sp");
    let archive = tmp("v.lc");
    let file = lc_data::file_by_name("num_comet").unwrap();
    let data = lc_data::generate(file, lc_data::Scale::tiny());
    std::fs::write(&src, &data).unwrap();
    let out = lc()
        .args(["compress", "--preset", "sp-speed"])
        .arg(&src)
        .arg(&archive)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = lc().arg("verify").arg(&archive).arg(&src).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("bit-exactly"));

    // Truncate the archive: verify must fail with an error message.
    let bytes = std::fs::read(&archive).unwrap();
    std::fs::write(&archive, &bytes[..bytes.len() / 2]).unwrap();
    let out = lc().arg("verify").arg(&archive).output().unwrap();
    assert!(!out.status.success());
}

/// Build a small archive and return (original bytes, archive path).
fn small_archive(tag: &str) -> (Vec<u8>, std::path::PathBuf) {
    let src = tmp(&format!("{tag}.sp"));
    let archive = tmp(&format!("{tag}.lc"));
    let file = lc_data::file_by_name("obs_info").unwrap();
    let data = lc_data::generate(file, lc_data::Scale::tiny());
    std::fs::write(&src, &data).unwrap();
    let out = lc()
        .args(["compress", "--pipeline", "TCMS_4 DIFF_4 RZE_4"])
        .arg(&src)
        .arg(&archive)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (data, archive)
}

#[test]
fn corrupt_archive_exits_2_with_structured_error() {
    let (_, archive) = small_archive("exit2");
    let mut bytes = std::fs::read(&archive).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&archive, &bytes).unwrap();

    let out = lc()
        .arg("decompress")
        .arg(&archive)
        .arg(tmp("exit2.out"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.lines().count() == 1, "single-line error, got {err:?}");
    assert!(err.contains("kind=decode"), "{err}");
    assert!(err.contains("exit=2"), "{err}");
}

#[test]
fn salvage_recovers_intact_chunks_and_exits_3() {
    let (data, archive) = small_archive("salv");
    let mut bytes = std::fs::read(&archive).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&archive, &bytes).unwrap();

    let restored = tmp("salv.out");
    let out = lc()
        .arg("salvage")
        .arg(&archive)
        .arg(&restored)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("kind=salvage"), "{err}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("chunks recovered"), "{text}");

    // Output has the original length; damage is confined to one
    // zero-filled 16 KiB chunk.
    let salvaged = std::fs::read(&restored).unwrap();
    assert_eq!(salvaged.len(), data.len());
    let differing = salvaged.iter().zip(&data).filter(|(a, b)| a != b).count();
    assert!(
        differing > 0 && differing <= 16 * 1024,
        "differing bytes: {differing}"
    );
}

#[test]
fn salvage_of_clean_archive_exits_0() {
    let (data, archive) = small_archive("salvclean");
    let restored = tmp("salvclean.out");
    let out = lc()
        .arg("salvage")
        .arg(&archive)
        .arg(&restored)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&restored).unwrap(), data);
}

#[test]
fn pack_and_unpack_are_aliases_for_compress_and_decompress() {
    let src = tmp("alias.sp");
    let archive = tmp("alias.lc");
    let restored = tmp("alias.out");
    let file = lc_data::file_by_name("obs_info").unwrap();
    let data = lc_data::generate(file, lc_data::Scale::tiny());
    std::fs::write(&src, &data).unwrap();

    let out = lc()
        .args(["pack", "--pipeline", "TCMS_4 DIFF_4 RZE_4"])
        .arg(&src)
        .arg(&archive)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = lc()
        .arg("unpack")
        .arg(&archive)
        .arg(&restored)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&restored).unwrap(), data);
}

#[test]
fn pack_with_trace_out_emits_one_span_per_chunk_and_stage() {
    let src = tmp("trace.sp");
    let archive = tmp("trace.lc");
    let trace = tmp("trace.json");
    let metrics = tmp("metrics.json");
    let file = lc_data::file_by_name("obs_info").unwrap();
    let data = lc_data::generate(file, lc_data::Scale::tiny());
    std::fs::write(&src, &data).unwrap();
    let chunks = data.len().div_ceil(lc_core::CHUNK_SIZE);

    let out = lc()
        .args(["pack", "--pipeline", "TCMS_4 DIFF_4 RZE_4"])
        .arg(&src)
        .arg(&archive)
        .arg("--trace-out")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let parsed = lc_json::Value::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
    let events = parsed
        .get("traceEvents")
        .and_then(lc_json::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Every event is a complete-span record with the fields Perfetto needs.
    for ev in events {
        assert_eq!(ev.get("ph").and_then(lc_json::Value::as_str), Some("X"));
        assert!(ev.get("ts").and_then(lc_json::Value::as_f64).is_some());
        assert!(ev.get("dur").and_then(lc_json::Value::as_f64).is_some());
        assert!(ev.get("name").and_then(lc_json::Value::as_str).is_some());
    }
    // Exactly one stage.encode span per (chunk, stage) pair, all distinct.
    let mut seen = std::collections::HashSet::new();
    for ev in events {
        if ev.get("cat").and_then(lc_json::Value::as_str) != Some("stage.encode") {
            continue;
        }
        let stage = ev
            .get("name")
            .and_then(lc_json::Value::as_str)
            .unwrap()
            .to_string();
        let chunk = ev
            .get("args")
            .and_then(|a| a.get("chunk"))
            .and_then(lc_json::Value::as_u64)
            .expect("stage.encode span carries its chunk index");
        assert!(
            seen.insert((stage, chunk)),
            "duplicate span for chunk {chunk}"
        );
    }
    assert_eq!(seen.len(), chunks * 3, "one span per (chunk, stage)");

    let metrics = lc_json::Value::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
    let bytes_in = metrics
        .get("counters")
        .and_then(|c| c.get("archive.encode.bytes_in"))
        .and_then(lc_json::Value::as_u64);
    assert_eq!(bytes_in, Some(data.len() as u64));
}

#[test]
fn max_decoded_bytes_guards_against_bombs_with_exit_4() {
    let (data, archive) = small_archive("limit");
    let out = lc()
        .args(["decompress"])
        .arg(&archive)
        .arg(tmp("limit.out"))
        .args(["--max-decoded-bytes", "100"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("kind=limit"), "{err}");
    assert!(err.contains("exit=4"), "{err}");

    // A generous limit decodes normally.
    let restored = tmp("limit-ok.out");
    let out = lc()
        .args(["decompress"])
        .arg(&archive)
        .arg(&restored)
        .args(["--max-decoded-bytes", "10000000"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&restored).unwrap(), data);
}

#[test]
fn analyze_reports_clean_registry_in_both_formats() {
    let out = lc().arg("analyze").output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("analyzed 62 components"), "{text}");
    assert!(text.contains("clean: every contract holds"), "{text}");
    assert!(text.contains("22 provably-commuting stage pairs"), "{text}");

    let out = lc().args(["analyze", "--format", "json"]).output().unwrap();
    assert!(out.status.success());
    let json = lc_json::Value::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(
        json.get("schema").and_then(lc_json::Value::as_str),
        Some("lc-analyze/v1")
    );
    assert_eq!(
        json.get("clean").and_then(lc_json::Value::as_bool),
        Some(true)
    );
    assert_eq!(
        json.get("components").and_then(lc_json::Value::as_u64),
        Some(62)
    );
}

#[test]
fn analyze_mutation_harness_catches_all_seeded_violations() {
    let out = lc()
        .args(["analyze", "--format", "json", "--mutation"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = lc_json::Value::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let mutation = json.get("mutation").unwrap();
    let seeded = mutation.get("seeded").and_then(lc_json::Value::as_u64);
    assert_eq!(
        seeded,
        mutation.get("caught").and_then(lc_json::Value::as_u64)
    );
    assert!(seeded.unwrap() >= 12, "at least 12 seeded violations");
}

#[test]
fn analyze_rejects_unknown_format() {
    let out = lc().args(["analyze", "--format", "yaml"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("kind=usage"), "{err}");
}

#[test]
fn analyze_json_lists_prune_pairs_and_rule_counts() {
    let out = lc().args(["analyze", "--format", "json"]).output().unwrap();
    assert!(out.status.success());
    let json = lc_json::Value::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let pairs = json.get("prune_pairs").expect("prune_pairs present");
    match pairs {
        lc_json::Value::Array(items) => {
            assert_eq!(items.len(), 22, "the registry's commuting pairs");
            for p in items {
                assert!(p.get("a").and_then(lc_json::Value::as_str).is_some());
                assert!(p.get("b").and_then(lc_json::Value::as_str).is_some());
            }
        }
        other => panic!("prune_pairs must be an array, got {other:?}"),
    }
    // Clean registry: per-rule counts present but empty.
    match json.get("rule_counts").expect("rule_counts present") {
        lc_json::Value::Object(fields) => assert!(fields.is_empty()),
        other => panic!("rule_counts must be an object, got {other:?}"),
    }
}

#[test]
fn analyze_canonicalize_census_in_both_formats() {
    let out = lc().args(["analyze", "--canonicalize"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("107632 pipelines"), "{text}");
    assert!(text.contains("certified-redundant"), "{text}");
    assert!(text.contains("class-map fingerprint"), "{text}");

    let out = lc()
        .args(["analyze", "--canonicalize", "--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = lc_json::Value::parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(
        json.get("schema").and_then(lc_json::Value::as_str),
        Some("lc-analyze-canonical/v1")
    );
    assert_eq!(
        json.get("pipelines").and_then(lc_json::Value::as_u64),
        Some(107_632)
    );
    let classes = json
        .get("classes")
        .and_then(lc_json::Value::as_u64)
        .unwrap();
    let pruned = json.get("pruned").and_then(lc_json::Value::as_u64).unwrap();
    assert_eq!(classes + pruned, 107_632);
    assert!(pruned >= 3_000, "acceptance floor: {pruned}");
    assert!(json
        .get("fingerprint")
        .and_then(lc_json::Value::as_str)
        .is_some());
}

#[test]
fn analyze_canonicalize_snapshot_drift_exits_6_in_both_formats() {
    let snap = tmp("drift_snapshot.json");
    std::fs::write(
        &snap,
        r#"{"pipelines":107632,"classes":1,"pruned":8178,"exact_pruned":352,"fingerprint":"0000000000000000"}"#,
    )
    .unwrap();
    for format in ["text", "json"] {
        let out = lc()
            .args([
                "analyze",
                "--canonicalize",
                "--format",
                format,
                "--snapshot",
                snap.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(6), "format={format}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("kind=analyze"), "format={format}: {err}");
        assert!(err.contains("exit=6"), "format={format}: {err}");
        assert!(err.contains("snapshot drift"), "format={format}: {err}");
    }
    std::fs::remove_file(&snap).ok();
}
