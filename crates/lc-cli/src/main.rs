//! `lc` — command-line interface to the LC reproduction.
//!
//! ```text
//! lc list                                         component inventory (Table 1)
//! lc compress   --pipeline "BIT_4 DIFF_4 RZE_4" IN OUT
//! lc decompress IN OUT [--max-decoded-bytes N]
//! lc salvage    IN OUT [--max-decoded-bytes N]    recover intact chunks
//! lc gen-data   [--file NAME] [--scale D] [--out DIR]
//! lc profile    FILE                              structural statistics
//! lc simulate   --pipeline "…" [--file NAME] [--gpu NAME] [--compiler C] [--opt 1|3]
//! lc analyze    [--format text|json] [--mutation]  contract static analysis
//!               [--canonicalize [--check quick|full] [--snapshot PATH]]
//!                                                 pipeline-space class census
//! lc serve      [--addr HOST:PORT] [--threads N] [--queue N] [--mem-budget-mb N]
//!               [--max-decoded-bytes N] [--drain-deadline-ms N] [--chaos-seed N]
//!               [--flight-recorder-dump PATH]
//! lc report     --metrics PATH [--top N]           ranked per-kernel cost centers
//! lc shards     DIR                                inspect a sharded campaign's journals
//! ```
//!
//! Failures print a single structured line, `error: kind=<kind>
//! exit=<code> <message>`, and the exit code distinguishes the cause:
//! 1 usage/I-O, 2 corrupt archive ([`lc_core::DecodeError`]), 3 salvage
//! completed but lost chunks, 4 decoded size above `--max-decoded-bytes`,
//! 6 contract violations found by `lc analyze`, 7 `lc serve` escalated
//! its drain to a hard abort (second signal or drain deadline).
//!
//! Every subcommand accepts `--trace-out PATH` (Chrome trace-event JSON,
//! loadable in Perfetto / `chrome://tracing`) and `--metrics-out PATH`
//! (counter + histogram summary JSON). Either flag switches telemetry
//! on; without them the instrumented hot paths cost a single relaxed
//! atomic load. `pack` / `unpack` are aliases for compress / decompress.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Instant;

use gpu_sim::{CompilerId, Direction, OptLevel, SimConfig, ALL_GPUS, RTX_4090};
use lc_core::{archive, DecodeError, Pipeline};
use lc_parallel::Pool;

/// Exit codes: generic failure (bad usage, I/O, unknown names).
const EXIT_GENERIC: u8 = 1;
/// The archive is corrupt (any [`DecodeError`] except the size limit).
const EXIT_DECODE: u8 = 2;
/// Salvage ran to completion but some chunks were unrecoverable.
const EXIT_SALVAGE_LOSSES: u8 = 3;
/// The archive declares more decoded bytes than `--max-decoded-bytes`.
const EXIT_LIMIT: u8 = 4;
/// `lc analyze` found contract violations.
const EXIT_ANALYZE: u8 = 6;
/// `lc serve` drained, but only after escalating to a hard abort
/// (second signal or drain deadline) — in-flight requests were
/// cancelled with structured errors rather than finishing.
const EXIT_INTERRUPTED: u8 = 7;

/// A classified CLI failure: `kind` and `exit` make scripted callers'
/// error handling exact; `msg` is for the human.
struct CliError {
    kind: &'static str,
    exit: u8,
    msg: String,
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        Self {
            kind: "usage",
            exit: EXIT_GENERIC,
            msg,
        }
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        Self::from(msg.to_string())
    }
}

impl From<DecodeError> for CliError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::TooLarge { .. } => Self {
                kind: "limit",
                exit: EXIT_LIMIT,
                msg: e.to_string(),
            },
            _ => Self {
                kind: "decode",
                exit: EXIT_DECODE,
                msg: e.to_string(),
            },
        }
    }
}

impl From<lc_core::stream::StreamError> for CliError {
    fn from(e: lc_core::stream::StreamError) -> Self {
        match e {
            lc_core::stream::StreamError::Decode(d) => Self::from(d),
            io => Self {
                kind: "decode",
                exit: EXIT_DECODE,
                msg: io.to_string(),
            },
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: lc <list|compress|decompress|salvage|gen-data|profile|simulate> … (--help)"
        );
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let trace_out = flag_value(rest, "--trace-out").map(str::to_string);
    let metrics_out = flag_value(rest, "--metrics-out").map(str::to_string);
    if trace_out.is_some() || metrics_out.is_some() {
        lc_telemetry::enable();
    }
    let result = match cmd.as_str() {
        "list" => cmd_list(),
        "compress" | "pack" => cmd_compress(rest),
        "decompress" | "unpack" => cmd_decompress(rest),
        "salvage" => cmd_salvage(rest),
        "gen-data" => cmd_gen_data(rest),
        "profile" => cmd_profile(rest),
        "simulate" => cmd_simulate(rest),
        "bench-components" => cmd_bench_components(rest),
        "verify" => cmd_verify(rest),
        "analyze" => cmd_analyze(rest),
        "serve" => cmd_serve(rest),
        "report" => cmd_report(rest),
        "shards" => cmd_shards(rest),
        "--help" | "-h" | "help" => {
            println!(
                "lc — LC compression framework reproduction\n\
                 subcommands:\n  \
                 list                       show all 62 components\n  \
                 compress   --pipeline P IN OUT\n  \
                 decompress IN OUT [--max-decoded-bytes N]\n  \
                 salvage    IN OUT [--max-decoded-bytes N]  recover intact chunks of a damaged archive\n  \
                 gen-data   [--file NAME] [--scale D] [--out DIR]\n  \
                 profile    FILE\n  \
                 simulate   --pipeline P [--file NAME] [--gpu NAME] [--compiler nvcc|clang|hipcc] [--opt 1|3]\n  \
                 bench-components [--file NAME]  CPU throughput of every component\n  \
                 verify     ARCHIVE [ORIGINAL]    check an archive decodes (and matches ORIGINAL)\n  \
                 analyze    [--format text|json] [--mutation]  check every component contract\n             \
                 [--canonicalize [--check quick|full] [--snapshot PATH]]  class census of the\n             \
                 107,632-pipeline space (certified equivalence classes, rewrite-rule counts)\n  \
                 serve      [--addr HOST:PORT] [--threads N] [--queue N] [--mem-budget-mb N]\n             \
                 [--max-decoded-bytes N] [--drain-deadline-ms N] [--chaos-seed N]\n             \
                 [--flight-recorder-dump PATH]\n  \
                 report     --metrics PATH [--top N]  ranked per-kernel cost centers\n  \
                 shards     DIR                   per-shard progress and merge readiness of a\n             \
                 sharded reproduce campaign (journal.K-of-N.jsonl files)\n\
                 aliases: pack = compress, unpack = decompress\n\
                 telemetry: any subcommand takes --trace-out PATH (Chrome trace JSON)\n\
                 and --metrics-out PATH (counter/histogram summary JSON)\n\
                 exit codes: 0 ok, 1 usage/io, 2 corrupt archive, 3 salvage with losses, \
                 4 size limit, 6 contract violations, 7 serve hard-aborted its drain"
            );
            Ok(())
        }
        other => Err(CliError::from(format!("unknown subcommand {other:?}"))),
    };
    // Export telemetry even when the command failed: a partial trace of a
    // decode that errored out is exactly when you want to look at one.
    let result = match write_telemetry(trace_out.as_deref(), metrics_out.as_deref()) {
        Ok(()) => result,
        Err(t) => result.and(Err(t)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // One structured line; newlines flattened so kind/exit stay
            // machine-greppable.
            eprintln!(
                "error: kind={} exit={} {}",
                e.kind,
                e.exit,
                e.msg.replace('\n', " ")
            );
            ExitCode::from(e.exit)
        }
    }
}

/// Drain buffered telemetry and write the requested export files.
fn write_telemetry(trace: Option<&str>, metrics: Option<&str>) -> Result<(), CliError> {
    if trace.is_none() && metrics.is_none() {
        return Ok(());
    }
    let events = lc_telemetry::drain();
    let policy = lc_chaos::fs::SyncPolicy::default();
    if let Some(path) = trace {
        let body = lc_telemetry::export::chrome_trace(&events);
        lc_chaos::fs::atomic_write(std::path::Path::new(path), body.as_bytes(), policy)
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace: {} events -> {path}", events.len());
    }
    if let Some(path) = metrics {
        let body = lc_telemetry::export::metrics_value().pretty();
        lc_chaos::fs::atomic_write(std::path::Path::new(path), body.as_bytes(), policy)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(())
}

/// Parse `--max-decoded-bytes N` if present.
fn max_decoded_bytes(rest: &[String]) -> Result<Option<u64>, CliError> {
    match rest.iter().position(|a| a == "--max-decoded-bytes") {
        None => Ok(None),
        Some(i) => match rest.get(i + 1) {
            None => Err("--max-decoded-bytes requires a value".into()),
            Some(v) => v
                .parse::<u64>()
                .map(Some)
                .map_err(|e| CliError::from(format!("--max-decoded-bytes: {e}"))),
        },
    }
}

fn flag_value<'a>(rest: &'a [String], name: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == name)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

/// Flags that take no value.
const BOOLEAN_FLAGS: [&str; 1] = ["--stream"];

fn positional(rest: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in rest {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BOOLEAN_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn cmd_list() -> Result<(), CliError> {
    println!(
        "{:10} {:10} {:>5} {:>6}  component",
        "name", "kind", "word", "tuple"
    );
    for c in lc_components::all() {
        println!(
            "{:10} {:10} {:>5} {:>6}  {}",
            c.name(),
            c.kind().label(),
            c.word_size(),
            c.tuple_size().map_or("-".to_string(), |k| k.to_string()),
            lc_core::component::family_of(c.name()),
        );
    }
    println!(
        "total: {} components, {} reducers, {} three-stage pipelines",
        lc_components::COMPONENT_COUNT,
        lc_components::REDUCER_COUNT,
        lc_components::PIPELINE_COUNT
    );
    println!("\npresets (use with compress --preset NAME):");
    for p in &lc_components::presets::PRESETS {
        println!("  {:10} {:28} {}", p.name, p.pipeline, p.purpose);
    }
    Ok(())
}

fn parse_pipeline(rest: &[String]) -> Result<Pipeline, String> {
    if let Some(name) = flag_value(rest, "--preset") {
        return lc_components::presets::preset(name).map_err(|e| {
            format!(
                "{e} (available presets: {})",
                lc_components::presets::names().join(", ")
            )
        });
    }
    let text = flag_value(rest, "--pipeline")
        .ok_or("missing --pipeline \"C1 C2 C3\" (or --preset NAME)")?;
    lc_components::parse_pipeline(text).map_err(|e| e.to_string())
}

fn cmd_compress(rest: &[String]) -> Result<(), CliError> {
    let pipeline = parse_pipeline(rest)?;
    let pos = positional(rest);
    let [input, output] = pos[..] else {
        return Err("usage: lc compress --pipeline \"…\" [--stream] IN OUT".into());
    };
    let pool = Pool::with_default_threads();
    if rest.iter().any(|a| a == "--stream") {
        // Bounded-memory streaming path for large files.
        let mut r = std::io::BufReader::new(
            std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?,
        );
        let mut w = std::io::BufWriter::new(
            // durable-exempt: user-named output of a one-shot CLI command.
            std::fs::File::create(output).map_err(|e| format!("{output}: {e}"))?,
        );
        let t0 = Instant::now();
        let enc = lc_core::stream::StreamEncoder::new(&pipeline, pool);
        let (read, written) = enc.encode(&mut r, &mut w).map_err(|e| e.to_string())?;
        use std::io::Write as _;
        w.flush().map_err(|e| e.to_string())?;
        println!(
            "{input} -> {output} (streamed): {read} -> {written} bytes (ratio {:.3}) in {:.3}s",
            read as f64 / written as f64,
            t0.elapsed().as_secs_f64()
        );
        return Ok(());
    }
    let data = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let t0 = Instant::now();
    let res = archive::encode_with_stats(&pipeline, &data, &pool);
    let dt = t0.elapsed().as_secs_f64();
    // durable-exempt: user-named output of a one-shot CLI command.
    std::fs::write(output, &res.archive).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "{} -> {}: {} -> {} bytes (ratio {:.3}) in {:.3}s ({:.2} GB/s on this CPU)",
        input,
        output,
        data.len(),
        res.archive.len(),
        data.len() as f64 / res.archive.len() as f64,
        dt,
        data.len() as f64 / 1e9 / dt,
    );
    for st in &res.stats.stages {
        println!(
            "  {:10} applied {:5} skipped {:5}  {} -> {} bytes",
            st.component, st.chunks_applied, st.chunks_skipped, st.bytes_in, st.bytes_out
        );
    }
    Ok(())
}

fn cmd_decompress(rest: &[String]) -> Result<(), CliError> {
    let pos = positional(rest);
    let [input, output] = pos[..] else {
        return Err("usage: lc decompress IN OUT [--max-decoded-bytes N]".into());
    };
    let limit = max_decoded_bytes(rest)?;
    let data = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let pool = Pool::with_default_threads();
    let t0 = Instant::now();
    // Both archive flavors are self-describing; dispatch on the magic.
    let out = if data.starts_with(&lc_core::stream::STREAM_MAGIC) {
        if limit.is_some() {
            return Err(
                "--max-decoded-bytes applies to LCRP archives; streams (LCRS) decode \
                 chunk-by-chunk in bounded memory already"
                    .into(),
            );
        }
        let mut out = Vec::new();
        lc_core::stream::decode_stream(&mut &data[..], &mut out, lc_components::lookup, &pool)?;
        out
    } else {
        match limit {
            Some(max) => archive::decode_bounded(&data, lc_components::lookup, &pool, max)?,
            None => archive::decode(&data, lc_components::lookup, &pool)?,
        }
    };
    let dt = t0.elapsed().as_secs_f64();
    // durable-exempt: user-named output of a one-shot CLI command.
    std::fs::write(output, &out).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "{} -> {}: {} -> {} bytes in {:.3}s",
        input,
        output,
        data.len(),
        out.len(),
        dt
    );
    Ok(())
}

fn cmd_salvage(rest: &[String]) -> Result<(), CliError> {
    let pos = positional(rest);
    let [input, output] = pos[..] else {
        return Err("usage: lc salvage IN OUT [--max-decoded-bytes N]".into());
    };
    let limit = max_decoded_bytes(rest)?;
    let data = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;
    let pool = Pool::with_default_threads();
    let t0 = Instant::now();
    let (out, report) = match limit {
        Some(max) => archive::decode_salvage_bounded(&data, lc_components::lookup, &pool, max)?,
        None => archive::decode_salvage(&data, lc_components::lookup, &pool)?,
    };
    let dt = t0.elapsed().as_secs_f64();
    // durable-exempt: user-named output of a one-shot CLI command.
    std::fs::write(output, &out).map_err(|e| format!("{output}: {e}"))?;
    println!(
        "{} -> {}: {} of {} chunks recovered ({} bytes) in {:.3}s",
        input,
        output,
        report.recovered,
        report.recovered + report.lost,
        out.len(),
        dt
    );
    if !report.archive_crc_ok {
        println!("  archive checksum mismatch: undetected damage may remain in recovered chunks");
    }
    for f in &report.errors {
        println!("  chunk {}: {} (zero-filled)", f.chunk, f.error);
    }
    if report.is_clean() {
        Ok(())
    } else {
        let msg = if report.lost > 0 {
            format!(
                "{} chunk(s) unrecoverable and zero-filled in {output}",
                report.lost
            )
        } else {
            format!("archive checksum mismatch; {output} may contain undetected damage")
        };
        Err(CliError {
            kind: "salvage",
            exit: EXIT_SALVAGE_LOSSES,
            msg,
        })
    }
}

fn cmd_gen_data(rest: &[String]) -> Result<(), CliError> {
    let scale: u32 = flag_value(rest, "--scale")
        .unwrap_or("512")
        .parse()
        .map_err(|e| format!("--scale: {e}"))?;
    let out_dir = flag_value(rest, "--out").unwrap_or("sp-data");
    std::fs::create_dir_all(out_dir).map_err(|e| format!("{out_dir}: {e}"))?;
    let scale = lc_data::Scale::denominator(scale);
    let files: Vec<&lc_data::SpFile> = match flag_value(rest, "--file") {
        Some(name) => {
            vec![lc_data::file_by_name(name).ok_or_else(|| format!("unknown file {name:?}"))?]
        }
        None => lc_data::SP_FILES.iter().collect(),
    };
    for f in files {
        let data = lc_data::generate(f, scale);
        let path = format!("{out_dir}/{}.sp", f.name);
        // durable-exempt: user-named output of a one-shot CLI command.
        std::fs::write(&path, &data).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: {} bytes ({:?})", data.len(), f.domain);
    }
    Ok(())
}

fn cmd_profile(rest: &[String]) -> Result<(), CliError> {
    let pos = positional(rest);
    let [path] = pos[..] else {
        return Err("usage: lc profile FILE".into());
    };
    let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let p = lc_data::profile::profile(&data);
    println!("{path}: {} bytes", p.bytes);
    println!("  word repeat fraction : {:.4}", p.word_repeat_fraction);
    println!("  byte repeat fraction : {:.4}", p.byte_repeat_fraction);
    println!("  zero word fraction   : {:.4}", p.zero_word_fraction);
    println!("  mean |delta| (f32)   : {:.4}", p.mean_abs_delta);
    println!("  distinct exponents   : {}", p.distinct_exponents);
    Ok(())
}

fn cmd_verify(rest: &[String]) -> Result<(), CliError> {
    let pos = positional(rest);
    let (archive_path, original) = match pos[..] {
        [a] => (a, None),
        [a, o] => (a, Some(o)),
        _ => return Err("usage: lc verify ARCHIVE [ORIGINAL]".into()),
    };
    let data = std::fs::read(archive_path).map_err(|e| format!("{archive_path}: {e}"))?;
    let pool = Pool::with_default_threads();
    let out = if data.starts_with(&lc_core::stream::STREAM_MAGIC) {
        let mut out = Vec::new();
        lc_core::stream::decode_stream(&mut &data[..], &mut out, lc_components::lookup, &pool)?;
        out
    } else {
        archive::decode(&data, lc_components::lookup, &pool)?
    };
    println!("{archive_path}: decodes cleanly to {} bytes", out.len());
    if let Some(orig_path) = original {
        let orig = std::fs::read(orig_path).map_err(|e| format!("{orig_path}: {e}"))?;
        if orig == out {
            println!("matches {orig_path} bit-exactly");
        } else {
            return Err(format!(
                "decoded output differs from {orig_path} ({} vs {} bytes)",
                out.len(),
                orig.len()
            )
            .into());
        }
    }
    Ok(())
}

/// `lc analyze [--format text|json] [--mutation]` — run the contract
/// static analyzer over the shipped registry: structural rules plus
/// differential property checks of every contract claim against the
/// real encode/decode kernels. `--mutation` additionally runs the
/// self-mutation harness (seeded contract violations that the analyzer
/// must catch — proof the checks are not vacuous). Any violation turns
/// the exit code to [`EXIT_ANALYZE`].
///
/// `--canonicalize` switches to the abstract interpreter: classify the
/// full 107,632-pipeline space into certified equivalence classes and
/// print the census. `--check quick|full` additionally runs the
/// certificate checker, `--snapshot PATH` gates the census against a
/// committed snapshot (any drift exits [`EXIT_ANALYZE`] with a diff),
/// and `--mutation` runs the absint seeded-bug harness instead of the
/// contract one. Exit-code semantics are identical in text and JSON
/// modes.
fn cmd_analyze(rest: &[String]) -> Result<(), CliError> {
    let format = flag_value(rest, "--format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("--format must be text or json, got {format:?}").into());
    }
    if rest.iter().any(|a| a == "--canonicalize") {
        return cmd_analyze_canonicalize(rest, format);
    }
    let report = lc_analyze::analyze_registry();
    let run_mutation = rest.iter().any(|a| a == "--mutation");
    let mutation = run_mutation.then(lc_analyze::mutation::run_harness);
    let missed: Vec<String> = mutation
        .iter()
        .flatten()
        .filter(|c| !c.caught)
        .map(|c| format!("{} + {:?}", c.target, c.mutation))
        .collect();

    if format == "json" {
        let mut json = report.to_json();
        if let Some(cases) = &mutation {
            let caught = cases.iter().filter(|c| c.caught).count();
            if let lc_json::Value::Object(fields) = &mut json {
                fields.push((
                    "mutation".to_string(),
                    lc_json::Value::object([
                        ("seeded", lc_json::Value::from(cases.len() as u64)),
                        ("caught", lc_json::Value::from(caught as u64)),
                        (
                            "missed",
                            lc_json::Value::array(
                                missed.iter().map(|m| lc_json::Value::from(m.as_str())),
                            ),
                        ),
                    ]),
                ));
            }
        }
        println!("{}", json.pretty());
    } else {
        println!(
            "analyzed {} components: {} checks, {} provably-commuting stage pairs, {:.0} ms",
            report.components,
            report.checks,
            report.commuting_pairs,
            report.runtime.as_secs_f64() * 1e3
        );
        for d in &report.diagnostics {
            println!("violation [{}] {}: {}", d.rule, d.component, d.message);
        }
        for (rule, n) in report.rule_counts() {
            println!("rule {rule}: {n} violation(s)");
        }
        if let Some(cases) = &mutation {
            let caught = cases.iter().filter(|c| c.caught).count();
            println!(
                "mutation harness: {caught}/{} seeded violations detected",
                cases.len()
            );
            for m in &missed {
                println!("undetected mutant: {m}");
            }
        }
        if report.is_clean() && missed.is_empty() {
            println!("clean: every contract holds");
        }
    }

    if !report.is_clean() || !missed.is_empty() {
        return Err(CliError {
            kind: "analyze",
            exit: EXIT_ANALYZE,
            msg: format!(
                "{} contract violation(s), {} undetected mutant(s)",
                report.diagnostics.len(),
                missed.len()
            ),
        });
    }
    Ok(())
}

/// The `--canonicalize` arm of `lc analyze`: classify the full pipeline
/// space, print the class census, and optionally check certificates,
/// gate on a committed snapshot, and run the absint mutation harness.
fn cmd_analyze_canonicalize(rest: &[String], format: &str) -> Result<(), CliError> {
    use lc_analyze::absint;

    let depth = match flag_value(rest, "--check") {
        None => None,
        Some("quick") => Some(absint::CheckDepth::Quick),
        Some("full") => Some(absint::CheckDepth::Full),
        Some(other) => return Err(format!("--check must be quick or full, got {other:?}").into()),
    };
    let snapshot_path = flag_value(rest, "--snapshot").map(str::to_string);
    let run_mutation = rest.iter().any(|a| a == "--mutation");

    let components: Vec<std::sync::Arc<dyn lc_core::Component>> = lc_components::all().to_vec();
    let reducers = lc_components::reducers();
    let map = absint::classify(&components, &reducers, &[], &absint::RuleTable::SOUND);
    let census = absint::census(&map, &reducers);

    let check = depth.map(|d| absint::check_certificates(&components, &reducers, &map, d));
    let mutation = run_mutation.then(absint::run_absint_harness);
    let missed: Vec<String> = mutation
        .iter()
        .flatten()
        .filter(|c| !c.caught)
        .map(|c| format!("{:?}", c.mutation))
        .collect();

    // Snapshot gate: the committed census (classes, pruned, fingerprint)
    // must match this run exactly; any drift is a structured diff.
    let mut snapshot_diff: Vec<String> = Vec::new();
    if let Some(path) = &snapshot_path {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read snapshot {path}: {e}"))?;
        let snap = lc_json::Value::parse(&text)
            .map_err(|e| format!("snapshot {path} is not valid JSON: {e}"))?;
        let fields: [(&str, u64); 4] = [
            ("pipelines", census.pipelines as u64),
            ("classes", census.classes as u64),
            ("pruned", census.pruned as u64),
            ("exact_pruned", census.exact_pruned as u64),
        ];
        for (name, actual) in fields {
            match snap.get(name).and_then(|v| v.as_u64()) {
                Some(expected) if expected == actual => {}
                Some(expected) => {
                    snapshot_diff.push(format!("{name}: snapshot {expected}, actual {actual}"))
                }
                None => snapshot_diff.push(format!("{name}: missing from snapshot")),
            }
        }
        let fp = format!("{:016x}", census.fingerprint);
        match snap.get("fingerprint").and_then(|v| v.as_str()) {
            Some(expected) if expected == fp => {}
            Some(expected) => {
                snapshot_diff.push(format!("fingerprint: snapshot {expected}, actual {fp}"))
            }
            None => snapshot_diff.push("fingerprint: missing from snapshot".to_string()),
        }
    }

    let check_clean = check.as_ref().map(|r| r.is_clean()).unwrap_or(true);
    if format == "json" {
        let mut json = census.to_json();
        if let lc_json::Value::Object(fields) = &mut json {
            if let Some(r) = &check {
                fields.push(("check".to_string(), r.to_json()));
            }
            if let Some(cases) = &mutation {
                let caught = cases.iter().filter(|c| c.caught).count();
                fields.push((
                    "mutation".to_string(),
                    lc_json::Value::object([
                        ("seeded", lc_json::Value::from(cases.len() as u64)),
                        ("caught", lc_json::Value::from(caught as u64)),
                        (
                            "missed",
                            lc_json::Value::array(
                                missed.iter().map(|m| lc_json::Value::from(m.as_str())),
                            ),
                        ),
                    ]),
                ));
            }
            if let Some(path) = &snapshot_path {
                fields.push((
                    "snapshot".to_string(),
                    lc_json::Value::object([
                        ("path", lc_json::Value::from(path.as_str())),
                        ("matches", lc_json::Value::from(snapshot_diff.is_empty())),
                        (
                            "diff",
                            lc_json::Value::array(
                                snapshot_diff
                                    .iter()
                                    .map(|d| lc_json::Value::from(d.as_str())),
                            ),
                        ),
                    ]),
                ));
            }
        }
        println!("{}", json.pretty());
    } else {
        print!("{}", census.render_text());
        if let Some(r) = &check {
            println!(
                "certificate checker: {} certificates, {} kinds, {} classes executed \
                 differentially, {} — {:.0} ms",
                r.certificates,
                r.kinds,
                r.differential_classes,
                if r.is_clean() {
                    "all valid"
                } else {
                    "REJECTIONS"
                },
                r.runtime.as_secs_f64() * 1e3
            );
            for f in &r.failures {
                println!(
                    "rejected certificate: member {:?} [{}] {}",
                    f.member, f.layer, f.detail
                );
            }
        }
        if let Some(cases) = &mutation {
            let caught = cases.iter().filter(|c| c.caught).count();
            println!(
                "absint mutation harness: {caught}/{} seeded bugs detected",
                cases.len()
            );
            for m in &missed {
                println!("undetected absint mutant: {m}");
            }
        }
        if let Some(path) = &snapshot_path {
            if snapshot_diff.is_empty() {
                println!("snapshot {path}: census matches");
            } else {
                println!("snapshot {path}: CENSUS DRIFT");
                for d in &snapshot_diff {
                    println!("  {d}");
                }
            }
        }
    }

    if !check_clean || !missed.is_empty() || !snapshot_diff.is_empty() {
        return Err(CliError {
            kind: "analyze",
            exit: EXIT_ANALYZE,
            msg: format!(
                "{} rejected certificate(s), {} undetected absint mutant(s), \
                 {} snapshot drift(s)",
                check.as_ref().map(|r| r.failures.len()).unwrap_or(0),
                missed.len(),
                snapshot_diff.len()
            ),
        });
    }
    Ok(())
}

/// `lc serve` — run the deadline-governed compression service until a
/// signal drains it. SIGINT/SIGTERM starts a graceful drain (stop
/// accepting, finish or deadline-out in-flight requests, exit 0); a
/// second signal or the drain deadline escalates to a hard abort
/// (in-flight requests get structured errors, exit [`EXIT_INTERRUPTED`]).
fn cmd_serve(rest: &[String]) -> Result<(), CliError> {
    fn numeric<T: std::str::FromStr>(rest: &[String], name: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match flag_value(rest, name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| CliError::from(format!("{name}: {e}"))),
        }
    }

    let cfg = lc_serve::ServeConfig {
        addr: flag_value(rest, "--addr")
            .unwrap_or("127.0.0.1:7399")
            .to_string(),
        worker_threads: numeric(rest, "--threads", 4usize)?,
        pool_threads: numeric(rest, "--pool-threads", lc_parallel::default_threads())?,
        queue_capacity: numeric(rest, "--queue", 64usize)?,
        mem_budget_bytes: flag_value(rest, "--mem-budget-mb")
            .map(|v| v.parse::<u64>().map(|mb| mb << 20))
            .transpose()
            .map_err(|e| CliError::from(format!("--mem-budget-mb: {e}")))?,
        max_payload_bytes: numeric(rest, "--max-payload-bytes", 64u64 << 20)?,
        max_decoded_bytes: max_decoded_bytes(rest)?.unwrap_or(256 << 20),
        drain_deadline_ms: numeric(rest, "--drain-deadline-ms", 5_000u64)?,
        chaos_seed: flag_value(rest, "--chaos-seed")
            .map(str::parse)
            .transpose()
            .map_err(|e| CliError::from(format!("--chaos-seed: {e}")))?,
        flight_dump: Some(std::path::PathBuf::from(
            flag_value(rest, "--flight-recorder-dump").unwrap_or("lc-flight.jsonl"),
        )),
    };

    // The serve black box is always on: the flight recorder arms for
    // the process lifetime and is published on panic or hard abort;
    // bounded metrics (cost-center counters, queue-depth gauges) record
    // regardless of the export flags so `debug`-op dumps and summaries
    // are never empty. The unbounded span sink still requires
    // --trace-out, as for every other subcommand.
    lc_telemetry::flight::arm(0);
    if let Some(path) = &cfg.flight_dump {
        lc_telemetry::flight::dump_on_panic(path.clone());
    }
    lc_telemetry::enable_metrics();

    // SIGINT/SIGTERM drive the drain state machine; a conflicting
    // pre-installed handler is a hard configuration error, not UB.
    let drain = lc_parallel::CancelToken::watching_signals()
        .map_err(|e| CliError::from(format!("cannot watch shutdown signals: {e}")))?;
    let server = lc_serve::Server::bind(cfg.clone(), drain)
        .map_err(|e| CliError::from(format!("bind {}: {e}", cfg.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::from(format!("local_addr: {e}")))?;
    eprintln!(
        "lc serve: listening on {addr} (pid {}, workers {}, queue {}, drain deadline {} ms{})",
        std::process::id(),
        cfg.worker_threads,
        cfg.queue_capacity,
        cfg.drain_deadline_ms,
        cfg.chaos_seed
            .map(|s| format!(", chaos seed {s}"))
            .unwrap_or_default(),
    );

    let summary = server.run();
    println!("{}", summary.to_json().pretty());
    if !summary.accounted() {
        return Err(CliError {
            kind: "serve",
            exit: EXIT_GENERIC,
            msg: format!(
                "request accounting violated: {} in != {} ok + {} err + {} shed + {} write-failed",
                summary.requests_in,
                summary.responses_ok,
                summary.responses_err,
                summary.sheds,
                summary.response_write_failed
            ),
        });
    }
    if summary.hard_aborted {
        return Err(CliError {
            kind: "interrupted",
            exit: EXIT_INTERRUPTED,
            msg: "drain escalated to hard abort; in-flight requests were cancelled".to_string(),
        });
    }
    Ok(())
}

/// `lc report --metrics PATH [--top N]` — rank per-kernel cost centers
/// from a metrics export. Works on any file written by `--metrics-out`
/// (CLI one-shots, `lc serve`) or the campaign's `metrics.json`: every
/// kernel invocation lands in `component.<name>.<encode|decode>.*`
/// counters and histograms, and this table answers "where did the time
/// and bytes actually go" across both serve traffic and sweeps.
fn cmd_report(rest: &[String]) -> Result<(), CliError> {
    let path = flag_value(rest, "--metrics").ok_or(
        "usage: lc report --metrics PATH [--top N] \
         (PATH is a --metrics-out export or a campaign metrics.json)",
    )?;
    let top: usize = flag_value(rest, "--top")
        .unwrap_or("20")
        .parse()
        .map_err(|e| format!("--top: {e}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let v = lc_json::Value::parse(&text)
        .map_err(|e| format!("{path}: not valid metrics JSON: {e:?}"))?;
    let counters = v.get("counters");
    let hists = match v.get("histograms") {
        Some(lc_json::Value::Object(fields)) => fields,
        _ => {
            return Err(
                format!("{path}: no histograms object — expected a --metrics-out export").into(),
            )
        }
    };

    struct Row {
        component: String,
        dir: String,
        calls: u64,
        bytes: u64,
        ns: u64,
        kernel: String,
    }
    // Kernel-variant tag per (component, dir): the largest
    // `component.<name>.<dir>.kernel.<variant>` counter names the SIMD
    // tier that handled the traffic.
    let kernel_of = |component: &str, dir: &str| -> String {
        let prefix = format!("component.{component}.{dir}.kernel.");
        let Some(lc_json::Value::Object(fields)) = counters else {
            return "-".to_string();
        };
        fields
            .iter()
            .filter_map(|(k, v)| {
                k.strip_prefix(prefix.as_str())
                    .map(|variant| (v.as_u64().unwrap_or(0), variant))
            })
            .max()
            .map_or_else(|| "-".to_string(), |(_, variant)| variant.to_string())
    };
    let mut rows: Vec<Row> = Vec::new();
    for (name, h) in hists {
        let Some(center) = name
            .strip_prefix("component.")
            .and_then(|n| n.strip_suffix(".ns"))
        else {
            continue;
        };
        let Some((component, dir)) = center.rsplit_once('.') else {
            continue;
        };
        rows.push(Row {
            component: component.to_string(),
            dir: dir.to_string(),
            calls: h.get("count").and_then(|x| x.as_u64()).unwrap_or(0),
            bytes: counters
                .and_then(|c| c.get(&format!("component.{component}.{dir}.bytes")))
                .and_then(|x| x.as_u64())
                .unwrap_or(0),
            ns: h.get("sum").and_then(|x| x.as_u64()).unwrap_or(0),
            kernel: kernel_of(component, dir),
        });
    }
    if rows.is_empty() {
        return Err(format!(
            "{path}: no component.* cost centers — generate the export with telemetry on \
             (any subcommand with --metrics-out, or lc serve)"
        )
        .into());
    }
    rows.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.component.cmp(&b.component)));
    let total_ns: u64 = rows.iter().map(|r| r.ns).sum();
    println!(
        "cost centers from {path}: {} kernels, {:.2} ms attributed",
        rows.len(),
        total_ns as f64 / 1e6
    );
    println!(
        "{:<12} {:<7} {:<7} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "component", "dir", "kernel", "calls", "MB", "ms", "MB/s", "share"
    );
    for r in rows.iter().take(top) {
        let secs = r.ns as f64 / 1e9;
        let mb_s = if secs > 0.0 {
            r.bytes as f64 / 1e6 / secs
        } else {
            0.0
        };
        println!(
            "{:<12} {:<7} {:<7} {:>10} {:>10.2} {:>10.2} {:>10.1} {:>6.1}%",
            r.component,
            r.dir,
            r.kernel,
            r.calls,
            r.bytes as f64 / 1e6,
            r.ns as f64 / 1e6,
            mb_s,
            100.0 * r.ns as f64 / total_ns.max(1) as f64
        );
    }
    if rows.len() > top {
        println!(
            "… {} more cost center(s); raise --top to see them",
            rows.len() - top
        );
    }
    Ok(())
}

/// `lc shards DIR` — operator view of a sharded campaign: per-shard
/// progress (units done / owned), quarantines, torn-tail bytes, live
/// or stale per-shard locks, and whether the set is ready to
/// `reproduce --merge`. Deliberately tolerant of partial sets — this
/// is the command you run *while* shards are still executing — so it
/// scans journal names itself rather than using the strict
/// complete-set discovery the merge uses.
fn cmd_shards(rest: &[String]) -> Result<(), CliError> {
    let dir = rest.iter().find(|a| !a.starts_with("--")).ok_or(
        "usage: lc shards DIR  (a reproduce --out directory with journal.K-of-N.jsonl files)",
    )?;
    let dir = std::path::Path::new(dir);
    let shards_err = |msg: String| CliError {
        kind: "shards",
        exit: EXIT_GENERIC,
        msg,
    };

    // Tolerant scan: every canonically-named shard journal, sorted.
    let entries = std::fs::read_dir(dir)
        .map_err(|e| shards_err(format!("cannot read {}: {e}", dir.display())))?;
    let mut found: Vec<lc_study::ShardSpec> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let spec = name
            .strip_prefix("journal.")
            .and_then(|n| n.strip_suffix(".jsonl"))
            .and_then(|mid| mid.split_once("-of-"))
            .and_then(|(k, n)| lc_study::ShardSpec::parse(&format!("{k}/{n}")).ok());
        // Round-trip guard mirrors the merge: a zero-padded or
        // otherwise non-canonical spelling is not a shard journal.
        if let Some(spec) = spec.filter(|s| s.journal_file() == name) {
            found.push(spec);
        }
    }
    if found.is_empty() {
        return Err(shards_err(format!(
            "no shard journals (journal.K-of-N.jsonl) in {} — run reproduce --shard K/N \
             or --supervise N with --out pointing here",
            dir.display()
        )));
    }
    found.sort_by_key(|s| s.index);
    let n = found[0].count;
    let consistent = found.iter().all(|s| s.count == n);

    println!(
        "{:<8} {:>11} {:>11} {:>10} {:>6} {:<10}",
        "shard", "units", "quarantined", "torn", "prune", "lock"
    );
    let mut complete = consistent;
    for spec in &found {
        let j = lc_study::journal::load(&dir.join(spec.journal_file()))
            .map_err(|e| shards_err(format!("shard {}: {e}", spec.label())))?;
        // Owned-unit count from the journal's own meta: files × stage-1
        // components, round-robin over global unit index.
        let nc = j.meta.get("space").and_then(|v| v.as_str()).map_or(0, |s| {
            s.split('|')
                .next()
                .unwrap_or("")
                .split(',')
                .filter(|c| !c.is_empty())
                .count()
        });
        let files = j
            .meta
            .get("files")
            .and_then(|v| v.as_array())
            .map_or(0, <[lc_json::Value]>::len);
        let owned = (0..files * nc).filter(|&u| spec.owns(u)).count();
        let done = j.units.len();
        if done < owned || j.torn_bytes > 0 {
            complete = false;
        }
        let prune = j
            .meta
            .get("prune")
            .and_then(|v| v.as_str())
            .unwrap_or("off");
        let lock_path = dir.join(spec.lock_name());
        let lock = match std::fs::read_to_string(&lock_path) {
            Err(_) => "-".to_string(),
            Ok(body) => {
                let pid = body.trim().parse::<u32>().ok();
                let alive =
                    pid.is_some_and(|p| std::path::Path::new(&format!("/proc/{p}")).exists());
                match (pid, alive) {
                    (Some(p), true) => format!("pid {p}"),
                    (Some(p), false) => format!("stale ({p})"),
                    (None, _) => "unreadable".to_string(),
                }
            }
        };
        println!(
            "{:<8} {:>5}/{:<5} {:>11} {:>10} {:>6} {:<10}",
            spec.label(),
            done,
            owned,
            j.quarantined.len(),
            j.torn_bytes,
            prune,
            lock
        );
    }
    if !consistent {
        println!(
            "not mergeable: mixed shard counts in one directory (merge one campaign at a time)"
        );
    } else if found.len() < n {
        let present: std::collections::BTreeSet<usize> = found.iter().map(|s| s.index).collect();
        let missing: Vec<String> = (0..n)
            .filter(|i| !present.contains(i))
            .map(|i| format!("{}-of-{n}", i + 1))
            .collect();
        println!(
            "not mergeable yet: missing shard journal(s) {}",
            missing.join(", ")
        );
    } else if !complete {
        println!(
            "all {n} shard journals present but units are still pending (or a torn tail \
             needs a --resume pass); re-run the pending shards, then reproduce --merge"
        );
    } else {
        println!("all {n} shards complete — ready for reproduce --merge");
    }
    Ok(())
}

fn cmd_bench_components(rest: &[String]) -> Result<(), CliError> {
    let file_name = flag_value(rest, "--file").unwrap_or("obs_temp");
    let sp =
        lc_data::file_by_name(file_name).ok_or_else(|| format!("unknown file {file_name:?}"))?;
    let data = lc_data::generate(sp, lc_data::Scale::denominator(2048));
    let reps = 8;
    println!(
        "CPU component throughput on {file_name} ({} bytes, median of {reps} reps)",
        data.len()
    );
    println!(
        "{:10} {:>12} {:>12} {:>8}",
        "component", "enc MB/s", "dec MB/s", "ratio"
    );
    for c in lc_components::all() {
        // One scratch buffer reused across chunks and reps, same as the
        // archive's arena layer — the bench measures the kernel, not the
        // allocator.
        let mut scratch = Vec::with_capacity(lc_core::CHUNK_SIZE + lc_core::CHUNK_SIZE / 2);
        let mut enc_times = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            for chunk in data.chunks(lc_core::CHUNK_SIZE) {
                lc_core::encode_stage(
                    c.as_ref(),
                    chunk,
                    &mut scratch,
                    &mut lc_core::KernelStats::new(),
                );
            }
            enc_times.push(t0.elapsed().as_secs_f64());
        }
        enc_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let enc_mbs = data.len() as f64 / 1e6 / enc_times[reps / 2];

        // Decode each chunk's encoding separately.
        let mut encoded_chunks = Vec::new();
        for chunk in data.chunks(lc_core::CHUNK_SIZE) {
            lc_core::encode_stage(
                c.as_ref(),
                chunk,
                &mut scratch,
                &mut lc_core::KernelStats::new(),
            );
            encoded_chunks.push(scratch.clone());
        }
        let enc_total: usize = encoded_chunks.iter().map(Vec::len).sum();
        let mut dec_times = Vec::new();
        let mut out = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            for e in &encoded_chunks {
                lc_core::decode_stage(c.as_ref(), e, &mut out, &mut lc_core::KernelStats::new())
                    .map_err(|err| format!("{}: {err}", c.name()))?;
            }
            dec_times.push(t0.elapsed().as_secs_f64());
        }
        dec_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let dec_mbs = data.len() as f64 / 1e6 / dec_times[reps / 2];
        println!(
            "{:10} {:>12.1} {:>12.1} {:>8.3}",
            c.name(),
            enc_mbs,
            dec_mbs,
            data.len() as f64 / enc_total as f64
        );
    }
    Ok(())
}

fn cmd_simulate(rest: &[String]) -> Result<(), CliError> {
    let pipeline_text = flag_value(rest, "--pipeline").ok_or("missing --pipeline")?;
    let file_name = flag_value(rest, "--file").unwrap_or("num_brain");
    let gpu_name = flag_value(rest, "--gpu").unwrap_or(RTX_4090.name);
    let compiler = match flag_value(rest, "--compiler").unwrap_or("nvcc") {
        "nvcc" => CompilerId::Nvcc,
        "clang" => CompilerId::Clang,
        "hipcc" => CompilerId::Hipcc,
        other => return Err(format!("unknown compiler {other:?}").into()),
    };
    let opt = match flag_value(rest, "--opt").unwrap_or("3") {
        "1" => OptLevel::O1,
        "3" => OptLevel::O3,
        other => return Err(format!("--opt must be 1 or 3, got {other:?}").into()),
    };
    let gpu = ALL_GPUS
        .iter()
        .find(|g| g.name == gpu_name)
        .ok_or_else(|| format!("unknown GPU {gpu_name:?} (see Tables 4/5)"))?;
    if !compiler.supports(gpu.vendor) {
        return Err(format!("{} cannot target {}", compiler.label(), gpu.name).into());
    }
    let cfg = SimConfig::new(gpu, compiler, opt);

    let pipeline: Vec<_> = pipeline_text.split_whitespace().collect();
    let components: Vec<_> = pipeline
        .iter()
        .map(|n| lc_components::lookup(n).ok_or_else(|| format!("unknown component {n:?}")))
        .collect::<Result<_, _>>()?;

    let sp =
        lc_data::file_by_name(file_name).ok_or_else(|| format!("unknown file {file_name:?}"))?;
    let data = lc_data::generate(sp, lc_data::Scale::denominator(512));
    let mut chunked = lc_study::runner::ChunkedData::from_bytes(&data);
    let measured = chunked.total_bytes();
    let paper_bytes = sp.paper_size_tenth_mb as u64 * 100_000;
    let factor = paper_bytes as f64 / measured as f64;
    let chunks = paper_bytes.div_ceil(lc_core::CHUNK_SIZE as u64);

    let mut enc_stats = Vec::new();
    let mut dec_stats = Vec::new();
    let mut comp_bytes = 0;
    for c in &components {
        let outcome = lc_study::runner::run_stage(c.as_ref(), &chunked, true);
        enc_stats.push(outcome.enc.scaled(factor));
        dec_stats.push(outcome.dec.scaled(factor));
        comp_bytes = (outcome.output.total_bytes() as f64 * factor) as u64 + 5 * chunks;
        chunked = outcome.output;
    }
    let t_enc = gpu_sim::pipeline_time(
        &cfg,
        Direction::Encode,
        &enc_stats,
        chunks,
        paper_bytes,
        comp_bytes,
    );
    let t_dec = gpu_sim::pipeline_time(
        &cfg,
        Direction::Decode,
        &dec_stats,
        chunks,
        paper_bytes,
        comp_bytes,
    );
    println!("pipeline : {pipeline_text}");
    println!("input    : {file_name} ({paper_bytes} bytes at paper scale)");
    println!("platform : {}", cfg.label());
    println!("ratio    : {:.3}", paper_bytes as f64 / comp_bytes as f64);
    println!(
        "encode   : {:.1} GB/s ({:.3} ms)",
        gpu_sim::throughput_gbs(paper_bytes, t_enc),
        t_enc * 1e3
    );
    println!(
        "decode   : {:.1} GB/s ({:.3} ms)",
        gpu_sim::throughput_gbs(paper_bytes, t_dec),
        t_dec * 1e3
    );
    Ok(())
}
