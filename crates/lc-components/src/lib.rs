//! The LC component library: all 62 data transformations of paper Table 1.
//!
//! | Mutators | Shufflers | Predictors | Reducers |
//! |----------|-----------|------------|----------|
//! | DBEFS_j  | BIT_i     | DIFF_i     | CLOG_i   |
//! | DBESF_j  | TUPLk_i   | DIFFMS_i   | HCLOG_i  |
//! | TCMS_i   |           | DIFFNB_i   | RARE_i   |
//! | TCNB_i   |           |            | RAZE_i   |
//! |          |           |            | RLE_i    |
//! |          |           |            | RRE_i    |
//! |          |           |            | RZE_i    |
//!
//! Every component implements [`lc_core::Component`]: a real, exactly
//! invertible transform over 16 kB chunks that also reports the kernel
//! statistics (`KernelStats`) its GPU equivalent would generate, which the
//! `gpu-sim` crate turns into simulated runtimes.
//!
//! Use [`registry`] to enumerate or look up components and to parse
//! pipeline descriptions such as `"BIT_4 DIFF_4 RZE_4"`.

// `unsafe` is denied crate-wide and re-allowed in exactly one place: the
// `kernels` module, which is the audited home of all SIMD intrinsics
// (see `kernels/mod.rs` and the xtask lint that enforces this boundary).
#![deny(unsafe_code)]

pub mod kernels;
pub mod mutators;
pub mod predictors;
pub mod presets;
pub mod reducers;
pub mod registry;
pub mod shufflers;
pub mod util;

pub use registry::{
    all, families, index_of, lookup, of_kind, parse_pipeline, reducers, COMPONENT_COUNT,
    PIPELINE_COUNT, REDUCER_COUNT,
};
