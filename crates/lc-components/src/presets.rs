//! Named pipeline presets.
//!
//! LC's published compressors (SPspeed, SPratio, DPspeed, DPratio, PFPL;
//! paper §1) are concrete pipelines found by searching the component
//! space for specific input classes. Their exact published stage lists
//! belong to the upstream project; the presets here are *this
//! reproduction's* search results over the synthetic datasets (see the
//! `pipeline_search` example), named by the same speed/ratio × SP/DP
//! convention so library users get a sensible default without running a
//! search.

use lc_core::{Pipeline, PipelineError};

/// A named preset: a pipeline plus what it is tuned for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preset {
    /// Preset name (e.g. `"sp-ratio"`).
    pub name: &'static str,
    /// The pipeline description.
    pub pipeline: &'static str,
    /// What the preset optimizes and on which data type.
    pub purpose: &'static str,
}

/// All presets.
pub const PRESETS: [Preset; 5] = [
    Preset {
        name: "sp-speed",
        pipeline: "TCMS_4 DIFF_4 RZE_4",
        purpose: "throughput-first on single-precision data (cheap stages, Θ(1)-span mutator)",
    },
    Preset {
        name: "sp-ratio",
        pipeline: "DBESF_4 DIFFMS_4 RARE_4",
        purpose: "ratio-first on single-precision data (float field surgery + adaptive reducer)",
    },
    Preset {
        name: "dp-speed",
        pipeline: "TCMS_8 DIFF_8 RZE_8",
        purpose: "throughput-first on double-precision data",
    },
    Preset {
        name: "dp-ratio",
        pipeline: "DBESF_8 DIFFMS_8 RARE_8",
        purpose: "ratio-first on double-precision data",
    },
    Preset {
        name: "generic",
        pipeline: "BIT_1 DIFF_1 RZE_1",
        purpose: "byte-granular fallback for data of unknown word size",
    },
];

/// Resolve a preset by name into a ready pipeline.
///
/// ```
/// let p = lc_components::presets::preset("sp-ratio").unwrap();
/// assert_eq!(p.len(), 3);
/// ```
pub fn preset(name: &str) -> Result<Pipeline, PipelineError> {
    let entry = PRESETS
        .iter()
        .find(|p| p.name == name)
        .ok_or_else(|| PipelineError::UnknownComponent(format!("preset {name}")))?;
    crate::registry::parse_pipeline(entry.pipeline)
}

/// List preset names.
pub fn names() -> Vec<&'static str> {
    PRESETS.iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::ComponentKind;

    #[test]
    fn every_preset_parses_and_ends_in_a_reducer() {
        for p in &PRESETS {
            let pipeline = preset(p.name).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(pipeline.len(), 3, "{}", p.name);
            assert_eq!(
                pipeline.stages().last().unwrap().kind(),
                ComponentKind::Reducer,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn unknown_preset_errors() {
        assert!(preset("hyper-speed").is_err());
    }

    #[test]
    fn names_are_unique() {
        let mut n = names();
        n.sort_unstable();
        n.dedup();
        assert_eq!(n.len(), PRESETS.len());
    }

    #[test]
    fn sp_presets_use_4_byte_words_dp_presets_8() {
        assert_eq!(preset("sp-ratio").unwrap().uniform_word_size(), Some(4));
        assert_eq!(preset("dp-ratio").unwrap().uniform_word_size(), Some(8));
    }
}
