//! LEB128 variable-length integers for reducer framing.

use lc_core::DecodeError;

/// Append `v` as an unsigned LEB128 varint.
#[inline]
pub fn write(out: &mut Vec<u8>, v: u64) {
    // Single-byte fast path: RLE run/literal counts and reducer frame
    // fields are < 128 for almost every record, and keeping the common
    // case branch-free-inlinable keeps it off the encoder's hot-loop
    // flame graph.
    if v < 0x80 {
        out.push(v as u8);
        return;
    }
    write_slow(out, v);
}

fn write_slow(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint starting at `*pos`, advancing `*pos`.
#[inline]
pub fn read(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    // Mirror of the `write` fast path: a first byte without the
    // continuation bit is the whole value.
    if let Some(&byte) = buf.get(*pos) {
        if byte < 0x80 {
            *pos += 1;
            return Ok(u64::from(byte));
        }
    }
    read_slow(buf, pos)
}

fn read_slow(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or(DecodeError::Truncated { context: "varint" })?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(DecodeError::Corrupt {
                context: "varint overflow",
            });
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::Corrupt {
                context: "varint too long",
            });
        }
    }
}

/// Encoded size of `v` in bytes.
pub fn size(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write(&mut buf, v);
            assert_eq!(buf.len(), size(v), "size mismatch for {v}");
            let mut pos = 0;
            assert_eq!(read(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_fails() {
        let mut buf = Vec::new();
        write(&mut buf, 1_000_000);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(read(&buf[..cut], &mut pos).is_err());
        }
    }

    #[test]
    fn overlong_fails() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(read(&buf, &mut pos).is_err());
    }

    #[test]
    fn max_u64_roundtrip_exactly_10_bytes() {
        let mut buf = Vec::new();
        write(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn sequential_reads_advance_position() {
        let mut buf = Vec::new();
        write(&mut buf, 300);
        write(&mut buf, 5);
        let mut pos = 0;
        assert_eq!(read(&buf, &mut pos).unwrap(), 300);
        assert_eq!(read(&buf, &mut pos).unwrap(), 5);
        assert_eq!(pos, buf.len());
    }
}
