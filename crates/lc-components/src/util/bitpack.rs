//! MSB-first bit packing.
//!
//! Used by BIT (bit-plane transpose), CLOG/HCLOG (width-limited value
//! packing), and RARE/RAZE (k-bit upper-part packing). Bits are written
//! most-significant-first into consecutive bytes; a final partial byte is
//! zero-padded.

use lc_core::DecodeError;

/// Streaming MSB-first bit writer appending to a `Vec<u8>`.
pub struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    /// Bits currently buffered in `acc` (< 8 after every `put`).
    nbits: u32,
}

impl<'a> BitWriter<'a> {
    /// Start writing at the current end of `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        Self {
            out,
            acc: 0,
            nbits: 0,
        }
    }

    /// Append the low `width` bits of `v` (MSB of the field first).
    ///
    /// # Panics
    ///
    /// Panics if `width > 57` is combined with buffered bits that would
    /// overflow the accumulator; callers never exceed 64-bit fields split
    /// below that bound (enforced by an assert).
    #[inline]
    pub fn put(&mut self, v: u64, width: u32) {
        debug_assert!(width <= 64);
        if width == 0 {
            return;
        }
        let v = if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        };
        if width > 56 {
            // Split so the accumulator (max 7 buffered bits) cannot overflow.
            self.put(v >> 32, width - 32);
            self.put(v & 0xFFFF_FFFF, 32);
            return;
        }
        self.acc = (self.acc << width) | v;
        self.nbits += width;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.put(u64::from(bit), 1);
    }

    /// Flush a trailing partial byte (zero-padded).
    pub fn finish(mut self) {
        if self.nbits > 0 {
            self.out.push((self.acc << (8 - self.nbits)) as u8);
            self.nbits = 0;
        }
    }
}

/// Streaming MSB-first bit reader over a byte slice.
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Read `width` bits (MSB-first). Fails on exhausted input.
    #[inline]
    pub fn get(&mut self, width: u32) -> Result<u64, DecodeError> {
        debug_assert!(width <= 64);
        if width == 0 {
            return Ok(0);
        }
        if width > 56 {
            let hi = self.get(width - 32)?;
            let lo = self.get(32)?;
            return Ok((hi << 32) | lo);
        }
        while self.nbits < width {
            let byte = *self.buf.get(self.pos).ok_or(DecodeError::Truncated {
                context: "bit stream",
            })?;
            self.pos += 1;
            self.acc = (self.acc << 8) | u64::from(byte);
            self.nbits += 8;
        }
        self.nbits -= width;
        let v = (self.acc >> self.nbits)
            & if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
        Ok(v)
    }

    /// Read a single bit.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool, DecodeError> {
        Ok(self.get(1)? != 0)
    }

    /// Bytes consumed so far (rounding the current partial byte up).
    pub fn bytes_consumed(&self) -> usize {
        self.pos
    }
}

/// Bytes needed for `bits` packed bits.
pub const fn bytes_for_bits(bits: u64) -> u64 {
    bits.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let fields: Vec<(u64, u32)> = vec![
            (1, 1),
            (0, 1),
            (0b101, 3),
            (0xFF, 8),
            (0x1234, 16),
            (0xDEAD_BEEF, 32),
            (u64::MAX, 64),
            (0x0FFF_FFFF_FFFF_FFFF, 60),
            (0, 64),
            (1, 57),
        ];
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        for &(v, width) in &fields {
            w.put(v, width);
        }
        w.finish();
        let mut r = BitReader::new(&buf);
        for &(v, width) in &fields {
            assert_eq!(r.get(width).unwrap(), v, "width {width}");
        }
    }

    #[test]
    fn zero_width_is_noop() {
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        w.put(123, 0);
        w.finish();
        assert!(buf.is_empty());
        let mut r = BitReader::new(&buf);
        assert_eq!(r.get(0).unwrap(), 0);
    }

    #[test]
    fn exhausted_reader_errors() {
        let buf = [0xABu8];
        let mut r = BitReader::new(&buf);
        assert!(r.get(8).is_ok());
        assert!(r.get(1).is_err());
    }

    #[test]
    fn partial_final_byte_zero_padded() {
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        w.put(0b1, 1);
        w.finish();
        assert_eq!(buf, vec![0b1000_0000]);
    }

    #[test]
    fn bit_helpers() {
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        for i in 0..16 {
            w.put_bit(i % 3 == 0);
        }
        w.finish();
        let mut r = BitReader::new(&buf);
        for i in 0..16 {
            assert_eq!(r.get_bit().unwrap(), i % 3 == 0);
        }
    }

    #[test]
    fn bytes_for_bits_rounds_up() {
        assert_eq!(bytes_for_bits(0), 0);
        assert_eq!(bytes_for_bits(1), 1);
        assert_eq!(bytes_for_bits(8), 1);
        assert_eq!(bytes_for_bits(9), 2);
    }

    #[test]
    fn many_random_fields_roundtrip() {
        // Deterministic LCG so the test needs no rand dependency here.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let fields: Vec<(u64, u32)> = (0..10_000)
            .map(|_| {
                let width = (next() % 64 + 1) as u32;
                let v = next()
                    & if width == 64 {
                        u64::MAX
                    } else {
                        (1 << width) - 1
                    };
                (v, width)
            })
            .collect();
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        for &(v, width) in &fields {
            w.put(v, width);
        }
        w.finish();
        let mut r = BitReader::new(&buf);
        for &(v, width) in &fields {
            assert_eq!(r.get(width).unwrap(), v);
        }
    }
}
