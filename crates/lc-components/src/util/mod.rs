//! Shared low-level utilities for the component library.

pub mod bitpack;
pub mod codec;
pub mod varint;
pub mod words;
