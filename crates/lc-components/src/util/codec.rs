//! Value codecs shared by mutators and predictors: magnitude-sign (zigzag),
//! negabinary, and IEEE-754 field surgery.
//!
//! All functions operate on `u64` values masked to a `W`-byte word width
//! and are exact bijections on that domain (asserted by the property tests
//! below).

use super::words::{bits, mask};

/// Two's complement → magnitude-sign ("zigzag"): 0, −1, 1, −2, … map to
/// 0, 1, 2, 3, … so small-magnitude values get small codes (TCMS).
#[inline(always)]
pub fn to_magnitude_sign<const W: usize>(v: u64) -> u64 {
    let b = bits::<W>();
    // Sign-extend the W-byte value to 64 bits, zigzag, re-mask.
    let sx = ((v << (64 - b)) as i64) >> (64 - b);
    (((sx << 1) ^ (sx >> 63)) as u64) & mask::<W>()
}

/// Inverse of [`to_magnitude_sign`].
#[inline(always)]
pub fn from_magnitude_sign<const W: usize>(v: u64) -> u64 {
    ((v >> 1) ^ (v & 1).wrapping_neg()) & mask::<W>()
}

/// Alternating-bit mask 0b…1010 of the word width, used by the negabinary
/// conversion trick.
#[inline(always)]
pub const fn negabinary_mask<const W: usize>() -> u64 {
    0xAAAA_AAAA_AAAA_AAAAu64 & mask::<W>()
}

/// Two's complement → base −2 (negabinary) representation (TCNB):
/// `nb = (v + M) ^ M` with `M = 0b…1010`, arithmetic mod 2^bits.
#[inline(always)]
pub fn to_negabinary<const W: usize>(v: u64) -> u64 {
    let m = negabinary_mask::<W>();
    (v.wrapping_add(m) & mask::<W>()) ^ m
}

/// Inverse of [`to_negabinary`]: `v = (nb ^ M) − M`.
#[inline(always)]
pub fn from_negabinary<const W: usize>(v: u64) -> u64 {
    let m = negabinary_mask::<W>();
    (v ^ m).wrapping_sub(m) & mask::<W>()
}

/// IEEE-754 geometry for a `W`-byte float (W = 4 or 8).
pub struct FloatGeometry {
    /// Exponent field width in bits (8 or 11).
    pub exp_bits: u32,
    /// Fraction field width in bits (23 or 52).
    pub frac_bits: u32,
    /// Exponent bias (127 or 1023).
    pub bias: u64,
}

/// Geometry for `W ∈ {4, 8}`.
///
/// # Panics
///
/// Panics for other widths (DBEFS/DBESF only exist at 4 and 8 bytes).
pub const fn float_geometry<const W: usize>() -> FloatGeometry {
    match W {
        4 => FloatGeometry {
            exp_bits: 8,
            frac_bits: 23,
            bias: 127,
        },
        8 => FloatGeometry {
            exp_bits: 11,
            frac_bits: 52,
            bias: 1023,
        },
        _ => panic!("float components require W = 4 or 8"),
    }
}

/// DBEFS: de-bias the exponent and rearrange the fields from
/// (sign, exponent, fraction) to (de-biased exponent, fraction, sign).
#[inline(always)]
pub fn dbefs_encode<const W: usize>(v: u64) -> u64 {
    let g = float_geometry::<W>();
    let emask = (1u64 << g.exp_bits) - 1;
    let fmask = (1u64 << g.frac_bits) - 1;
    let s = v >> (g.exp_bits + g.frac_bits);
    let e = (v >> g.frac_bits) & emask;
    let f = v & fmask;
    let e_db = e.wrapping_sub(g.bias) & emask;
    (e_db << (g.frac_bits + 1)) | (f << 1) | s
}

/// Inverse of [`dbefs_encode`].
#[inline(always)]
pub fn dbefs_decode<const W: usize>(v: u64) -> u64 {
    let g = float_geometry::<W>();
    let emask = (1u64 << g.exp_bits) - 1;
    let fmask = (1u64 << g.frac_bits) - 1;
    let s = v & 1;
    let f = (v >> 1) & fmask;
    let e_db = (v >> (g.frac_bits + 1)) & emask;
    let e = e_db.wrapping_add(g.bias) & emask;
    (s << (g.exp_bits + g.frac_bits)) | (e << g.frac_bits) | f
}

/// DBESF: like DBEFS but rearranges to (de-biased exponent, sign, fraction).
#[inline(always)]
pub fn dbesf_encode<const W: usize>(v: u64) -> u64 {
    let g = float_geometry::<W>();
    let emask = (1u64 << g.exp_bits) - 1;
    let fmask = (1u64 << g.frac_bits) - 1;
    let s = v >> (g.exp_bits + g.frac_bits);
    let e = (v >> g.frac_bits) & emask;
    let f = v & fmask;
    let e_db = e.wrapping_sub(g.bias) & emask;
    (e_db << (g.frac_bits + 1)) | (s << g.frac_bits) | f
}

/// Inverse of [`dbesf_encode`].
#[inline(always)]
pub fn dbesf_decode<const W: usize>(v: u64) -> u64 {
    let g = float_geometry::<W>();
    let emask = (1u64 << g.exp_bits) - 1;
    let fmask = (1u64 << g.frac_bits) - 1;
    let f = v & fmask;
    let s = (v >> g.frac_bits) & 1;
    let e_db = (v >> (g.frac_bits + 1)) & emask;
    let e = e_db.wrapping_add(g.bias) & emask;
    (s << (g.exp_bits + g.frac_bits)) | (e << g.frac_bits) | f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_u8<F: Fn(u64) -> u64, G: Fn(u64) -> u64>(enc: F, dec: G) {
        for v in 0..=255u64 {
            assert_eq!(dec(enc(v)), v, "value {v}");
        }
        // Bijectivity: all encodings distinct.
        let mut seen = [false; 256];
        for v in 0..=255u64 {
            let e = enc(v) as usize;
            assert!(e < 256, "encoding escaped the width");
            assert!(!seen[e], "collision at {v}");
            seen[e] = true;
        }
    }

    #[test]
    fn magnitude_sign_exhaustive_u8() {
        exhaustive_u8(to_magnitude_sign::<1>, from_magnitude_sign::<1>);
    }

    #[test]
    fn negabinary_exhaustive_u8() {
        exhaustive_u8(to_negabinary::<1>, from_negabinary::<1>);
    }

    #[test]
    fn magnitude_sign_small_values_get_small_codes() {
        // 0 → 0, −1 → 1, 1 → 2, −2 → 3, 2 → 4 at W = 4.
        assert_eq!(to_magnitude_sign::<4>(0), 0);
        assert_eq!(to_magnitude_sign::<4>((-1i32) as u32 as u64), 1);
        assert_eq!(to_magnitude_sign::<4>(1), 2);
        assert_eq!(to_magnitude_sign::<4>((-2i32) as u32 as u64), 3);
        assert_eq!(to_magnitude_sign::<4>(2), 4);
    }

    #[test]
    fn negabinary_known_values() {
        // In base −2: 1 = 1, −1 = 11 (3), 2 = 110 (6), −2 = 10 (2).
        assert_eq!(to_negabinary::<4>(0), 0);
        assert_eq!(to_negabinary::<4>(1), 1);
        assert_eq!(to_negabinary::<4>((-1i32) as u32 as u64), 3);
        assert_eq!(to_negabinary::<4>(2), 6);
        assert_eq!(to_negabinary::<4>((-2i32) as u32 as u64), 2);
    }

    #[test]
    fn roundtrips_at_word_boundaries() {
        for v in [0u64, 1, 0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF] {
            assert_eq!(from_magnitude_sign::<4>(to_magnitude_sign::<4>(v)), v);
            assert_eq!(from_negabinary::<4>(to_negabinary::<4>(v)), v);
        }
        for v in [0u64, 1, i64::MAX as u64, 1u64 << 63, u64::MAX] {
            assert_eq!(from_magnitude_sign::<8>(to_magnitude_sign::<8>(v)), v);
            assert_eq!(from_negabinary::<8>(to_negabinary::<8>(v)), v);
        }
    }

    #[test]
    fn dbefs_roundtrip_special_floats() {
        for f in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            1e-42, // subnormal
        ] {
            let v = f.to_bits() as u64;
            assert_eq!(dbefs_decode::<4>(dbefs_encode::<4>(v)), v, "f = {f}");
            assert_eq!(dbesf_decode::<4>(dbesf_encode::<4>(v)), v, "f = {f}");
        }
        for f in [0.0f64, -1.5, f64::MAX, f64::INFINITY, f64::NAN, 5e-324] {
            let v = f.to_bits();
            assert_eq!(dbefs_decode::<8>(dbefs_encode::<8>(v)), v, "f = {f}");
            assert_eq!(dbesf_decode::<8>(dbesf_encode::<8>(v)), v, "f = {f}");
        }
    }

    #[test]
    fn dbefs_field_order() {
        // 1.0f32 = s=0, e=127, f=0. De-biased exponent = 0, so the DBEFS
        // encoding must be all-zero.
        assert_eq!(dbefs_encode::<4>(1.0f32.to_bits() as u64), 0);
        // -1.0f32: only the sign bit (now the LSB) differs.
        assert_eq!(dbefs_encode::<4>((-1.0f32).to_bits() as u64), 1);
        // DBESF puts the sign between exponent and fraction.
        assert_eq!(dbesf_encode::<4>((-1.0f32).to_bits() as u64), 1u64 << 23);
    }

    #[test]
    fn dbefs_encoding_stays_in_width() {
        for v in [0u64, u32::MAX as u64, 0x7F80_0000, 0x0080_0000] {
            assert!(dbefs_encode::<4>(v) <= u32::MAX as u64);
            assert!(dbesf_encode::<4>(v) <= u32::MAX as u64);
        }
    }
}
