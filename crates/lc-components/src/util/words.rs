//! Little-endian word views over byte buffers.
//!
//! Components operate at a word granularity `W ∈ {1,2,4,8}` bytes. All word
//! arithmetic is done in the `u64` domain masked to the word width, which
//! keeps every component a single generic implementation monomorphized per
//! `W` (one `match` per chunk, zero per word).

/// Bit width of a `W`-byte word.
pub const fn bits<const W: usize>() -> u32 {
    8 * W as u32
}

/// All-ones mask of a `W`-byte word, as `u64`.
pub const fn mask<const W: usize>() -> u64 {
    if W == 8 {
        u64::MAX
    } else {
        (1u64 << (8 * W)) - 1
    }
}

/// Read word `i` (little-endian) from `buf`.
#[inline(always)]
pub fn get<const W: usize>(buf: &[u8], i: usize) -> u64 {
    let mut b = [0u8; 8];
    b[..W].copy_from_slice(&buf[i * W..i * W + W]);
    u64::from_le_bytes(b)
}

/// Append word `v` (little-endian, `W` bytes) to `out`.
#[inline(always)]
pub fn put<const W: usize>(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes()[..W]);
}

/// Number of complete `W`-byte words in `len` bytes.
#[inline(always)]
pub fn count<const W: usize>(len: usize) -> usize {
    len / W
}

/// Number of trailing bytes of `len` that do not form a complete word.
#[inline(always)]
pub fn tail_len<const W: usize>(len: usize) -> usize {
    len % W
}

/// Decode the complete-word region of `buf` into a `u64` vector.
pub fn to_vec<const W: usize>(buf: &[u8]) -> Vec<u64> {
    let n = count::<W>(buf.len());
    let mut v = Vec::with_capacity(n);
    for i in 0..n {
        v.push(get::<W>(buf, i));
    }
    v
}

/// Append all of `words` to `out`, `W` bytes each.
pub fn extend_from_words<const W: usize>(out: &mut Vec<u8>, words: &[u64]) {
    out.reserve(words.len() * W);
    for &w in words {
        put::<W>(out, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_and_bits() {
        assert_eq!(mask::<1>(), 0xFF);
        assert_eq!(mask::<2>(), 0xFFFF);
        assert_eq!(mask::<4>(), 0xFFFF_FFFF);
        assert_eq!(mask::<8>(), u64::MAX);
        assert_eq!(bits::<1>(), 8);
        assert_eq!(bits::<8>(), 64);
    }

    #[test]
    fn get_put_roundtrip_all_widths() {
        fn check<const W: usize>() {
            let values = [0u64, 1, mask::<W>(), 0x1234_5678_9ABC_DEF0 & mask::<W>()];
            let mut buf = Vec::new();
            for &v in &values {
                put::<W>(&mut buf, v);
            }
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(get::<W>(&buf, i), v, "W={W} i={i}");
            }
        }
        check::<1>();
        check::<2>();
        check::<4>();
        check::<8>();
    }

    #[test]
    fn counts_and_tails() {
        assert_eq!(count::<4>(10), 2);
        assert_eq!(tail_len::<4>(10), 2);
        assert_eq!(count::<8>(7), 0);
        assert_eq!(tail_len::<8>(7), 7);
        assert_eq!(tail_len::<1>(7), 0);
    }

    #[test]
    fn vec_roundtrip() {
        let buf: Vec<u8> = (0..20).collect();
        let words = to_vec::<4>(&buf);
        assert_eq!(words.len(), 5);
        let mut out = Vec::new();
        extend_from_words::<4>(&mut out, &words);
        assert_eq!(out, buf);
    }

    #[test]
    fn little_endian_layout() {
        let mut out = Vec::new();
        put::<4>(&mut out, 0x0403_0201);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
