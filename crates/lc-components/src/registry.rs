//! The component registry: all 62 components of paper Table 1.
//!
//! Word sizes are 1/2/4/8 bytes except: DBEFS/DBESF exist only at 4 and 8
//! (IEEE-754 widths), and the six TUPL variants are TUPL2_1, TUPL2_2,
//! TUPL4_1, TUPL4_2, TUPL8_1, TUPL8_4 — the paper states six TUPL
//! components over tuple sizes {2,4,8} without listing their word sizes;
//! this assignment is forced up to permutation by the per-word-size
//! single-word-size pipeline counts of §6.2 (16/15/16/15 components at
//! word size 1/2/4/8) and is documented as a deviation in DESIGN.md.
//!
//! Counts: 12 mutators + 10 shufflers + 12 predictors + 28 reducers = 62,
//! and 62 × 62 × 28 = 107,632 three-stage pipelines (§5).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use lc_core::{Component, ComponentKind, Pipeline, PipelineError};

use crate::mutators::{Dbefs, Dbesf, Tcms, Tcnb};
use crate::predictors::{Diff, DiffMs, DiffNb};
use crate::reducers::{Clog, Hclog, Rare, Raze, Rle, Rre, Rze};
use crate::shufflers::{Bit, Tupl};

/// Total number of components (paper §1).
pub const COMPONENT_COUNT: usize = 62;
/// Number of reducers (valid final stages; paper §5).
pub const REDUCER_COUNT: usize = 28;
/// Number of generated three-stage pipelines: 62 × 62 × 28 (paper §5).
pub const PIPELINE_COUNT: usize = COMPONENT_COUNT * COMPONENT_COUNT * REDUCER_COUNT;

fn build_all() -> Vec<Arc<dyn Component>> {
    macro_rules! four {
        ($t:ident) => {
            vec![
                Arc::new($t::<1>) as Arc<dyn Component>,
                Arc::new($t::<2>),
                Arc::new($t::<4>),
                Arc::new($t::<8>),
            ]
        };
    }
    let mut v: Vec<Arc<dyn Component>> = Vec::with_capacity(COMPONENT_COUNT);
    // Mutators (12), in Table 1 order.
    v.push(Arc::new(Dbefs::<4>));
    v.push(Arc::new(Dbefs::<8>));
    v.push(Arc::new(Dbesf::<4>));
    v.push(Arc::new(Dbesf::<8>));
    v.extend(four!(Tcms));
    v.extend(four!(Tcnb));
    // Shufflers (10).
    v.extend(four!(Bit));
    v.push(Arc::new(Tupl::<2, 1>));
    v.push(Arc::new(Tupl::<2, 2>));
    v.push(Arc::new(Tupl::<4, 1>));
    v.push(Arc::new(Tupl::<4, 2>));
    v.push(Arc::new(Tupl::<8, 1>));
    v.push(Arc::new(Tupl::<8, 4>));
    // Predictors (12).
    v.extend(four!(Diff));
    v.extend(four!(DiffMs));
    v.extend(four!(DiffNb));
    // Reducers (28).
    v.extend(four!(Clog));
    v.extend(four!(Hclog));
    v.extend(four!(Rare));
    v.extend(four!(Raze));
    v.extend(four!(Rle));
    v.extend(four!(Rre));
    v.extend(four!(Rze));
    v
}

type Registry = (Vec<Arc<dyn Component>>, HashMap<&'static str, usize>);

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| {
        let all = build_all();
        let index = all.iter().enumerate().map(|(i, c)| (c.name(), i)).collect();
        (all, index)
    })
}

/// All 62 components, in stable Table 1 order.
pub fn all() -> &'static [Arc<dyn Component>] {
    &registry().0
}

/// The 28 reducers, in stable order.
pub fn reducers() -> Vec<Arc<dyn Component>> {
    all()
        .iter()
        .filter(|c| c.kind() == ComponentKind::Reducer)
        .cloned()
        .collect()
}

/// Components of a given kind, in stable order.
pub fn of_kind(kind: ComponentKind) -> Vec<Arc<dyn Component>> {
    all().iter().filter(|c| c.kind() == kind).cloned().collect()
}

/// Look a component up by canonical name (e.g. `"RLE_4"`).
///
/// ```
/// let c = lc_components::lookup("RLE_4").unwrap();
/// assert_eq!(c.kind(), lc_core::ComponentKind::Reducer);
/// assert_eq!(c.word_size(), 4);
/// assert!(lc_components::lookup("LZ77_4").is_none());
/// ```
pub fn lookup(name: &str) -> Option<Arc<dyn Component>> {
    let (all, index) = registry();
    index.get(name).map(|&i| all[i].clone())
}

/// Dense registry index of a component name (stable across a process).
pub fn index_of(name: &str) -> Option<usize> {
    registry().1.get(name).copied()
}

/// Parse a pipeline description against this registry.
///
/// ```
/// let p = lc_components::parse_pipeline("BIT_4 DIFF_4 RZE_4").unwrap();
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.uniform_word_size(), Some(4));
/// ```
pub fn parse_pipeline(text: &str) -> Result<Pipeline, PipelineError> {
    Pipeline::parse(text, lookup)
}

/// Distinct family names (word-size-collapsed), in first-appearance order.
pub fn families() -> Vec<&'static str> {
    let mut seen = Vec::new();
    for c in all() {
        let fam = lc_core::component::family_of(c.name());
        if !seen.contains(&fam) {
            seen.push(fam);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_62_components() {
        assert_eq!(all().len(), COMPONENT_COUNT);
    }

    #[test]
    fn kind_counts_match_table1() {
        assert_eq!(of_kind(ComponentKind::Mutator).len(), 12);
        assert_eq!(of_kind(ComponentKind::Shuffler).len(), 10);
        assert_eq!(of_kind(ComponentKind::Predictor).len(), 12);
        assert_eq!(of_kind(ComponentKind::Reducer).len(), REDUCER_COUNT);
    }

    #[test]
    fn pipeline_count_is_107632() {
        assert_eq!(PIPELINE_COUNT, 107_632);
    }

    #[test]
    fn word_size_counts_match_section_6_2() {
        // §6.2: 1792/1575/1792/1575 single-word-size pipelines at word
        // sizes 1/2/4/8 = s²·7 with s components of that size.
        let count_ws = |w: usize| all().iter().filter(|c| c.word_size() == w).count();
        assert_eq!(count_ws(1), 16);
        assert_eq!(count_ws(2), 15);
        assert_eq!(count_ws(4), 16);
        assert_eq!(count_ws(8), 15);
        let reducers_ws = |w: usize| reducers().iter().filter(|c| c.word_size() == w).count();
        for w in [1, 2, 4, 8] {
            assert_eq!(reducers_ws(w), 7);
        }
        assert_eq!(16 * 16 * 7, 1792);
        assert_eq!(15 * 15 * 7, 1575);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for c in all() {
            assert!(seen.insert(c.name()), "duplicate {}", c.name());
            let found = lookup(c.name()).expect("lookup");
            assert_eq!(found.name(), c.name());
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(lookup("NOPE_4").is_none());
        assert!(index_of("NOPE_4").is_none());
    }

    #[test]
    fn families_match_table1() {
        let fams = families();
        assert_eq!(
            fams,
            vec![
                "DBEFS", "DBESF", "TCMS", "TCNB", "BIT", "TUPL", "DIFF", "DIFFMS", "DIFFNB",
                "CLOG", "HCLOG", "RARE", "RAZE", "RLE", "RRE", "RZE",
            ]
        );
        assert_eq!(fams.len(), 16);
    }

    #[test]
    fn parse_pipeline_against_registry() {
        let p = parse_pipeline("BIT_4 DIFF_4 RZE_4").unwrap();
        assert_eq!(p.describe(), "BIT_4 DIFF_4 RZE_4");
        assert!(parse_pipeline("BIT_4 NOPE RZE_4").is_err());
    }

    #[test]
    fn stage1_pin_counts_match_section_6_4() {
        // §6.4: pinning a family to stage 1 yields (variants × 62 × 28)
        // pipelines: 6944 for 4-variant families, 3472 for DBEFS/DBESF,
        // 10416 for TUPL.
        let variants = |fam: &str| {
            all()
                .iter()
                .filter(|c| lc_core::component::family_of(c.name()) == fam)
                .count()
        };
        assert_eq!(variants("RLE") * 62 * 28, 6944);
        assert_eq!(variants("DBEFS") * 62 * 28, 3472);
        assert_eq!(variants("TUPL") * 62 * 28, 10416);
    }

    #[test]
    fn stage3_pin_counts_match_section_6_4() {
        // §6.4: each reducer family pinned to stage 3 → 62 × 62 × 4 = 15376.
        assert_eq!(62 * 62 * 4, 15_376);
    }

    #[test]
    fn component_type_pair_counts_match_section_6_3() {
        // §6.3: stages 1–2 of the same kind.
        let m = of_kind(ComponentKind::Mutator).len();
        let s = of_kind(ComponentKind::Shuffler).len();
        let p = of_kind(ComponentKind::Predictor).len();
        let r = of_kind(ComponentKind::Reducer).len();
        assert_eq!(m * m * 28, 4032);
        assert_eq!(s * s * 28, 2800);
        assert_eq!(p * p * 28, 4032);
        assert_eq!(r * r * 28, 21_952);
    }
}
