//! Mutators: value-wise computational transforms (paper §3.2.1).
//!
//! Mutators transform each value in place without compressing; decoding
//! applies the inverse transformation. All four families are embarrassingly
//! parallel with regular memory accesses — Θ(n) work, Θ(1) span in both
//! directions (paper Table 2) — which is why pipelines led by mutators
//! decode at the highest throughputs (paper Fig. 7).
//!
//! Bytes that do not form a complete word (possible when a reducer earlier
//! in the pipeline produced an odd-sized chunk) pass through unchanged at
//! the end of the chunk.

use lc_core::{
    CommuteClass, Complexity, Component, ComponentKind, Contract, DecodeError, KernelStats,
    KernelVariant, SpanClass, WorkClass,
};

use crate::kernels::pointwise::{self, Op};
use crate::util::words;

const MUTATOR_COMPLEXITY: Complexity = Complexity::new(
    WorkClass::N,
    SpanClass::Const,
    WorkClass::N,
    SpanClass::Const,
);

/// Apply a pointwise codec kernel to every complete word (tail passes
/// through inside [`pointwise::apply`]) and account a mutator kernel:
/// one coalesced read + write per word, `ops_per_word` ALU operations,
/// no synchronization. The accounting models the GPU kernel and is
/// independent of which CPU tier (scalar/SSE2/AVX2) actually ran.
fn mutate<const W: usize>(
    input: &[u8],
    out: &mut Vec<u8>,
    stats: &mut KernelStats,
    ops_per_word: u64,
    op: Op,
) {
    let n = words::count::<W>(input.len());
    pointwise::apply::<W>(op, input, out);
    stats.words += n as u64;
    stats.thread_ops += n as u64 * ops_per_word;
    stats.global_reads += input.len() as u64;
    stats.global_writes += input.len() as u64;
}

macro_rules! mutator {
    (
        $(#[$doc:meta])*
        $name:ident, $prefix:literal, enc = $enc:ident, dec = $dec:ident,
        ops = $ops:literal, fixes_zero = $fz:literal, widths = [$($w:literal),+]
    ) => {
        // `$enc`/`$dec` are `pointwise::Op` arms; the scalar reference
        // codecs they resolve to live in `util::codec`.
        $(#[$doc])*
        pub struct $name<const W: usize>;

        impl<const W: usize> $name<W> {
            /// ALU operations the GPU kernel performs per word.
            pub const OPS_PER_WORD: u64 = $ops;
        }

        impl<const W: usize> Component for $name<W> {
            fn name(&self) -> &'static str {
                match W {
                    $( $w => concat!($prefix, "_", stringify!($w)), )+
                    _ => unreachable!("unsupported word size"),
                }
            }
            fn kind(&self) -> ComponentKind {
                ComponentKind::Mutator
            }
            fn word_size(&self) -> usize {
                W
            }
            fn complexity(&self) -> Complexity {
                MUTATOR_COMPLEXITY
            }
            fn contract(&self) -> Contract {
                // Every mutator maps complete W-byte words independently
                // and passes the tail through: a pointwise word map that
                // is the identity on inputs shorter than one word. TCMS
                // and TCNB additionally map the zero word to itself
                // (zig-zag and negabinary both send 0 to 0); the DBE
                // families do not (de-biasing the exponent of 0.0 yields
                // a nonzero code).
                let c = Contract::preserving(
                    ComponentKind::Mutator,
                    W,
                    CommuteClass::PointwiseWordMap,
                )
                .with_noop_below(W);
                if $fz {
                    c.with_fixes_zero()
                } else {
                    c
                }
            }
            fn kernel_variant(&self) -> KernelVariant {
                pointwise::variant::<W>(Op::$enc)
            }
            fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
                mutate::<W>(input, out, stats, Self::OPS_PER_WORD, Op::$enc);
            }
            fn decode_chunk(
                &self,
                input: &[u8],
                out: &mut Vec<u8>,
                stats: &mut KernelStats,
            ) -> Result<(), DecodeError> {
                mutate::<W>(input, out, stats, Self::OPS_PER_WORD, Op::$dec);
                Ok(())
            }
        }
    };
}

mutator!(
    /// TCMS: two's complement → magnitude-sign representation, so values of
    /// small magnitude (positive or negative) get numerically small codes.
    Tcms, "TCMS", enc = TcmsEnc, dec = TcmsDec,
    ops = 4, fixes_zero = true, widths = [1, 2, 4, 8]
);

mutator!(
    /// TCNB: two's complement → base −2 (negabinary) representation via the
    /// `(v + M) ^ M` bit trick.
    Tcnb, "TCNB", enc = TcnbEnc, dec = TcnbDec,
    ops = 3, fixes_zero = true, widths = [1, 2, 4, 8]
);

mutator!(
    /// DBEFS: de-bias the IEEE-754 exponent and rearrange fields from
    /// (sign, exponent, fraction) to (de-biased exponent, fraction, sign).
    /// Only defined at 4- and 8-byte widths.
    Dbefs, "DBEFS", enc = DbefsEnc, dec = DbefsDec,
    ops = 9, fixes_zero = false, widths = [4, 8]
);

mutator!(
    /// DBESF: like DBEFS but rearranges to (de-biased exponent, sign,
    /// fraction) order.
    Dbesf, "DBESF", enc = DbesfEnc, dec = DbesfDec,
    ops = 9, fixes_zero = false, widths = [4, 8]
);

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::verify::roundtrip_component;

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 131 + 17) % 256) as u8).collect()
    }

    #[test]
    fn names_and_metadata() {
        assert_eq!(Tcms::<4>.name(), "TCMS_4");
        assert_eq!(Tcnb::<8>.name(), "TCNB_8");
        assert_eq!(Dbefs::<4>.name(), "DBEFS_4");
        assert_eq!(Dbesf::<8>.name(), "DBESF_8");
        assert_eq!(Tcms::<1>.kind(), ComponentKind::Mutator);
        assert_eq!(Tcms::<2>.word_size(), 2);
        assert_eq!(Tcms::<1>.tuple_size(), None);
    }

    #[test]
    fn all_mutators_roundtrip_all_lengths() {
        // Lengths hit empty, sub-word, unaligned, and full-chunk cases.
        for len in [0usize, 1, 3, 7, 8, 9, 63, 64, 1000, 16384] {
            let data = sample(len);
            roundtrip_component(&Tcms::<1>, &data);
            roundtrip_component(&Tcms::<2>, &data);
            roundtrip_component(&Tcms::<4>, &data);
            roundtrip_component(&Tcms::<8>, &data);
            roundtrip_component(&Tcnb::<1>, &data);
            roundtrip_component(&Tcnb::<2>, &data);
            roundtrip_component(&Tcnb::<4>, &data);
            roundtrip_component(&Tcnb::<8>, &data);
            roundtrip_component(&Dbefs::<4>, &data);
            roundtrip_component(&Dbefs::<8>, &data);
            roundtrip_component(&Dbesf::<4>, &data);
            roundtrip_component(&Dbesf::<8>, &data);
        }
    }

    #[test]
    fn size_preserving() {
        let data = sample(1000);
        let mut out = Vec::new();
        let mut stats = KernelStats::new();
        Tcms::<4>.encode_chunk(&data, &mut out, &mut stats);
        assert_eq!(out.len(), data.len());
        assert_eq!(stats.words, 250);
        assert_eq!(stats.thread_ops, 250 * Tcms::<4>::OPS_PER_WORD);
        assert_eq!(stats.block_syncs, 0);
        assert_eq!(stats.warp_shuffles, 0);
    }

    #[test]
    fn tail_bytes_pass_through() {
        let data = sample(10); // 2 complete u32 words + 2 tail bytes
        let mut out = Vec::new();
        let mut stats = KernelStats::new();
        Tcms::<4>.encode_chunk(&data, &mut out, &mut stats);
        assert_eq!(&out[8..], &data[8..]);
    }

    #[test]
    fn dbefs_on_real_floats_clusters_exponents() {
        // Smooth float data: after DBEFS the de-biased exponent occupies the
        // top bits and is near zero for values near 1.0.
        let vals: Vec<f32> = (0..256).map(|i| 1.0 + i as f32 * 1e-3).collect();
        let bytes: Vec<u8> = vals
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        let mut out = Vec::new();
        let mut stats = KernelStats::new();
        Dbefs::<4>.encode_chunk(&bytes, &mut out, &mut stats);
        for i in 0..vals.len() {
            let enc = u32::from_le_bytes(out[i * 4..i * 4 + 4].try_into().unwrap());
            // De-biased exponent field (top 8 bits) must be 0 for all these.
            assert_eq!(enc >> 24, 0, "value {}", vals[i]);
        }
    }
}
