//! Predictors: residual transforms (paper §3.2.3).
//!
//! Predictors guess each value from its predecessor and output the
//! residual. Accurate predictions cluster residuals around zero, which the
//! downstream reducers exploit. Encoding is embarrassingly parallel
//! (Θ(1) span: every residual only needs its left neighbor), but decoding
//! must rebuild the running values with a prefix sum — Θ(log n) span
//! (paper Table 2) — which is why predictor-led pipelines have the lowest
//! decode throughputs (paper Fig. 7).

use lc_core::{
    CommuteClass, Complexity, Component, ComponentKind, Contract, DecodeError, KernelStats,
    KernelVariant, SpanClass, WorkClass,
};

use crate::kernels::diff::{self, Residual};
use crate::util::words;

/// ALU operations per word the GPU kernel spends on each residual
/// post-transform (the transform itself lives in [`diff::Residual`]).
const fn residual_ops(r: Residual) -> u64 {
    match r {
        Residual::Plain => 1,
        Residual::MagnitudeSign => 5,
        Residual::Negabinary => 4,
    }
}

fn diff_encode<const W: usize>(
    input: &[u8],
    out: &mut Vec<u8>,
    stats: &mut KernelStats,
    residual: Residual,
) {
    let n = words::count::<W>(input.len());
    diff::encode::<W>(residual, input, out);
    stats.words += n as u64;
    stats.thread_ops += n as u64 * (1 + residual_ops(residual));
    stats.global_reads += input.len() as u64;
    stats.global_writes += input.len() as u64;
    // Each thread also reads its left neighbor through shared memory.
    stats.shared_traffic += (n * W) as u64;
}

fn diff_decode<const W: usize>(
    input: &[u8],
    out: &mut Vec<u8>,
    stats: &mut KernelStats,
    residual: Residual,
) {
    let n = words::count::<W>(input.len());
    diff::decode::<W>(residual, input, out);
    stats.words += n as u64;
    stats.thread_ops += n as u64 * (1 + residual_ops(residual));
    stats.global_reads += input.len() as u64;
    stats.global_writes += input.len() as u64;
    if n > 1 {
        // Decoding is a prefix sum: log2(n) scan steps with a block sync
        // each, plus warp-level shuffle scans (paper Table 2, dec span
        // log n; Listing 1 shows the warp-scan kernel).
        let steps = (n as u64).ilog2() as u64 + 1;
        stats.scan_steps += steps;
        stats.block_syncs += steps;
        stats.warp_shuffles += n as u64 * 32u64.ilog2() as u64;
        stats.shared_traffic += (n * W) as u64 * 2;
    }
}

macro_rules! predictor {
    (
        $(#[$doc:meta])*
        $name:ident, $prefix:literal, $residual:expr,
        noop_words = $noopw:literal $(, fused = ($base:literal, $post:literal))?
    ) => {
        $(#[$doc])*
        pub struct $name<const W: usize>;

        impl<const W: usize> Component for $name<W> {
            fn name(&self) -> &'static str {
                match W {
                    1 => concat!($prefix, "_1"),
                    2 => concat!($prefix, "_2"),
                    4 => concat!($prefix, "_4"),
                    8 => concat!($prefix, "_8"),
                    _ => unreachable!("unsupported word size"),
                }
            }
            fn kind(&self) -> ComponentKind {
                ComponentKind::Predictor
            }
            fn word_size(&self) -> usize {
                W
            }
            fn complexity(&self) -> Complexity {
                Complexity::new(WorkClass::N, SpanClass::Const, WorkClass::N, SpanClass::LogN)
            }
            fn contract(&self) -> Contract {
                // Each residual depends on its *left neighbor*, not just
                // its own word — reordering words changes the residuals,
                // so predictors claim no commuting structure. DIFF is
                // the identity below two complete words (the first
                // residual is `word − 0`); DIFFMS/DIFFNB still transform
                // a lone word, so their no-op bound is one word. The
                // latter two are *fused* components: their encoder is
                // exactly TCMS/TCNB applied to DIFF's output (the kernel
                // calls the same scalar codec on every residual,
                // including the first), which the rewriter exploits.
                let c = Contract::preserving(ComponentKind::Predictor, W, CommuteClass::Opaque)
                    .with_noop_below($noopw * W);
                $(
                    let c = c.with_fused_of(
                        match W {
                            1 => concat!($base, "_1"),
                            2 => concat!($base, "_2"),
                            4 => concat!($base, "_4"),
                            8 => concat!($base, "_8"),
                            _ => unreachable!("unsupported word size"),
                        },
                        match W {
                            1 => concat!($post, "_1"),
                            2 => concat!($post, "_2"),
                            4 => concat!($post, "_4"),
                            8 => concat!($post, "_8"),
                            _ => unreachable!("unsupported word size"),
                        },
                    );
                )?
                c
            }
            fn kernel_variant(&self) -> KernelVariant {
                diff::variant::<W>()
            }
            fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
                diff_encode::<W>(input, out, stats, $residual);
            }
            fn decode_chunk(
                &self,
                input: &[u8],
                out: &mut Vec<u8>,
                stats: &mut KernelStats,
            ) -> Result<(), DecodeError> {
                diff_decode::<W>(input, out, stats, $residual);
                Ok(())
            }
        }
    };
}

predictor!(
    /// DIFF: delta modulation — each word is replaced by its difference
    /// from the previous word; decoding is the prefix sum of the
    /// differences.
    Diff, "DIFF", Residual::Plain, noop_words = 2
);

predictor!(
    /// DIFFMS: DIFF with residuals stored in magnitude-sign format.
    DiffMs, "DIFFMS", Residual::MagnitudeSign, noop_words = 1, fused = ("DIFF", "TCMS")
);

predictor!(
    /// DIFFNB: DIFF with residuals stored in negabinary format.
    DiffNb, "DIFFNB", Residual::Negabinary, noop_words = 1, fused = ("DIFF", "TCNB")
);

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::verify::roundtrip_component;

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 89 + 7) % 256) as u8).collect()
    }

    #[test]
    fn names_and_metadata() {
        assert_eq!(Diff::<1>.name(), "DIFF_1");
        assert_eq!(DiffMs::<4>.name(), "DIFFMS_4");
        assert_eq!(DiffNb::<8>.name(), "DIFFNB_8");
        assert_eq!(Diff::<2>.kind(), ComponentKind::Predictor);
        assert_eq!(Diff::<2>.complexity().dec_span, SpanClass::LogN);
        assert_eq!(Diff::<2>.complexity().enc_span, SpanClass::Const);
    }

    #[test]
    fn all_predictors_roundtrip_all_lengths() {
        for len in [0usize, 1, 3, 4, 8, 9, 100, 1000, 16384] {
            let data = sample(len);
            roundtrip_component(&Diff::<1>, &data);
            roundtrip_component(&Diff::<2>, &data);
            roundtrip_component(&Diff::<4>, &data);
            roundtrip_component(&Diff::<8>, &data);
            roundtrip_component(&DiffMs::<1>, &data);
            roundtrip_component(&DiffMs::<2>, &data);
            roundtrip_component(&DiffMs::<4>, &data);
            roundtrip_component(&DiffMs::<8>, &data);
            roundtrip_component(&DiffNb::<1>, &data);
            roundtrip_component(&DiffNb::<2>, &data);
            roundtrip_component(&DiffNb::<4>, &data);
            roundtrip_component(&DiffNb::<8>, &data);
        }
    }

    #[test]
    fn diff_produces_small_residuals_on_smooth_data() {
        // A ramp: every difference is exactly 3.
        let vals: Vec<u32> = (0..100).map(|i| 1000 + 3 * i).collect();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut out = Vec::new();
        Diff::<4>.encode_chunk(&bytes, &mut out, &mut KernelStats::new());
        let first = u32::from_le_bytes(out[0..4].try_into().unwrap());
        assert_eq!(first, 1000); // first word keeps its value (prev = 0)
        for i in 1..100 {
            let d = u32::from_le_bytes(out[i * 4..i * 4 + 4].try_into().unwrap());
            assert_eq!(d, 3, "word {i}");
        }
    }

    #[test]
    fn diffms_maps_negative_deltas_to_small_codes() {
        // A descending ramp: deltas are −1 → magnitude-sign code 1.
        let vals: Vec<u32> = (0..50).map(|i| 1_000_000 - i).collect();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut out = Vec::new();
        DiffMs::<4>.encode_chunk(&bytes, &mut out, &mut KernelStats::new());
        for i in 1..50 {
            let d = u32::from_le_bytes(out[i * 4..i * 4 + 4].try_into().unwrap());
            assert_eq!(d, 1, "word {i}");
        }
    }

    #[test]
    fn decode_records_scan_cost_encode_does_not() {
        let data = sample(8192);
        let mut enc_stats = KernelStats::new();
        let mut enc = Vec::new();
        Diff::<4>.encode_chunk(&data, &mut enc, &mut enc_stats);
        assert_eq!(enc_stats.scan_steps, 0);
        assert_eq!(enc_stats.block_syncs, 0);
        let mut dec_stats = KernelStats::new();
        let mut dec = Vec::new();
        Diff::<4>
            .decode_chunk(&enc, &mut dec, &mut dec_stats)
            .unwrap();
        assert!(dec_stats.scan_steps > 0, "decode is a prefix sum");
        assert!(dec_stats.block_syncs > 0);
    }

    #[test]
    fn size_preserving() {
        let data = sample(999);
        let mut out = Vec::new();
        DiffNb::<8>.encode_chunk(&data, &mut out, &mut KernelStats::new());
        assert_eq!(out.len(), data.len());
    }
}
