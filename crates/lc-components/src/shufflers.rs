//! Shufflers: value reordering without computation (paper §3.2.2).
//!
//! * **BIT** — bit-plane transpose: the most significant bit of every word
//!   is emitted first, then every second bit, and so on. The GPU
//!   implementations differ by word size: the 1- and 2-byte variants use
//!   plain bitwise operations without synchronization, while the 4- and
//!   8-byte variants use `__shfl_xor`-based warp transposes that implicitly
//!   synchronize (paper §6.4, Fig. 10) — the kernel statistics reflect
//!   this split.
//! * **TUPLk** — treats the data as a sequence of k-tuples and rearranges
//!   array-of-structures to structure-of-arrays (all first elements, then
//!   all second elements, …).
//!
//! Both are size-preserving; incomplete trailing tuples/words pass through
//! unchanged.

use lc_core::{
    CommuteClass, Complexity, Component, ComponentKind, Contract, DecodeError, KernelStats,
    KernelVariant, SpanClass, WorkClass,
};

use crate::kernels::{bitplane, tuple};
use crate::util::words;

/// BIT_i: bit-plane transpose at word size `W`.
pub struct Bit<const W: usize>;

impl<const W: usize> Bit<W> {
    fn account(stats: &mut KernelStats, n: usize, len: usize) {
        let b = u64::from(words::bits::<W>());
        stats.words += n as u64;
        stats.global_reads += len as u64;
        stats.global_writes += len as u64;
        stats.shared_traffic += 2 * (n * W) as u64;
        // Θ(n log w) work for every width (paper Table 2).
        let steps = b.ilog2() as u64;
        stats.thread_ops += n as u64 * steps;
        if W > 2 {
            // The 4-/8-byte variants transpose via __shfl_xor, whose
            // implicit warp synchronization is part of the shuffle itself
            // (no separate __syncwarp); paper §6.4.
            stats.warp_shuffles += n as u64 * steps;
            stats.scan_steps += steps;
        }
    }
}

impl<const W: usize> Component for Bit<W> {
    fn name(&self) -> &'static str {
        match W {
            1 => "BIT_1",
            2 => "BIT_2",
            4 => "BIT_4",
            8 => "BIT_8",
            _ => unreachable!("unsupported word size"),
        }
    }
    fn kind(&self) -> ComponentKind {
        ComponentKind::Shuffler
    }
    fn word_size(&self) -> usize {
        W
    }
    fn complexity(&self) -> Complexity {
        // The only component with Θ(n log w) work and Θ(log w) span
        // (paper Table 2).
        Complexity::new(
            WorkClass::NLogW,
            SpanClass::LogW,
            WorkClass::NLogW,
            SpanClass::LogW,
        )
    }
    fn contract(&self) -> Contract {
        // BIT permutes *bits*, not whole words — no word-granular
        // structure to claim, so it never participates in pruning.
        Contract::preserving(ComponentKind::Shuffler, W, CommuteClass::Opaque)
    }
    fn kernel_variant(&self) -> KernelVariant {
        bitplane::variant::<W>()
    }
    fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
        let n = words::count::<W>(input.len());
        bitplane::encode::<W>(input, out);
        Self::account(stats, n, input.len());
    }
    fn decode_chunk(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        stats: &mut KernelStats,
    ) -> Result<(), DecodeError> {
        // Size-preserving: the word count is recoverable from the length.
        let n = words::count::<W>(input.len());
        bitplane::decode::<W>(input, out)?;
        Self::account(stats, n, input.len());
        Ok(())
    }
}

/// TUPLk_i: AoS → SoA rearrangement of k-tuples of `W`-byte words.
pub struct Tupl<const K: usize, const W: usize>;

impl<const K: usize, const W: usize> Tupl<K, W> {
    fn account(stats: &mut KernelStats, n_tuples: usize, len: usize) {
        let n_words = (n_tuples * K) as u64;
        stats.words += n_words;
        stats.thread_ops += n_words * 2; // index arithmetic only
        stats.global_reads += len as u64;
        stats.global_writes += len as u64;
        // The strided gather/scatter is staged through shared memory.
        stats.shared_traffic += 2 * n_words * W as u64;
    }
}

impl<const K: usize, const W: usize> Component for Tupl<K, W> {
    fn name(&self) -> &'static str {
        match (K, W) {
            (2, 1) => "TUPL2_1",
            (2, 2) => "TUPL2_2",
            (4, 1) => "TUPL4_1",
            (4, 2) => "TUPL4_2",
            (8, 1) => "TUPL8_1",
            (8, 4) => "TUPL8_4",
            _ => unreachable!("unsupported (tuple, word) combination"),
        }
    }
    fn kind(&self) -> ComponentKind {
        ComponentKind::Shuffler
    }
    fn word_size(&self) -> usize {
        W
    }
    fn tuple_size(&self) -> Option<usize> {
        Some(K)
    }
    fn complexity(&self) -> Complexity {
        Complexity::new(
            WorkClass::N,
            SpanClass::Const,
            WorkClass::N,
            SpanClass::Const,
        )
    }
    fn contract(&self) -> Contract {
        // AoS→SoA is a value-independent permutation of W-byte fields
        // within each complete K·W-byte tuple; the incomplete trailing
        // tuple passes through. A pointwise map on w-byte words with
        // w | W therefore commutes with it (see `lc_core::contract`).
        // Inputs shorter than one complete K·W-byte tuple pass through
        // entirely — the identity.
        Contract::preserving(ComponentKind::Shuffler, W, CommuteClass::WordPermutation)
            .with_noop_below(K * W)
    }
    fn kernel_variant(&self) -> KernelVariant {
        tuple::variant::<K, W>()
    }
    fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
        // All field-0 words, then all field-1 words, … (kernel module).
        let n_tuples = input.len() / (K * W);
        tuple::encode::<K, W>(input, out);
        Self::account(stats, n_tuples, input.len());
    }
    fn decode_chunk(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        stats: &mut KernelStats,
    ) -> Result<(), DecodeError> {
        let n_tuples = input.len() / (K * W);
        tuple::decode::<K, W>(input, out);
        Self::account(stats, n_tuples, input.len());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::verify::roundtrip_component;

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 197 + 43) % 256) as u8).collect()
    }

    #[test]
    fn bit_names_and_kind() {
        assert_eq!(Bit::<1>.name(), "BIT_1");
        assert_eq!(Bit::<8>.name(), "BIT_8");
        assert_eq!(Bit::<4>.kind(), ComponentKind::Shuffler);
        assert_eq!(Bit::<4>.tuple_size(), None);
    }

    #[test]
    fn bit_roundtrips_all_widths_and_lengths() {
        for len in [
            0usize,
            1,
            7,
            8,
            9,
            16,
            100,
            1024,
            16384,
            16385 % 16384 + 123,
        ] {
            let data = sample(len);
            roundtrip_component(&Bit::<1>, &data);
            roundtrip_component(&Bit::<2>, &data);
            roundtrip_component(&Bit::<4>, &data);
            roundtrip_component(&Bit::<8>, &data);
        }
    }

    #[test]
    fn bit_size_preserving() {
        let data = sample(4096);
        let mut out = Vec::new();
        Bit::<4>.encode_chunk(&data, &mut out, &mut KernelStats::new());
        assert_eq!(out.len(), data.len());
    }

    #[test]
    fn bit_known_transpose() {
        // Two u8 words: 0b1000_0000 and 0b0000_0001. Plane 7 (MSB) = bits
        // [1,0]; planes 6..1 = [0,0]; plane 0 = [0,1].
        let data = [0b1000_0000u8, 0b0000_0001];
        let mut out = Vec::new();
        Bit::<1>.encode_chunk(&data, &mut out, &mut KernelStats::new());
        assert_eq!(out, vec![0b1000_0000, 0b0000_0001]);
        // Three distinct-plane words at W=1, n=8 so planes are byte-aligned.
        let data: Vec<u8> = vec![0xFF; 8];
        let mut out = Vec::new();
        Bit::<1>.encode_chunk(&data, &mut out, &mut KernelStats::new());
        assert_eq!(out, vec![0xFF; 8]);
    }

    #[test]
    fn bit_stats_differ_by_width_class() {
        let data = sample(8192);
        let mut s12 = KernelStats::new();
        Bit::<2>.encode_chunk(&data, &mut Vec::new(), &mut s12);
        assert_eq!(s12.warp_shuffles, 0, "BIT_2 uses no shuffles");
        let mut s48 = KernelStats::new();
        Bit::<4>.encode_chunk(&data, &mut Vec::new(), &mut s48);
        assert!(s48.warp_shuffles > 0, "BIT_4 uses warp shuffles");
        assert!(s48.scan_steps > 0);
    }

    #[test]
    fn tupl_names() {
        assert_eq!(Tupl::<2, 1>.name(), "TUPL2_1");
        assert_eq!(Tupl::<2, 2>.name(), "TUPL2_2");
        assert_eq!(Tupl::<4, 1>.name(), "TUPL4_1");
        assert_eq!(Tupl::<4, 2>.name(), "TUPL4_2");
        assert_eq!(Tupl::<8, 1>.name(), "TUPL8_1");
        assert_eq!(Tupl::<8, 4>.name(), "TUPL8_4");
        assert_eq!(Tupl::<2, 1>.tuple_size(), Some(2));
    }

    #[test]
    fn tupl_roundtrips_all_variants_and_lengths() {
        for len in [0usize, 1, 2, 3, 4, 15, 16, 17, 100, 4096, 16384] {
            let data = sample(len);
            roundtrip_component(&Tupl::<2, 1>, &data);
            roundtrip_component(&Tupl::<2, 2>, &data);
            roundtrip_component(&Tupl::<4, 1>, &data);
            roundtrip_component(&Tupl::<4, 2>, &data);
            roundtrip_component(&Tupl::<8, 1>, &data);
            roundtrip_component(&Tupl::<8, 4>, &data);
        }
    }

    #[test]
    fn tupl2_interleaves_as_documented() {
        // x1 y1 x2 y2 → x1 x2 y1 y2 (paper §3.2.2 example).
        let data = [b'x', b'1', b'y', b'1', b'x', b'2', b'y', b'2'];
        let mut out = Vec::new();
        Tupl::<2, 2>.encode_chunk(&data, &mut out, &mut KernelStats::new());
        assert_eq!(out, [b'x', b'1', b'x', b'2', b'y', b'1', b'y', b'2']);
    }

    #[test]
    fn tupl_partial_tuple_passes_through() {
        let data = sample(10); // one complete 4×2-byte tuple + 2 tail bytes
        let mut out = Vec::new();
        Tupl::<4, 2>.encode_chunk(&data, &mut out, &mut KernelStats::new());
        assert_eq!(&out[8..], &data[8..]);
    }
}
