//! RLE: run-length encoding (paper §3.2.4).
//!
//! The encoder counts how many times a value appears in a row, then how
//! many non-repeating values follow. Both counts are emitted, followed by
//! a single instance of the repeating value and all the non-repeating
//! values. Decoding replays the runs — Θ(1) span (paper Table 2), since
//! every output position can be computed independently once the record
//! offsets are known.
//!
//! Body layout after the shared reducer frame (repeated until `n_words`
//! are covered):
//!
//! ```text
//! varint  run_len    ≥ 1: how often the run value repeats
//! varint  lit_count  non-repeating values that follow the run
//! word    value      the run value (W bytes)
//! word×lit_count     the literal values
//! ```
//!
//! On the paper's single-precision inputs, only RLE_4 regularly finds runs
//! (4-byte values repeat; their halves/bytes rarely do), so RLE_1/2/8
//! expand, get skipped by copy-on-expand, and then decode at copy speed —
//! the Fig. 11 effect.

use lc_core::{
    Complexity, Component, ComponentKind, Contract, DecodeError, ExpansionBound, KernelStats,
    SizeDeterminant, SpanClass, WorkClass,
};

use super::{account_compaction_scan, read_frame, write_frame};
use crate::kernels::{self, bitmap};
use crate::util::varint;

/// RLE_i: run-length encoding at word size `W`.
pub struct Rle<const W: usize>;

impl<const W: usize> Component for Rle<W> {
    fn name(&self) -> &'static str {
        match W {
            1 => "RLE_1",
            2 => "RLE_2",
            4 => "RLE_4",
            8 => "RLE_8",
            _ => unreachable!("unsupported word size"),
        }
    }
    fn kind(&self) -> ComponentKind {
        ComponentKind::Reducer
    }
    fn word_size(&self) -> usize {
        W
    }
    fn complexity(&self) -> Complexity {
        // Encode needs run-boundary scans (Θ(log n) span); decode replays
        // runs with Θ(1) span (paper Table 2).
        Complexity::new(
            WorkClass::N,
            SpanClass::LogN,
            WorkClass::N,
            SpanClass::Const,
        )
    }

    fn kernel_variant(&self) -> lc_core::KernelVariant {
        kernels::rle::variant::<W>()
    }

    fn contract(&self) -> Contract {
        // Worst case, every record covers one run word (run=1, lits=0 —
        // only possible when a run of ≥ 2 follows, so ≥ 1.5 words/record
        // on average, but ≤ n records is the safe count): each record
        // stores ≤ covered_words·W value bytes plus ≤ 6 varint bytes, so
        // body ≤ n·W + 6n and the frame adds ≤ W + 3 bytes. Declared as
        // max_bytes(len) = len·(W+6)/W + 16.
        //
        // Size determinant: records are emitted from the run/literal
        // structure of the complete W-byte words — exactly their
        // adjacent-equality pattern — with literal words copied
        // verbatim, so |output| and both directions' kernel statistics
        // are functions of the length and that pattern alone.
        Contract::reducer(W, ExpansionBound::affine(W as u64 + 6, W as u64, 16))
            .with_size_determinant(SizeDeterminant::EqualityPattern)
    }

    fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
        let n = write_frame::<W>(input, out);
        let src = &input[..n * W];
        // Neighbor-repeat bitmap (bit j ⇔ word j equals word j−1), built
        // 16–32 words per step by the SIMD bitmap kernel; the run/literal
        // scans below then walk bits instead of comparing words.
        let mut rb = Vec::new();
        bitmap::build::<W>(bitmap::Mark::RepeatsPrior, src, &mut rb);
        let mut records = 0u64;
        let mut i = 0usize;
        while i < n {
            // Maximal run of equal values starting at i.
            let run = 1 + kernels::rle::count_set_from(&rb, n, i + 1);
            let run_end = i + run;
            // Literals: values up to (excluding) the start of the next run
            // of length ≥ 2, i.e. just before the next repeat bit.
            let q = kernels::rle::next_set_bit(&rb, n, run_end + 1);
            let lit_end = if q < n { q - 1 } else { n };
            varint::write(out, run as u64);
            varint::write(out, (lit_end - run_end) as u64);
            out.extend_from_slice(&src[i * W..(i + 1) * W]);
            out.extend_from_slice(&src[run_end * W..lit_end * W]);
            records += 1;
            i = lit_end;
        }
        stats.words += n as u64;
        stats.thread_ops += n as u64 * 4;
        stats.global_reads += input.len() as u64;
        stats.global_writes += out.len() as u64;
        stats.shared_traffic += (n * W) as u64 * 2;
        stats.divergent_branches += records; // run boundaries diverge
        account_compaction_scan(stats, n);
    }

    fn decode_chunk(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        stats: &mut KernelStats,
    ) -> Result<(), DecodeError> {
        let frame = read_frame::<W>(input)?;
        let n = frame.n_words;
        let mut pos = frame.body;
        out.reserve(n * W + frame.tail.len());
        let mut produced = 0usize;
        let mut records = 0u64;
        let mut run_words = 0u64;
        let mut lit_words = 0u64;
        while produced < n {
            let run = varint::read(input, &mut pos)? as usize;
            let lits = varint::read(input, &mut pos)? as usize;
            if run == 0 || produced + run + lits > n {
                return Err(DecodeError::Corrupt {
                    context: "RLE record overruns words",
                });
            }
            if pos + (1 + lits) * W > input.len() {
                return Err(DecodeError::Truncated {
                    context: "RLE record values",
                });
            }
            kernels::rle::fill_words::<W>(&input[pos..pos + W], run, out);
            pos += W;
            out.extend_from_slice(&input[pos..pos + lits * W]);
            pos += lits * W;
            produced += run + lits;
            records += 1;
            run_words += run as u64;
            lit_words += lits as u64;
        }
        out.extend_from_slice(frame.tail);
        stats.words += n as u64;
        // Replaying runs is Θ(1)-span, but the cost is structural: literal
        // regions stream out at copy speed (cost per *byte*, independent
        // of the word size), run regions are broadcast stores, and every
        // record boundary forces an irregular, divergent lookup whose
        // position depends on all prior records — the GPU decoder resolves
        // the chain with intra-block searches that cost two orders of
        // magnitude more per record than a streamed literal byte. Chunks
        // dense in short records (what RLE_4 produces on quantized float
        // data) therefore decode markedly slower than chunks that are one
        // long literal record — the asymmetry behind Fig. 11.
        let lit_bytes = lit_words * W as u64;
        let run_bytes = run_words * W as u64;
        stats.thread_ops += lit_bytes / 2 + run_bytes / 4 + records * 96;
        stats.global_reads += input.len() as u64;
        stats.global_writes += out.len() as u64;
        stats.shared_traffic += (n * W) as u64;
        stats.divergent_branches += records * 2;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::verify::roundtrip_component;

    #[test]
    fn roundtrips_all_widths_and_lengths() {
        for len in [0usize, 1, 3, 4, 8, 100, 1000, 16384] {
            let data: Vec<u8> = (0..len).map(|i| ((i / 7) % 256) as u8).collect();
            roundtrip_component(&Rle::<1>, &data);
            roundtrip_component(&Rle::<2>, &data);
            roundtrip_component(&Rle::<4>, &data);
            roundtrip_component(&Rle::<8>, &data);
        }
    }

    #[test]
    fn compresses_runs() {
        let mut vals = vec![7u32; 2000];
        vals.extend((0..48).map(|i| i * 13 + 1));
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let size = roundtrip_component(&Rle::<4>, &data);
        assert!(size < data.len() / 10, "{size} vs {}", data.len());
    }

    #[test]
    fn expands_on_run_free_data() {
        let vals: Vec<u32> = (0..1000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let size = roundtrip_component(&Rle::<4>, &data);
        assert!(size > data.len(), "no runs → frame overhead must expand");
    }

    #[test]
    fn word_size_determines_visibility_of_runs() {
        // Repeating 4-byte value whose bytes never repeat back-to-back:
        // RLE_4 compresses, RLE_1 cannot.
        let v: u32 = u32::from_le_bytes([1, 2, 3, 4]);
        let vals = vec![v; 4096];
        let data: Vec<u8> = vals.iter().flat_map(|x| x.to_le_bytes()).collect();
        let s4 = roundtrip_component(&Rle::<4>, &data);
        let s1 = roundtrip_component(&Rle::<1>, &data);
        assert!(s4 < data.len() / 100, "RLE_4 sees the runs: {s4}");
        assert!(s1 > data.len() / 2, "RLE_1 sees no runs: {s1}");
    }

    #[test]
    fn alternating_runs_and_literals() {
        // 5×a, b, c, 3×d, e — checks record segmentation.
        let mut vals = vec![10u16; 5];
        vals.extend([20, 30]);
        vals.extend([40u16; 3]);
        vals.push(50);
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        roundtrip_component(&Rle::<2>, &data);
    }

    #[test]
    fn decode_rejects_zero_run() {
        let data: Vec<u8> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let mut enc = Vec::new();
        Rle::<4>.encode_chunk(&data, &mut enc, &mut KernelStats::new());
        // Frame is varint(2) + tail_len(0) = 2 bytes; next varint is run_len.
        enc[2] = 0;
        let mut out = Vec::new();
        assert!(Rle::<4>
            .decode_chunk(&enc, &mut out, &mut KernelStats::new())
            .is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let vals = vec![9u32; 100];
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut enc = Vec::new();
        Rle::<4>.encode_chunk(&data, &mut enc, &mut KernelStats::new());
        for cut in 0..enc.len() {
            let mut out = Vec::new();
            assert!(
                Rle::<4>
                    .decode_chunk(&enc[..cut], &mut out, &mut KernelStats::new())
                    .is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn divergence_tracks_record_count() {
        let mut s_runs = KernelStats::new();
        let runs: Vec<u8> = vec![5; 1000];
        Rle::<1>.encode_chunk(&runs, &mut Vec::new(), &mut s_runs);
        let mut s_many = KernelStats::new();
        // Runs of length 2 force a record every other byte.
        let many_runs: Vec<u8> = (0..1000).map(|i| ((i / 2) % 251) as u8).collect();
        Rle::<1>.encode_chunk(&many_runs, &mut Vec::new(), &mut s_many);
        assert!(s_runs.divergent_branches < s_many.divergent_branches);
    }
}
