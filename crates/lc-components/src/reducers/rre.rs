//! RRE and RZE: bitmap-based repetition/zero elimination (paper §3.2.4).
//!
//! RRE creates a bitmap marking every word that repeats its predecessor,
//! outputs only the non-repeating words, and compresses the bitmap
//! *repeatedly with the same algorithm*: the bitmap's bytes are themselves
//! bitmap-compressed (a repeat-bitmap over bitmap bytes plus the
//! non-repeating bytes), recursing until the residue is at most
//! [`BITMAP_RAW_LIMIT`] bytes. RZE is identical except the bitmap marks
//! zero words (and, in the recursion, zero bitmap bytes).
//!
//! Body layout after the shared reducer frame:
//!
//! ```text
//! bitmap-block(level 0 bitmap)     recursive, see below
//! word × kept                      surviving words, in order
//!
//! bitmap-block(bm):
//!   varint len(bm)
//!   if len ≤ BITMAP_RAW_LIMIT: bm verbatim
//!   else: bitmap-block(bitmap over bm's bytes) then surviving bytes
//! ```

use lc_core::{
    Complexity, Component, ComponentKind, Contract, DecodeError, ExpansionBound, KernelStats,
    SizeDeterminant, SpanClass, WorkClass,
};

use super::{account_compaction_scan, read_frame, write_frame};
use crate::kernels::{self, bitmap};
use crate::util::varint;
use crate::util::words;

pub(crate) use crate::kernels::bitmap::Mark;

/// Bitmaps at or below this many bytes are stored verbatim instead of
/// recursing further.
pub const BITMAP_RAW_LIMIT: usize = 16;

/// Recursively emit a bitmap block.
///
/// Every recursion level marks bitmap bytes that repeat their predecessor,
/// independent of the word-level rule: bitmaps are run-heavy for both
/// repeat-marked and zero-marked data, so repeat-marking collapses them in
/// O(log) levels either way. (The paper only says the bitmap is
/// "repeatedly compressed with the same algorithm"; the exact byte-level
/// rule is an implementation choice, documented here.)
pub(crate) fn write_bitmap_block(bm: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
    varint::write(out, bm.len() as u64);
    if bm.len() <= BITMAP_RAW_LIMIT {
        out.extend_from_slice(bm);
        return;
    }
    let mut meta = Vec::new();
    bitmap::build::<1>(Mark::RepeatsPrior, bm, &mut meta);
    stats.thread_ops += bm.len() as u64 * 2;
    write_bitmap_block(&meta, out, stats);
    bitmap::emit_survivors::<1>(bm, &meta, out);
}

/// Recursively read a bitmap block starting at `*pos`.
pub(crate) fn read_bitmap_block(
    buf: &[u8],
    pos: &mut usize,
    stats: &mut KernelStats,
) -> Result<Vec<u8>, DecodeError> {
    let len = varint::read(buf, pos)? as usize;
    // A level-0 bitmap covers at most 2·CHUNK_SIZE words → bound every
    // level by that to stop corrupt archives from over-allocating.
    if len > lc_core::CHUNK_SIZE * 2 {
        return Err(DecodeError::Corrupt {
            context: "bitmap block too large",
        });
    }
    if len <= BITMAP_RAW_LIMIT {
        if *pos + len > buf.len() {
            return Err(DecodeError::Truncated {
                context: "raw bitmap block",
            });
        }
        let bm = buf[*pos..*pos + len].to_vec();
        *pos += len;
        return Ok(bm);
    }
    let meta = read_bitmap_block(buf, pos, stats)?;
    if meta.len() != len.div_ceil(8) {
        return Err(DecodeError::Corrupt {
            context: "bitmap meta level size",
        });
    }
    stats.thread_ops += len as u64 * 2;
    let mut bm = Vec::with_capacity(len);
    for i in 0..len {
        let marked = meta[i / 8] & (1 << (i % 8)) != 0;
        if marked {
            if i == 0 {
                return Err(DecodeError::Corrupt {
                    context: "bitmap repeat at index 0",
                });
            }
            let b = bm[i - 1];
            bm.push(b);
        } else {
            let b = *buf.get(*pos).ok_or(DecodeError::Truncated {
                context: "bitmap survivors",
            })?;
            *pos += 1;
            bm.push(b);
        }
    }
    Ok(bm)
}

fn encode<const W: usize>(input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats, mark: Mark) {
    let n = write_frame::<W>(input, out);
    let src = &input[..n * W];
    let mut bm = Vec::new();
    let kept = bitmap::build::<W>(mark, src, &mut bm);
    write_bitmap_block(&bm, out, stats);
    bitmap::emit_survivors::<W>(src, &bm, out);
    stats.words += n as u64;
    stats.thread_ops += n as u64 * 3;
    stats.global_reads += input.len() as u64;
    stats.global_writes += out.len() as u64;
    stats.shared_traffic += (n * W + bm.len()) as u64;
    stats.divergent_branches += (n - kept) as u64 / 8 + 1;
    account_compaction_scan(stats, n);
}

fn decode<const W: usize>(
    input: &[u8],
    out: &mut Vec<u8>,
    stats: &mut KernelStats,
    mark: Mark,
) -> Result<(), DecodeError> {
    let frame = read_frame::<W>(input)?;
    let n = frame.n_words;
    let mut pos = frame.body;
    let bm = read_bitmap_block(input, &mut pos, stats)?;
    if bm.len() != n.div_ceil(8) {
        return Err(DecodeError::Corrupt {
            context: "bitmap size vs word count",
        });
    }
    out.reserve(n * W + frame.tail.len());
    let mut prev = 0u64;
    let mut i = 0usize;
    // RZE at word size 4 has a vectorized reconstruction; it stops at
    // the first group it cannot safely load, and the scalar loop below
    // (which owns all truncation detection) finishes from there. `prev`
    // needs no fixup: it is only read under `Mark::RepeatsPrior`.
    if W == 4 && matches!(mark, Mark::IsZero) {
        i = bitmap::expand_zero4(&bm, n, input, &mut pos, out);
    }
    while i < n {
        // Whole-bitmap-byte fast paths: 0x00 = eight survivors streamed
        // straight from the input, 0xFF = eight reconstructed words.
        if i.is_multiple_of(8) && i + 8 <= n {
            match bm[i / 8] {
                0x00 => {
                    if pos + 8 * W > input.len() {
                        return Err(DecodeError::Truncated {
                            context: "surviving words",
                        });
                    }
                    out.extend_from_slice(&input[pos..pos + 8 * W]);
                    prev = words::get::<W>(&input[pos + 7 * W..], 0);
                    pos += 8 * W;
                    i += 8;
                    continue;
                }
                0xFF => {
                    match mark {
                        Mark::IsZero => {
                            out.resize(out.len() + 8 * W, 0);
                            prev = 0;
                        }
                        Mark::RepeatsPrior => {
                            if i == 0 {
                                return Err(DecodeError::Corrupt {
                                    context: "word repeat at index 0",
                                });
                            }
                            let wb = prev.to_le_bytes();
                            kernels::rle::fill_words::<W>(&wb[..W], 8, out);
                        }
                    }
                    i += 8;
                    continue;
                }
                _ => {}
            }
        }
        let marked = bm[i / 8] & (1 << (i % 8)) != 0;
        let v = if marked {
            match mark {
                Mark::RepeatsPrior => {
                    if i == 0 {
                        return Err(DecodeError::Corrupt {
                            context: "word repeat at index 0",
                        });
                    }
                    prev
                }
                Mark::IsZero => 0,
            }
        } else {
            if pos + W > input.len() {
                return Err(DecodeError::Truncated {
                    context: "surviving words",
                });
            }
            let v = words::get::<W>(&input[pos..], 0);
            pos += W;
            v
        };
        words::put::<W>(out, v);
        prev = v;
        i += 1;
    }
    out.extend_from_slice(frame.tail);
    stats.words += n as u64;
    stats.thread_ops += n as u64 * 2;
    stats.global_reads += input.len() as u64;
    stats.global_writes += out.len() as u64;
    // Scattering survivors back to their positions needs an intra-chunk
    // prefix sum over the bitmap (Θ(log n) span; paper Table 2).
    account_compaction_scan(stats, n);
    Ok(())
}

macro_rules! rre_like {
    ($name:ident, $prefix:literal, $mark:expr) => {
        #[doc = concat!($prefix, " at a const word size; see the module docs.")]
        pub struct $name<const W: usize>;

        impl<const W: usize> Component for $name<W> {
            fn name(&self) -> &'static str {
                match W {
                    1 => concat!($prefix, "_1"),
                    2 => concat!($prefix, "_2"),
                    4 => concat!($prefix, "_4"),
                    8 => concat!($prefix, "_8"),
                    _ => unreachable!("unsupported word size"),
                }
            }
            fn kind(&self) -> ComponentKind {
                ComponentKind::Reducer
            }
            fn word_size(&self) -> usize {
                W
            }
            fn complexity(&self) -> Complexity {
                Complexity::new(WorkClass::N, SpanClass::LogN, WorkClass::N, SpanClass::LogN)
            }
            fn kernel_variant(&self) -> lc_core::KernelVariant {
                bitmap::variant::<W>()
            }
            fn contract(&self) -> Contract {
                // Worst case nothing is eliminated: all n·W word bytes
                // survive and the recursive bitmap costs ≤ n/8 · 8/7 bytes
                // plus per-level varints — well under 2 extra bytes per
                // word. Declared as max_bytes(len) = len·(W+2)/W + 64.
                //
                // Size determinant: the output consists of the recursive
                // bitmap (a function of which words are marked) plus the
                // kept words verbatim — so |output| and the kernel
                // statistics in both directions are functions of the
                // input length and the mark pattern alone. For RRE the
                // mark pattern is the adjacent-equality pattern of the
                // complete W-byte words; for RZE it is the zero/nonzero
                // pattern.
                Contract::reducer(W, ExpansionBound::affine(W as u64 + 2, W as u64, 64))
                    .with_size_determinant(match $mark {
                        Mark::RepeatsPrior => SizeDeterminant::EqualityPattern,
                        Mark::IsZero => SizeDeterminant::ZeroPattern,
                    })
            }
            fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
                encode::<W>(input, out, stats, $mark);
            }
            fn decode_chunk(
                &self,
                input: &[u8],
                out: &mut Vec<u8>,
                stats: &mut KernelStats,
            ) -> Result<(), DecodeError> {
                decode::<W>(input, out, stats, $mark)
            }
        }
    };
}

rre_like!(Rre, "RRE", Mark::RepeatsPrior);
rre_like!(Rze, "RZE", Mark::IsZero);

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::verify::roundtrip_component;

    #[test]
    fn roundtrips_all_widths_and_lengths() {
        for len in [0usize, 1, 3, 4, 8, 100, 1000, 16384] {
            let data: Vec<u8> = (0..len).map(|i| ((i / 3) % 256) as u8).collect();
            roundtrip_component(&Rre::<1>, &data);
            roundtrip_component(&Rre::<2>, &data);
            roundtrip_component(&Rre::<4>, &data);
            roundtrip_component(&Rre::<8>, &data);
            roundtrip_component(&Rze::<1>, &data);
            roundtrip_component(&Rze::<2>, &data);
            roundtrip_component(&Rze::<4>, &data);
            roundtrip_component(&Rze::<8>, &data);
        }
    }

    #[test]
    fn rre_compresses_repeats() {
        let vals = vec![0xDEADBEEFu32; 4096];
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let size = roundtrip_component(&Rre::<4>, &data);
        // One surviving word + a recursively-collapsed all-ones bitmap.
        assert!(size < 100, "fully repetitive data must collapse: {size}");
    }

    #[test]
    fn rze_compresses_zeros() {
        let mut vals = vec![0u32; 4000];
        vals.extend((1..=96).map(|i| i * 7)); // nonzero survivors
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let size = roundtrip_component(&Rze::<4>, &data);
        assert!(size < 96 * 4 + 600, "zeros must vanish: {size}");
    }

    #[test]
    fn rre_vs_rze_prefer_different_data() {
        let repeats: Vec<u8> = vec![9u8; 8192];
        let zeros: Vec<u8> = vec![0u8; 8192];
        assert!(roundtrip_component(&Rre::<1>, &repeats) < 100);
        assert!(roundtrip_component(&Rze::<1>, &zeros) < 100);
    }

    #[test]
    fn incompressible_data_expands() {
        let vals: Vec<u32> = (0..1000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert!(roundtrip_component(&Rre::<4>, &data) > data.len());
        assert!(roundtrip_component(&Rze::<4>, &data) > data.len());
    }

    #[test]
    fn bitmap_block_roundtrip_various_sizes() {
        for len in [0usize, 1, 16, 17, 100, 2048] {
            let bm: Vec<u8> = (0..len).map(|i| ((i / 5) % 256) as u8).collect();
            let mut out = Vec::new();
            write_bitmap_block(&bm, &mut out, &mut KernelStats::new());
            let mut pos = 0;
            let back = read_bitmap_block(&out, &mut pos, &mut KernelStats::new()).unwrap();
            assert_eq!(back, bm, "len={len}");
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn bitmap_block_rejects_truncation() {
        let bm: Vec<u8> = (0..200).map(|i| (i % 7) as u8).collect();
        let mut out = Vec::new();
        write_bitmap_block(&bm, &mut out, &mut KernelStats::new());
        for cut in 0..out.len() {
            let mut pos = 0;
            assert!(
                read_bitmap_block(&out[..cut], &mut pos, &mut KernelStats::new()).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn decode_rejects_wrong_bitmap_size() {
        let data = vec![5u8; 100];
        let mut enc = Vec::new();
        Rre::<1>.encode_chunk(&data, &mut enc, &mut KernelStats::new());
        // Shrink the declared word count: bitmap size check must fire.
        enc[0] = 50; // varint(100) is one byte
        let mut out = Vec::new();
        assert!(Rre::<1>
            .decode_chunk(&enc, &mut out, &mut KernelStats::new())
            .is_err());
    }

    #[test]
    fn rre_marks_nothing_on_alternating_data() {
        let data: Vec<u8> = (0..512).map(|i| (i % 2) as u8 * 255).collect();
        let size = roundtrip_component(&Rre::<1>, &data);
        assert!(size > data.len(), "alternating data has no repeats");
    }
}
