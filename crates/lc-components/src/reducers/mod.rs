//! Reducers: the only components that can compress (paper §3.2.4).
//!
//! Every reducer operates on the complete `W`-byte words of its chunk and
//! shares a small frame so its decoder can recover the original chunk
//! geometry (which is *not* implied by the encoded length):
//!
//! ```text
//! varint  n_words       complete words in the original chunk
//! u8      tail_len      trailing bytes (< W) that form no complete word
//! bytes   tail          those bytes, verbatim
//! bytes   body          reducer-specific payload
//! ```
//!
//! The framework skips a reducer on any chunk where its output is not
//! strictly smaller than its input (copy-on-expand), so reducers may
//! freely "fail" to compress — the frame overhead then simply makes the
//! chunk expand and the stage is dropped for that chunk.

pub mod clog;
pub mod rare;
pub mod rle;
pub mod rre;

pub use clog::{Clog, Hclog};
pub use rare::{Rare, Raze};
pub use rle::Rle;
pub use rre::{Rre, Rze};

use lc_core::{DecodeError, KernelStats};

use crate::util::varint;
use crate::util::words;

/// Write the shared reducer frame; returns the number of complete words.
pub(crate) fn write_frame<const W: usize>(input: &[u8], out: &mut Vec<u8>) -> usize {
    let n = words::count::<W>(input.len());
    let tail = &input[n * W..];
    varint::write(out, n as u64);
    out.push(tail.len() as u8);
    out.extend_from_slice(tail);
    n
}

/// Parsed reducer frame.
pub(crate) struct Frame<'a> {
    /// Number of complete words encoded in the body.
    pub n_words: usize,
    /// Verbatim trailing bytes to re-append after the decoded words.
    pub tail: &'a [u8],
    /// Offset where the reducer-specific body starts.
    pub body: usize,
}

/// Read the shared reducer frame starting at offset 0 of `buf`.
pub(crate) fn read_frame<const W: usize>(buf: &[u8]) -> Result<Frame<'_>, DecodeError> {
    let mut pos = 0usize;
    let n_words = varint::read(buf, &mut pos)? as usize;
    let tail_len = *buf.get(pos).ok_or(DecodeError::Truncated {
        context: "reducer tail length",
    })? as usize;
    pos += 1;
    if tail_len >= W {
        return Err(DecodeError::Corrupt {
            context: "reducer tail length >= word size",
        });
    }
    if pos + tail_len > buf.len() {
        return Err(DecodeError::Truncated {
            context: "reducer tail bytes",
        });
    }
    // Guard against absurd word counts that would make decoders allocate
    // unbounded memory from a corrupt varint.
    if n_words > lc_core::CHUNK_SIZE * 2 {
        return Err(DecodeError::Corrupt {
            context: "reducer word count",
        });
    }
    let tail = &buf[pos..pos + tail_len];
    Ok(Frame {
        n_words,
        tail,
        body: pos + tail_len,
    })
}

/// Account the Θ(log n)-span output-compaction scan that compressing GPU
/// reducers perform when gathering their survivors (paper Table 2).
pub(crate) fn account_compaction_scan(stats: &mut KernelStats, n_words: usize) {
    if n_words > 1 {
        let steps = (n_words as u64).ilog2() as u64 + 1;
        stats.scan_steps += steps;
        stats.block_syncs += steps;
        stats.warp_shuffles += n_words as u64;
        stats.atomic_ops += 1; // block aggregate publication
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let input: Vec<u8> = (0..23).collect(); // 5 u32 words + 3 tail bytes
        let mut out = Vec::new();
        let n = write_frame::<4>(&input, &mut out);
        assert_eq!(n, 5);
        let f = read_frame::<4>(&out).unwrap();
        assert_eq!(f.n_words, 5);
        assert_eq!(f.tail, &input[20..]);
        assert_eq!(f.body, out.len());
    }

    #[test]
    fn frame_empty_input() {
        let mut out = Vec::new();
        let n = write_frame::<8>(&[], &mut out);
        assert_eq!(n, 0);
        let f = read_frame::<8>(&out).unwrap();
        assert_eq!(f.n_words, 0);
        assert!(f.tail.is_empty());
    }

    #[test]
    fn frame_rejects_truncation() {
        let input: Vec<u8> = (0..23).collect();
        let mut out = Vec::new();
        write_frame::<4>(&input, &mut out);
        assert!(read_frame::<4>(&out[..0]).is_err());
        assert!(read_frame::<4>(&out[..1]).is_err());
        assert!(read_frame::<4>(&out[..3]).is_err());
    }

    #[test]
    fn frame_rejects_oversized_tail() {
        // tail_len = 7 is invalid for W = 4.
        let buf = [0u8, 7, 1, 2, 3, 4, 5, 6, 7];
        assert!(read_frame::<4>(&buf).is_err());
    }

    #[test]
    fn frame_rejects_absurd_word_count() {
        let mut buf = Vec::new();
        varint::write(&mut buf, u32::MAX as u64);
        buf.push(0);
        assert!(read_frame::<4>(&buf).is_err());
    }

    #[test]
    fn compaction_scan_accounting() {
        let mut s = KernelStats::new();
        account_compaction_scan(&mut s, 1);
        assert!(s.is_zero(), "single word needs no scan");
        account_compaction_scan(&mut s, 4096);
        assert_eq!(s.scan_steps, 13);
        assert_eq!(s.block_syncs, 13);
        assert_eq!(s.atomic_ops, 1);
    }
}
