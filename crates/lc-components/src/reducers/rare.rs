//! RARE and RAZE: adaptive upper-bit repetition/zero elimination
//! (paper §3.2.4).
//!
//! RARE splits every word into its upper `k` bits and lower `B−k` bits,
//! applies the RRE procedure to the upper parts only (repeat bitmap +
//! surviving uppers), and always keeps the lower bits. It picks the
//! optimal `k` for each chunk automatically. RAZE is identical except the
//! upper parts are zero-eliminated (RZE).
//!
//! The per-chunk `k` search is what makes these the slowest encoders in
//! the library (paper Figs. 8 and 12): it is implemented with a
//! leading-zero histogram — `upper_k(w[i])` equals `upper_k(w[i−1])` iff
//! `clz(w[i] XOR w[i−1]) ≥ k`, so one O(n + B) pass yields the surviving
//! count for every `k` at once — followed by a second full packing pass.
//!
//! Body layout after the shared reducer frame:
//!
//! ```text
//! u8            k (1..=8·W)
//! bitmap-block  over the upper parts (see `rre` module)
//! bits          surviving upper parts, k bits each
//! bits          all lower parts, (8·W − k) bits each
//! ```

use lc_core::{
    Complexity, Component, ComponentKind, Contract, DecodeError, ExpansionBound, KernelStats,
    SpanClass, WorkClass,
};

use super::rre::{read_bitmap_block, write_bitmap_block};
use super::{account_compaction_scan, read_frame, write_frame};
use crate::util::bitpack::{bytes_for_bits, BitReader, BitWriter};
use crate::util::words;

/// Upper-part elimination rule.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Upper {
    /// Keep uppers that differ from their predecessor (RARE).
    Repeat,
    /// Keep nonzero uppers (RAZE).
    Zero,
}

/// Leading zeros of `v` within a `bits`-wide word (`v == 0` → `bits`).
#[inline(always)]
fn clz_width(v: u64, bits: u32) -> u32 {
    if v == 0 {
        bits
    } else {
        (v << (64 - bits)).leading_zeros()
    }
}

/// Choose the `k` minimizing the packed size estimate. Returns
/// `(k, kept_count_at_k)`.
fn choose_k(vals: &[u64], bits: u32, upper: Upper) -> (u32, usize) {
    let n = vals.len();
    // hist[c] = number of words whose relevant leading-zero count is c.
    let mut hist = vec![0usize; bits as usize + 1];
    match upper {
        Upper::Repeat => {
            // Word 0 always survives; count it as lz = 0.
            hist[0] += 1;
            for i in 1..n {
                hist[clz_width(vals[i] ^ vals[i - 1], bits) as usize] += 1;
            }
        }
        Upper::Zero => {
            for &v in vals {
                hist[clz_width(v, bits) as usize] += 1;
            }
        }
    }
    // kept(k) = # words with lz < k; grows cumulatively in k.
    let mut best = (1u32, usize::MAX, u64::MAX);
    let mut kept = 0usize;
    for k in 1..=bits {
        kept += hist[(k - 1) as usize];
        let cost = bytes_for_bits(kept as u64 * u64::from(k))
            + bytes_for_bits(n as u64 * u64::from(bits - k));
        if cost < best.2 {
            best = (k, kept, cost);
        }
    }
    (best.0, best.1)
}

fn encode<const W: usize>(input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats, upper: Upper) {
    let n = write_frame::<W>(input, out);
    let bits = words::bits::<W>();
    let vals = words::to_vec::<W>(input);
    if n == 0 {
        out.push(1); // degenerate k so the frame stays parseable
        write_bitmap_block(&[], out, stats);
        return;
    }
    let (k, _) = choose_k(&vals, bits, upper);
    let shift = bits - k;
    let upper_of = |v: u64| v >> shift;

    // Bitmap over the upper parts.
    let mut bm = vec![0u8; n.div_ceil(8)];
    let mut kept = 0usize;
    for i in 0..n {
        let marked = match upper {
            Upper::Repeat => i > 0 && upper_of(vals[i]) == upper_of(vals[i - 1]),
            Upper::Zero => upper_of(vals[i]) == 0,
        };
        if marked {
            bm[i / 8] |= 1 << (i % 8);
        } else {
            kept += 1;
        }
    }
    out.push(k as u8);
    write_bitmap_block(&bm, out, stats);
    let mut writer = BitWriter::new(out);
    for i in 0..n {
        if bm[i / 8] & (1 << (i % 8)) == 0 {
            writer.put(upper_of(vals[i]), k);
        }
    }
    for &v in &vals {
        writer.put(v, shift); // low `shift` bits
    }
    writer.finish();

    stats.words += n as u64;
    // Histogram pass + bitmap pass + two packing passes: the adaptive
    // overhead relative to plain RRE/RZE.
    stats.thread_ops += n as u64 * 10 + u64::from(bits);
    stats.global_reads += input.len() as u64;
    stats.global_writes += out.len() as u64;
    stats.shared_traffic += (n * W) as u64 * 2 + bm.len() as u64;
    stats.divergent_branches += (n - kept) as u64 / 8 + 1;
    stats.atomic_ops += 2; // histogram accumulation uses shared atomics
    account_compaction_scan(stats, n);
    account_compaction_scan(stats, n); // second scan for the packed uppers
}

fn decode<const W: usize>(
    input: &[u8],
    out: &mut Vec<u8>,
    stats: &mut KernelStats,
    upper: Upper,
) -> Result<(), DecodeError> {
    let frame = read_frame::<W>(input)?;
    let n = frame.n_words;
    let bits = words::bits::<W>();
    let mut pos = frame.body;
    let k = u32::from(
        *input
            .get(pos)
            .ok_or(DecodeError::Truncated { context: "RARE k" })?,
    );
    pos += 1;
    if k == 0 || k > bits {
        return Err(DecodeError::Corrupt {
            context: "RARE k out of range",
        });
    }
    let bm = read_bitmap_block(input, &mut pos, stats)?;
    if n == 0 {
        out.extend_from_slice(frame.tail);
        return Ok(());
    }
    if bm.len() != n.div_ceil(8) {
        return Err(DecodeError::Corrupt {
            context: "RARE bitmap size",
        });
    }
    let shift = bits - k;
    let mut reader = BitReader::new(&input[pos..]);
    // Pass 1: surviving uppers, in order.
    let mut kept_uppers = Vec::new();
    for i in 0..n {
        if bm[i / 8] & (1 << (i % 8)) == 0 {
            kept_uppers.push(reader.get(k)?);
        }
    }
    // Pass 2: reconstruct uppers while reading the lowers.
    out.reserve(n * W + frame.tail.len());
    let mut next_kept = kept_uppers.iter();
    let mut uppers = Vec::with_capacity(n);
    let mut prev_upper = 0u64;
    for i in 0..n {
        let marked = bm[i / 8] & (1 << (i % 8)) != 0;
        let u = if marked {
            match upper {
                Upper::Repeat => {
                    if i == 0 {
                        return Err(DecodeError::Corrupt {
                            context: "RARE repeat at index 0",
                        });
                    }
                    prev_upper
                }
                Upper::Zero => 0,
            }
        } else {
            *next_kept.next().expect("kept count matches bitmap") // invariant: kept count derives from this bitmap
        };
        uppers.push(u);
        prev_upper = u;
    }
    for &u in &uppers {
        let low = reader.get(shift)?;
        words::put::<W>(out, (u << shift) | low);
    }
    out.extend_from_slice(frame.tail);
    stats.words += n as u64;
    stats.thread_ops += n as u64 * 5;
    stats.global_reads += input.len() as u64;
    stats.global_writes += out.len() as u64;
    account_compaction_scan(stats, n);
    Ok(())
}

macro_rules! rare_like {
    ($name:ident, $prefix:literal, $upper:expr) => {
        #[doc = concat!($prefix, " at a const word size; see the module docs.")]
        pub struct $name<const W: usize>;

        impl<const W: usize> Component for $name<W> {
            fn name(&self) -> &'static str {
                match W {
                    1 => concat!($prefix, "_1"),
                    2 => concat!($prefix, "_2"),
                    4 => concat!($prefix, "_4"),
                    8 => concat!($prefix, "_8"),
                    _ => unreachable!("unsupported word size"),
                }
            }
            fn kind(&self) -> ComponentKind {
                ComponentKind::Reducer
            }
            fn word_size(&self) -> usize {
                W
            }
            fn complexity(&self) -> Complexity {
                Complexity::new(WorkClass::N, SpanClass::LogN, WorkClass::N, SpanClass::LogN)
            }
            fn contract(&self) -> Contract {
                // Upper + lower bit streams together hold ≤ 8·W bits per
                // word; the upper-part bitmap adds ≤ n/7 bytes and the `k`
                // byte, stream padding, and frame are constant. Declared
                // as max_bytes(len) = len·(W+2)/W + 64.
                Contract::reducer(W, ExpansionBound::affine(W as u64 + 2, W as u64, 64))
            }
            fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
                encode::<W>(input, out, stats, $upper);
            }
            fn decode_chunk(
                &self,
                input: &[u8],
                out: &mut Vec<u8>,
                stats: &mut KernelStats,
            ) -> Result<(), DecodeError> {
                decode::<W>(input, out, stats, $upper)
            }
        }
    };
}

rare_like!(Rare, "RARE", Upper::Repeat);
rare_like!(Raze, "RAZE", Upper::Zero);

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::verify::roundtrip_component;

    #[test]
    fn roundtrips_all_widths_and_lengths() {
        for len in [0usize, 1, 3, 4, 8, 100, 1000, 16384] {
            let data: Vec<u8> = (0..len).map(|i| ((i * 37 + i / 9) % 256) as u8).collect();
            roundtrip_component(&Rare::<1>, &data);
            roundtrip_component(&Rare::<2>, &data);
            roundtrip_component(&Rare::<4>, &data);
            roundtrip_component(&Rare::<8>, &data);
            roundtrip_component(&Raze::<1>, &data);
            roundtrip_component(&Raze::<2>, &data);
            roundtrip_component(&Raze::<4>, &data);
            roundtrip_component(&Raze::<8>, &data);
        }
    }

    #[test]
    fn rare_compresses_stable_upper_bits() {
        // Floats in a narrow range share sign+exponent (top 9+ bits).
        let vals: Vec<f32> = (0..4096).map(|i| 1.5 + (i % 97) as f32 * 1e-5).collect();
        let data: Vec<u8> = vals
            .iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect();
        let size = roundtrip_component(&Rare::<4>, &data);
        assert!(
            size < data.len(),
            "shared upper bits must shrink: {size} vs {}",
            data.len()
        );
    }

    #[test]
    fn raze_compresses_zero_upper_bits() {
        // Small positive values: upper bits are all zero.
        let vals: Vec<u32> = (0..4096).map(|i| i % 500).collect();
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let size = roundtrip_component(&Raze::<4>, &data);
        assert!(size < data.len() / 2, "{size} vs {}", data.len());
    }

    #[test]
    fn choose_k_prefers_large_k_on_constant_uppers() {
        // All words share their top 24 bits while their low bytes look
        // random (an LCG), so kept(k) stays 1 up to k = 24 and roughly
        // doubles at k = 25 → the cost minimum sits exactly at 24.
        let mut x = 17u64;
        let vals: Vec<u64> = (0..256u64)
            .map(|_| {
                x = (x.wrapping_mul(1103515245).wrapping_add(12345)) >> 3;
                0xABCDEF00 | (x & 0xFF)
            })
            .collect();
        let (k, kept) = choose_k(&vals, 32, Upper::Repeat);
        assert_eq!(k, 24);
        assert_eq!(kept, 1);
    }

    #[test]
    fn choose_k_zero_variant() {
        // Values < 2^10 → top 22 bits zero.
        let vals: Vec<u64> = (0..512u64).map(|i| i * 2 % 1024).collect();
        let (k, _) = choose_k(&vals, 32, Upper::Zero);
        assert_eq!(k, 22);
    }

    #[test]
    fn clz_width_edges() {
        assert_eq!(clz_width(0, 8), 8);
        assert_eq!(clz_width(1, 8), 7);
        assert_eq!(clz_width(0x80, 8), 0);
        assert_eq!(clz_width(0, 64), 64);
        assert_eq!(clz_width(u64::MAX, 64), 0);
    }

    #[test]
    fn incompressible_data_expands() {
        let vals: Vec<u32> = (0..1000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert!(roundtrip_component(&Rare::<4>, &data) > data.len() * 9 / 10);
    }

    #[test]
    fn decode_rejects_bad_k() {
        let data: Vec<u8> = (0..64).collect();
        let mut enc = Vec::new();
        Rare::<4>.encode_chunk(&data, &mut enc, &mut KernelStats::new());
        // Frame: varint(16)=1 byte + tail_len(0)=1 byte → k at offset 2.
        enc[2] = 0;
        assert!(Rare::<4>
            .decode_chunk(&enc, &mut Vec::new(), &mut KernelStats::new())
            .is_err());
        enc[2] = 33; // > 32 bits
        assert!(Rare::<4>
            .decode_chunk(&enc, &mut Vec::new(), &mut KernelStats::new())
            .is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let vals: Vec<u32> = (0..512).map(|i| i % 100).collect();
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut enc = Vec::new();
        Raze::<4>.encode_chunk(&data, &mut enc, &mut KernelStats::new());
        for cut in [0usize, 1, 2, 3, 10, enc.len() / 2, enc.len() - 1] {
            assert!(
                Raze::<4>
                    .decode_chunk(&enc[..cut], &mut Vec::new(), &mut KernelStats::new())
                    .is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn adaptive_encode_costs_more_ops_than_plain_rre() {
        use crate::reducers::rre::Rre;
        let vals: Vec<u32> = (0..4096).map(|i| i % 77).collect();
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut s_rare = KernelStats::new();
        Rare::<4>.encode_chunk(&data, &mut Vec::new(), &mut s_rare);
        let mut s_rre = KernelStats::new();
        Rre::<4>.encode_chunk(&data, &mut Vec::new(), &mut s_rre);
        assert!(
            s_rare.thread_ops > s_rre.thread_ops,
            "adaptivity costs work"
        );
        assert!(s_rare.scan_steps > s_rre.scan_steps);
    }
}
