//! CLOG and HCLOG: leading-zero width packing (paper §3.2.4).
//!
//! CLOG breaks each chunk into 32 subchunks, finds the smallest number of
//! leading zero bits across all values of a subchunk, records the
//! remaining bit-width per subchunk, and stores only those bits of every
//! value. HCLOG additionally applies the TCMS transformation to any
//! subchunk that yields no leading zero bits under plain CLOG, which
//! rescues subchunks of small-magnitude *negative* values (whose sign bits
//! defeat CLOG); a per-subchunk flag bit records the choice.
//!
//! Body layout after the shared reducer frame:
//!
//! ```text
//! u8 × 32      bit widths per subchunk (0..=8·W)
//! u8 × 4       HCLOG only: TCMS flag bit per subchunk
//! bits         values, subchunk-major, width_j bits each, MSB-first
//! ```

use lc_core::{
    Complexity, Component, ComponentKind, Contract, DecodeError, ExpansionBound, KernelStats,
    SpanClass, WorkClass,
};

use super::{read_frame, write_frame};
use crate::util::bitpack::{BitReader, BitWriter};
use crate::util::codec;
use crate::util::words;

/// Number of subchunks a chunk is split into (paper §3.2.4).
pub const SUBCHUNKS: usize = 32;

/// Word range of subchunk `j` when splitting `n` words into
/// [`SUBCHUNKS`] nearly-equal parts (first `n % SUBCHUNKS` parts get one
/// extra word).
pub(crate) fn subchunk_range(j: usize, n: usize) -> std::ops::Range<usize> {
    let q = n / SUBCHUNKS;
    let r = n % SUBCHUNKS;
    let start = j * q + j.min(r);
    let len = q + usize::from(j < r);
    start..start + len
}

fn width_of(max: u64, bits: u32) -> u32 {
    if max == 0 {
        0
    } else {
        bits - (max << (64 - bits)).leading_zeros()
    }
}

fn account_encode(stats: &mut KernelStats, n: usize, in_len: usize, out_len: usize, ops: u64) {
    stats.words += n as u64;
    stats.thread_ops += n as u64 * ops;
    stats.global_reads += in_len as u64;
    stats.global_writes += out_len as u64;
    stats.shared_traffic += (in_len + out_len) as u64;
    // Max-reduction within each subchunk: a fixed-depth tree (the subchunk
    // size is bounded by chunk/32), modeled as warp-level reduction steps.
    stats.warp_shuffles += (n as u64).div_ceil(32) * 5;
    stats.block_syncs += 2;
}

macro_rules! clog_like {
    ($name:ident, $prefix:literal, $hybrid:literal) => {
        #[doc = concat!($prefix, " at a const word size; see the module docs.")]
        pub struct $name<const W: usize>;

        impl<const W: usize> Component for $name<W> {
            fn name(&self) -> &'static str {
                match W {
                    1 => concat!($prefix, "_1"),
                    2 => concat!($prefix, "_2"),
                    4 => concat!($prefix, "_4"),
                    8 => concat!($prefix, "_8"),
                    _ => unreachable!("unsupported word size"),
                }
            }
            fn kind(&self) -> ComponentKind {
                ComponentKind::Reducer
            }
            fn word_size(&self) -> usize {
                W
            }
            fn complexity(&self) -> Complexity {
                // Θ(n) work, Θ(1) span in both directions (paper Table 2).
                Complexity::new(
                    WorkClass::N,
                    SpanClass::Const,
                    WorkClass::N,
                    SpanClass::Const,
                )
            }
            fn contract(&self) -> Contract {
                // Packed widths never exceed the word width, so the body
                // is at most n·W bytes (+1 padding); the fixed header is
                // 32 width bytes (+4 HCLOG flag bytes) and the frame adds
                // ≤ W + 3. Declared as max_bytes(len) = len + 64.
                Contract::reducer(W, ExpansionBound::affine(1, 1, 64))
            }
            fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
                encode::<W>(input, out, stats, $hybrid);
            }
            fn decode_chunk(
                &self,
                input: &[u8],
                out: &mut Vec<u8>,
                stats: &mut KernelStats,
            ) -> Result<(), DecodeError> {
                decode::<W>(input, out, stats, $hybrid)
            }
        }
    };
}

clog_like!(Clog, "CLOG", false);
clog_like!(Hclog, "HCLOG", true);

fn encode<const W: usize>(input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats, hybrid: bool) {
    let n = write_frame::<W>(input, out);
    if n == 0 {
        account_encode(stats, 0, input.len(), out.len(), 0);
        return;
    }
    let bits = words::bits::<W>();
    let vals = words::to_vec::<W>(input);

    // Pass 1: per-subchunk widths (and, for HCLOG, the TCMS fallback).
    let mut widths = [0u8; SUBCHUNKS];
    let mut flags = [false; SUBCHUNKS];
    for j in 0..SUBCHUNKS {
        let r = subchunk_range(j, n);
        let max = vals[r.clone()].iter().copied().max().unwrap_or(0);
        let mut w = width_of(max, bits);
        if hybrid && w == bits {
            // No leading zeros: try magnitude-sign, which shrinks
            // sign-extended negatives (paper §3.2.4).
            let max_ms = vals[r]
                .iter()
                .map(|&v| codec::to_magnitude_sign::<W>(v))
                .max()
                .unwrap_or(0);
            let w_ms = width_of(max_ms, bits);
            if w_ms < w {
                flags[j] = true;
                w = w_ms;
            }
        }
        widths[j] = w as u8;
    }
    out.extend_from_slice(&widths);
    if hybrid {
        let mut flag_bytes = [0u8; 4];
        for (j, &f) in flags.iter().enumerate() {
            if f {
                flag_bytes[j / 8] |= 1 << (j % 8);
            }
        }
        out.extend_from_slice(&flag_bytes);
    }

    // Pass 2: pack the surviving low bits, subchunk-major.
    let mut writer = BitWriter::new(out);
    for j in 0..SUBCHUNKS {
        let width = u32::from(widths[j]);
        for &v in &vals[subchunk_range(j, n)] {
            let v = if flags[j] {
                codec::to_magnitude_sign::<W>(v)
            } else {
                v
            };
            writer.put(v, width);
        }
    }
    writer.finish();
    let ops = if hybrid { 6 } else { 3 };
    account_encode(stats, n, input.len(), out.len(), ops);
    // No Θ(log n) compaction scan here: output positions derive from a
    // constant-size (32-entry) width prefix, so CLOG/HCLOG keep the Θ(1)
    // encode span of paper Table 2.
}

fn decode<const W: usize>(
    input: &[u8],
    out: &mut Vec<u8>,
    stats: &mut KernelStats,
    hybrid: bool,
) -> Result<(), DecodeError> {
    let frame = read_frame::<W>(input)?;
    let n = frame.n_words;
    let bits = words::bits::<W>();
    let mut pos = frame.body;
    if n == 0 {
        if pos != input.len() {
            return Err(DecodeError::Corrupt {
                context: "CLOG trailing bytes",
            });
        }
        out.extend_from_slice(frame.tail);
        return Ok(());
    }
    if pos + SUBCHUNKS > input.len() {
        return Err(DecodeError::Truncated {
            context: "CLOG widths",
        });
    }
    let widths = &input[pos..pos + SUBCHUNKS];
    pos += SUBCHUNKS;
    let mut flags = [false; SUBCHUNKS];
    if hybrid {
        if pos + 4 > input.len() {
            return Err(DecodeError::Truncated {
                context: "HCLOG flags",
            });
        }
        for j in 0..SUBCHUNKS {
            flags[j] = input[pos + j / 8] & (1 << (j % 8)) != 0;
        }
        pos += 4;
    }
    let mut reader = BitReader::new(&input[pos..]);
    out.reserve(n * W + frame.tail.len());
    for j in 0..SUBCHUNKS {
        let width = u32::from(widths[j]);
        if width > bits {
            return Err(DecodeError::Corrupt {
                context: "CLOG width exceeds word",
            });
        }
        for _ in subchunk_range(j, n) {
            let v = reader.get(width)?;
            let v = if flags[j] {
                codec::from_magnitude_sign::<W>(v)
            } else {
                v
            };
            words::put::<W>(out, v);
        }
    }
    out.extend_from_slice(frame.tail);
    stats.words += n as u64;
    stats.thread_ops += n as u64 * if hybrid { 4 } else { 2 };
    stats.global_reads += input.len() as u64;
    stats.global_writes += out.len() as u64;
    stats.shared_traffic += (n * W) as u64;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lc_core::verify::roundtrip_component;

    fn float_bytes(vals: &[f32]) -> Vec<u8> {
        vals.iter()
            .flat_map(|v| v.to_bits().to_le_bytes())
            .collect()
    }

    #[test]
    fn subchunk_ranges_tile() {
        for n in [0usize, 1, 31, 32, 33, 100, 4096, 16384] {
            let mut covered = 0;
            for j in 0..SUBCHUNKS {
                let r = subchunk_range(j, n);
                assert_eq!(r.start, covered, "n={n} j={j}");
                covered = r.end;
            }
            assert_eq!(covered, n, "n={n}");
        }
    }

    #[test]
    fn width_of_edges() {
        assert_eq!(width_of(0, 32), 0);
        assert_eq!(width_of(1, 32), 1);
        assert_eq!(width_of(255, 8), 8);
        assert_eq!(width_of(u64::MAX, 64), 64);
        assert_eq!(width_of(0x8000_0000, 32), 32);
    }

    #[test]
    fn clog_roundtrips() {
        for len in [0usize, 1, 5, 64, 100, 1000, 16384] {
            let data: Vec<u8> = (0..len).map(|i| ((i * 31) % 256) as u8).collect();
            roundtrip_component(&Clog::<1>, &data);
            roundtrip_component(&Clog::<2>, &data);
            roundtrip_component(&Clog::<4>, &data);
            roundtrip_component(&Clog::<8>, &data);
            roundtrip_component(&Hclog::<1>, &data);
            roundtrip_component(&Hclog::<2>, &data);
            roundtrip_component(&Hclog::<4>, &data);
            roundtrip_component(&Hclog::<8>, &data);
        }
    }

    #[test]
    fn clog_compresses_leading_zeros() {
        // Small u32 values: at most 10 bits each → ~3.2× compression.
        let vals: Vec<u32> = (0..4096).map(|i| i % 1000).collect();
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let size = roundtrip_component(&Clog::<4>, &data);
        assert!(size < data.len() / 2, "{size} vs {}", data.len());
    }

    #[test]
    fn clog_does_not_compress_random_bits() {
        let data: Vec<u8> = (0..4096)
            .map(|i| (((i * 2654435761u64) >> 13) & 0xFF) as u8)
            .collect();
        let size = roundtrip_component(&Clog::<4>, &data);
        assert!(size >= data.len(), "full-width values cannot shrink");
    }

    #[test]
    fn hclog_beats_clog_on_negative_values() {
        // Small-magnitude negatives: sign extension gives CLOG nothing,
        // TCMS maps them to small codes.
        let vals: Vec<i32> = (0..4096i32).map(|i| -(i % 100) - 1).collect();
        let data: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let clog_size = roundtrip_component(&Clog::<4>, &data);
        let hclog_size = roundtrip_component(&Hclog::<4>, &data);
        assert!(
            hclog_size < clog_size,
            "HCLOG {hclog_size} vs CLOG {clog_size}"
        );
        assert!(hclog_size < data.len());
    }

    #[test]
    fn clog_on_smooth_floats_after_nothing_is_modest() {
        // Raw floats all share high exponent bits but CLOG sees full-width
        // values; it should survive round-trip regardless.
        let vals: Vec<f32> = (0..2048).map(|i| 1.0 + i as f32 * 1e-4).collect();
        roundtrip_component(&Clog::<4>, &float_bytes(&vals));
        roundtrip_component(&Hclog::<4>, &float_bytes(&vals));
    }

    #[test]
    fn decode_rejects_bad_width() {
        let data: Vec<u8> = (0..64).collect();
        let mut enc = Vec::new();
        Clog::<4>.encode_chunk(&data, &mut enc, &mut KernelStats::new());
        // Corrupt a width byte to an impossible value.
        // Frame: varint(16) = 1 byte, tail_len byte, no tail → widths at 2.
        enc[2] = 99;
        let mut out = Vec::new();
        assert!(Clog::<4>
            .decode_chunk(&enc, &mut out, &mut KernelStats::new())
            .is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let data: Vec<u8> = (0..=255).collect();
        let mut enc = Vec::new();
        Clog::<4>.encode_chunk(&data, &mut enc, &mut KernelStats::new());
        for cut in [0, 1, 2, 10, enc.len() - 1] {
            let mut out = Vec::new();
            assert!(
                Clog::<4>
                    .decode_chunk(&enc[..cut], &mut out, &mut KernelStats::new())
                    .is_err(),
                "cut={cut}"
            );
        }
    }
}
