//! Mark-bitmap kernels for the repetition-removing reducers (RRE, RZE).
//!
//! Both reducers classify every word of a chunk — "repeats the prior
//! word" (RRE) or "is zero" (RZE) — into an LSB-first bitmap
//! (`bm[i/8] & (1 << (i%8))`, set = removed), then emit only the
//! unmarked survivors. Classification is a pure compare, which SIMD does
//! 16–32 words at a time: `cmpeq` against either a zero register or a
//! one-word-shifted load, then `movemask` to compress the lane masks
//! into bitmap bits — the movemask bit order is exactly the LSB-first
//! convention the serialized format already uses, so the vector path
//! produces the stored bytes directly.

use super::Variant;

/// Which property marks a word for removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// Word equals its predecessor (word 0 is never marked) — RRE.
    RepeatsPrior,
    /// Word is all-zero — RZE.
    IsZero,
}

impl Mark {
    /// Both marks, for the differential tests.
    pub const ALL: [Mark; 2] = [Mark::RepeatsPrior, Mark::IsZero];
}

/// Portable reference: mark words `from..to` of `src` into `bm`.
///
/// Word equality is LE byte-slice equality, so no word loads are needed.
fn portable_mark<const W: usize>(mk: Mark, src: &[u8], bm: &mut [u8], from: usize, to: usize) {
    for i in from..to {
        let marked = match mk {
            Mark::IsZero => src[i * W..(i + 1) * W].iter().all(|&b| b == 0),
            Mark::RepeatsPrior => i > 0 && src[i * W..(i + 1) * W] == src[(i - 1) * W..i * W],
        };
        if marked {
            bm[i / 8] |= 1 << (i % 8);
        }
    }
}

/// Which tier bitmap dispatch resolves to for this word size.
pub fn variant<const W: usize>() -> Variant {
    #[cfg(target_arch = "x86_64")]
    {
        let t = super::tier();
        // 16-bit lanes have no single-instruction 256-bit movemask path;
        // W = 2 caps at SSE2 (cmpeq_epi16 + packs + movemask_epi8).
        let t = if W == 2 { t.min(Variant::Sse2) } else { t };
        if t >= Variant::Sse2 {
            return t;
        }
    }
    Variant::Scalar
}

/// Append the mark bitmap for the words of `src` (`src.len()` must be a
/// multiple of `W`; `(n+7)/8` bytes, LSB-first) to `bm`. Returns the
/// number of *kept* (unmarked, surviving) words.
pub fn build<const W: usize>(mk: Mark, src: &[u8], bm: &mut Vec<u8>) -> usize {
    build_with::<W>(variant::<W>(), mk, src, bm)
}

/// [`build`] pinned to a tier (clamped to the detected CPU).
pub fn build_with<const W: usize>(v: Variant, mk: Mark, src: &[u8], bm: &mut Vec<u8>) -> usize {
    let n = src.len() / W;
    debug_assert_eq!(src.len(), n * W, "src must be whole words");
    let start = bm.len();
    bm.resize(start + n.div_ceil(8), 0);
    let bmr = &mut bm[start..];
    // safety: tier clamped to CPUID detection before calling
    // `#[target_feature]` bodies.
    #[cfg(target_arch = "x86_64")]
    let (covered_from, covered_to) = {
        let v = v.min(super::detected());
        let v = if W == 2 { v.min(Variant::Sse2) } else { v };
        match v {
            Variant::Avx2 => unsafe { x86::mark_avx2::<W>(mk, src, bmr) },
            Variant::Sse2 => unsafe { x86::mark_sse2::<W>(mk, src, bmr) },
            Variant::Scalar => (0, 0),
        }
    };
    #[cfg(not(target_arch = "x86_64"))]
    let (covered_from, covered_to) = {
        let _ = v;
        (0, 0)
    };
    portable_mark::<W>(mk, src, bmr, 0, covered_from);
    portable_mark::<W>(mk, src, bmr, covered_to, n);
    n - bmr.iter().map(|b| b.count_ones() as usize).sum::<usize>()
}

/// Append every unmarked word of `src` to `out`, with byte-at-a-time
/// bitmap fast paths for all-kept (`0x00`) and all-removed (`0xFF`)
/// groups.
///
/// At `W = 4` on AVX2 the mixed-byte case — the common shape when a
/// reducer runs on predictor residuals, where zero and nonzero words
/// interleave — is a vpermd left-pack: one permutation per bitmap byte
/// compacts 8 dwords in a single shuffle instead of 8 branchy copies.
pub fn emit_survivors<const W: usize>(src: &[u8], bm: &[u8], out: &mut Vec<u8>) {
    let n = src.len() / W;
    debug_assert_eq!(src.len(), n * W, "src must be whole words");
    #[cfg(target_arch = "x86_64")]
    if W == 4 && super::tier() >= Variant::Avx2 && n >= 8 {
        let groups = n / 8;
        let start = out.len();
        // Worst case every word survives; truncate to what was written.
        out.resize(start + n * W, 0);
        // safety: tier() is clamped to the CPUID-detected tier, so AVX2
        // is available here.
        let written = unsafe { x86::emit4_avx2(src, &bm[..groups], &mut out[start..]) };
        out.truncate(start + written);
        for i in groups * 8..n {
            if bm[i / 8] & (1 << (i % 8)) == 0 {
                out.extend_from_slice(&src[i * 4..(i + 1) * 4]);
            }
        }
        return;
    }
    let mut i = 0usize;
    while i < n {
        if i.is_multiple_of(8) && i + 8 <= n {
            match bm[i / 8] {
                0x00 => {
                    out.extend_from_slice(&src[i * W..(i + 8) * W]);
                    i += 8;
                    continue;
                }
                0xFF => {
                    i += 8;
                    continue;
                }
                _ => {}
            }
        }
        if bm[i / 8] & (1 << (i % 8)) == 0 {
            out.extend_from_slice(&src[i * W..(i + 1) * W]);
        }
        i += 1;
    }
}

/// Vectorized inverse of [`emit_survivors`] for the `IsZero` mark at
/// `W = 4`: reconstruct whole 8-word groups, reading packed survivors
/// from `src` at `*pos` and appending marked lanes as zero. Stops
/// before any group whose 32-byte survivor load would pass the end of
/// `src` (the caller's scalar path finishes the job and owns all
/// truncation/corruption detection). Returns the number of words
/// emitted — always a multiple of 8 — with `*pos` advanced past the
/// survivors consumed.
pub fn expand_zero4(bm: &[u8], n: usize, src: &[u8], pos: &mut usize, out: &mut Vec<u8>) -> usize {
    #[cfg(target_arch = "x86_64")]
    if super::tier() >= Variant::Avx2 {
        let groups = n / 8;
        if groups == 0 {
            return 0;
        }
        let start = out.len();
        out.resize(start + groups * 32, 0);
        // safety: tier() is clamped to the CPUID-detected tier.
        let (words, consumed) =
            unsafe { x86::expand4_avx2(&bm[..groups], src, *pos, &mut out[start..]) };
        out.truncate(start + words * 4);
        *pos += consumed;
        return words;
    }
    let _ = (bm, n, src, pos, out);
    0
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Mark;
    use std::arch::x86_64::*;

    // ---- lane-mask → bitmap-bits helpers (one per word size) ----

    #[target_feature(enable = "sse2")]
    fn eq8(a: __m128i, b: __m128i) -> u32 {
        _mm_movemask_epi8(_mm_cmpeq_epi8(a, b)) as u32 // 16 bits
    }

    #[target_feature(enable = "sse2")]
    fn eq16(a: __m128i, b: __m128i) -> u32 {
        let m = _mm_packs_epi16(_mm_cmpeq_epi16(a, b), _mm_setzero_si128());
        _mm_movemask_epi8(m) as u32 & 0xFF // 8 bits
    }

    #[target_feature(enable = "sse2")]
    fn eq32(a: __m128i, b: __m128i) -> u32 {
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(a, b))) as u32 // 4 bits
    }

    #[target_feature(enable = "sse2")]
    fn eq64(a: __m128i, b: __m128i) -> u32 {
        // SSE2 has no cmpeq_epi64: compare 32-bit halves and AND each
        // half with its pair-swapped neighbor.
        let m = _mm_cmpeq_epi32(a, b);
        let m = _mm_and_si128(m, _mm_shuffle_epi32(m, 0b10_11_00_01));
        _mm_movemask_pd(_mm_castsi128_pd(m)) as u32 // 2 bits
    }

    /// SSE2 marker: 16-word groups, two bitmap bytes per group. Returns
    /// the word range `(from, to)` it covered (`(0, 0)` if none).
    #[target_feature(enable = "sse2")]
    pub(super) fn mark_sse2<const W: usize>(mk: Mark, src: &[u8], bm: &mut [u8]) -> (usize, usize) {
        let n = src.len() / W;
        let per = 16 / W; // words per 128-bit vector
                          // RepeatsPrior needs a load one word back; start a full group in
                          // so the shifted load stays in bounds (word 0 is portable's job).
        let start = match mk {
            Mark::IsZero => 0usize,
            Mark::RepeatsPrior => 16,
        };
        let zero = _mm_setzero_si128();
        let mut w = start;
        while w + 16 <= n {
            let mut bits: u32 = 0;
            let mut k = 0usize;
            while k < 16 {
                // safety: `cur` reads 16 bytes ending at `(w+k+per)*W ≤
                // n*W`; the RepeatsPrior load starts one word earlier and
                // `w+k ≥ 16` keeps it in bounds.
                unsafe {
                    let cur = _mm_loadu_si128(src.as_ptr().add((w + k) * W).cast());
                    let rhs = match mk {
                        Mark::IsZero => zero,
                        Mark::RepeatsPrior => {
                            _mm_loadu_si128(src.as_ptr().add((w + k - 1) * W).cast())
                        }
                    };
                    let m = match W {
                        1 => eq8(cur, rhs),
                        2 => eq16(cur, rhs),
                        4 => eq32(cur, rhs),
                        _ => eq64(cur, rhs),
                    };
                    bits |= m << k;
                }
                k += per;
            }
            bm[w / 8] = bits as u8;
            bm[w / 8 + 1] = (bits >> 8) as u8;
            w += 16;
        }
        if w == start {
            (0, 0)
        } else {
            (start, w)
        }
    }

    #[target_feature(enable = "avx2")]
    fn eq8x(a: __m256i, b: __m256i) -> u32 {
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)) as u32 // 32 bits
    }

    #[target_feature(enable = "avx2")]
    fn eq32x(a: __m256i, b: __m256i) -> u32 {
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(a, b))) as u32
        // 8 bits
    }

    #[target_feature(enable = "avx2")]
    fn eq64x(a: __m256i, b: __m256i) -> u32 {
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a, b))) as u32
        // 4 bits
    }

    /// For each bitmap byte, the vpermd control that left-packs the 8
    /// surviving (bit-clear) dwords to the front of the register.
    const fn pack_lut() -> [[u32; 8]; 256] {
        let mut lut = [[0u32; 8]; 256];
        let mut b = 0usize;
        while b < 256 {
            let mut idx = 0usize;
            let mut lane = 0usize;
            while lane < 8 {
                if b & (1 << lane) == 0 {
                    lut[b][idx] = lane as u32;
                    idx += 1;
                }
                lane += 1;
            }
            b += 1;
        }
        lut
    }

    static PACK_LUT: [[u32; 8]; 256] = pack_lut();

    /// For each bitmap byte, the vpermd control that scatters packed
    /// survivors back to their lanes: clear lane `l` reads survivor
    /// `popcount(clear bits below l)`; marked lanes are zeroed by
    /// [`KEEP_LUT`] afterwards, so their index is irrelevant.
    const fn expand_lut() -> [[u32; 8]; 256] {
        let mut lut = [[0u32; 8]; 256];
        let mut b = 0usize;
        while b < 256 {
            let mut next = 0u32;
            let mut lane = 0usize;
            while lane < 8 {
                if b & (1 << lane) == 0 {
                    lut[b][lane] = next;
                    next += 1;
                }
                lane += 1;
            }
            b += 1;
        }
        lut
    }

    static EXPAND_LUT: [[u32; 8]; 256] = expand_lut();

    /// All-ones for clear (surviving) lanes, zero for marked lanes.
    const fn keep_lut() -> [[u32; 8]; 256] {
        let mut lut = [[0u32; 8]; 256];
        let mut b = 0usize;
        while b < 256 {
            let mut lane = 0usize;
            while lane < 8 {
                if b & (1 << lane) == 0 {
                    lut[b][lane] = u32::MAX;
                }
                lane += 1;
            }
            b += 1;
        }
        lut
    }

    static KEEP_LUT: [[u32; 8]; 256] = keep_lut();

    /// AVX2 `IsZero` reconstruction for `W = 4`: per bitmap byte, load
    /// 32 bytes of packed survivors, permute them to their lanes, mask
    /// marked lanes to zero, and store the full group. Stops when fewer
    /// than 32 survivor bytes remain loadable. `out` must hold at least
    /// `bm.len() * 32` bytes; returns `(words_emitted, bytes_consumed)`.
    #[target_feature(enable = "avx2")]
    pub(super) fn expand4_avx2(
        bm: &[u8],
        src: &[u8],
        mut pos: usize,
        out: &mut [u8],
    ) -> (usize, usize) {
        debug_assert!(out.len() >= bm.len() * 32);
        let start_pos = pos;
        let mut emitted = 0usize;
        for &b in bm {
            if b == 0xFF {
                // safety: store writes 32 bytes at emitted*4; emitted ≤
                // (group index)*8 so the end stays ≤ bm.len()*32.
                unsafe {
                    _mm256_storeu_si256(
                        out.as_mut_ptr().add(emitted * 4).cast(),
                        _mm256_setzero_si256(),
                    );
                }
                emitted += 8;
                continue;
            }
            if pos + 32 > src.len() {
                break;
            }
            // safety: the load reads 32 bytes at pos, guarded above; the
            // store bound is the same as the 0xFF arm.
            unsafe {
                let v = _mm256_loadu_si256(src.as_ptr().add(pos).cast());
                let perm = _mm256_loadu_si256(EXPAND_LUT[b as usize].as_ptr().cast());
                let mask = _mm256_loadu_si256(KEEP_LUT[b as usize].as_ptr().cast());
                let r = _mm256_and_si256(_mm256_permutevar8x32_epi32(v, perm), mask);
                _mm256_storeu_si256(out.as_mut_ptr().add(emitted * 4).cast(), r);
            }
            pos += (8 - b.count_ones() as usize) * 4;
            emitted += 8;
        }
        (emitted, pos - start_pos)
    }

    /// AVX2 survivor emission for `W = 4`: per bitmap byte, permute the
    /// 8 dwords so survivors are contiguous, store all 32 bytes, and
    /// advance the cursor by the survivor count — no per-word branches.
    /// `out` must hold at least `bm.len() * 32` bytes; returns the bytes
    /// actually written (`kept * 4` over the covered groups).
    #[target_feature(enable = "avx2")]
    pub(super) fn emit4_avx2(src: &[u8], bm: &[u8], out: &mut [u8]) -> usize {
        debug_assert!(src.len() >= bm.len() * 32);
        debug_assert!(out.len() >= bm.len() * 32);
        let mut idx = 0usize;
        for (g, &b) in bm.iter().enumerate() {
            if b == 0xFF {
                continue;
            }
            // safety: the load reads 32 bytes at g*32, in bounds by the
            // src debug_assert. The store writes 32 bytes at idx; before
            // group g, idx ≤ g*32 (at most 8 dwords kept per group), so
            // idx + 32 ≤ (g+1)*32 ≤ out.len().
            unsafe {
                let v = _mm256_loadu_si256(src.as_ptr().add(g * 32).cast());
                let perm = _mm256_loadu_si256(PACK_LUT[b as usize].as_ptr().cast());
                let packed = _mm256_permutevar8x32_epi32(v, perm);
                _mm256_storeu_si256(out.as_mut_ptr().add(idx).cast(), packed);
            }
            idx += (8 - b.count_ones() as usize) * 4;
        }
        idx
    }

    /// AVX2 marker: 32-word groups, four bitmap bytes per group. `W = 2`
    /// is not implemented at this tier (dispatch demotes it to SSE2).
    #[target_feature(enable = "avx2")]
    pub(super) fn mark_avx2<const W: usize>(mk: Mark, src: &[u8], bm: &mut [u8]) -> (usize, usize) {
        if W == 2 {
            return (0, 0);
        }
        let n = src.len() / W;
        let per = 32 / W;
        let start = match mk {
            Mark::IsZero => 0usize,
            Mark::RepeatsPrior => 32,
        };
        let zero = _mm256_setzero_si256();
        let mut w = start;
        while w + 32 <= n {
            let mut bits: u32 = 0;
            let mut k = 0usize;
            while k < 32 {
                // safety: same bounds argument as `mark_sse2` with
                // 32-byte vectors and a 32-word lead-in.
                unsafe {
                    let cur = _mm256_loadu_si256(src.as_ptr().add((w + k) * W).cast());
                    let rhs = match mk {
                        Mark::IsZero => zero,
                        Mark::RepeatsPrior => {
                            _mm256_loadu_si256(src.as_ptr().add((w + k - 1) * W).cast())
                        }
                    };
                    let m = match W {
                        1 => eq8x(cur, rhs),
                        4 => eq32x(cur, rhs),
                        _ => eq64x(cur, rhs),
                    };
                    bits |= m << k;
                }
                k += per;
            }
            bm[w / 8..w / 8 + 4].copy_from_slice(&bits.to_le_bytes());
            w += 32;
        }
        if w == start {
            (0, 0)
        } else {
            (start, w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned(len: usize, mut s: u64) -> Vec<u8> {
        // Zero runs, repeats, and noise — exercises both marks.
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            match (s >> 60) & 3 {
                0 => v.extend(std::iter::repeat_n(0u8, (s as usize % 23) + 1)),
                1 => v.extend(std::iter::repeat_n((s >> 8) as u8, (s as usize % 17) + 1)),
                _ => v.extend_from_slice(&s.to_le_bytes()),
            }
        }
        v.truncate(len);
        v
    }

    fn check<const W: usize>() {
        for len_w in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 130] {
            let src = patterned(len_w * W, 0xB17_0000 + (len_w * 8 + W) as u64);
            for mk in Mark::ALL {
                let mut reference = Vec::new();
                let kept_ref = build_with::<W>(Variant::Scalar, mk, &src, &mut reference);
                for v in super::super::available() {
                    let mut bm = Vec::new();
                    let kept = build_with::<W>(v, mk, &src, &mut bm);
                    assert_eq!(bm, reference, "W={W} {mk:?} {v:?} len_w={len_w}");
                    assert_eq!(kept, kept_ref);
                    let mut survivors = Vec::new();
                    emit_survivors::<W>(&src, &bm, &mut survivors);
                    assert_eq!(survivors.len(), kept * W);
                }
            }
        }
    }

    #[test]
    fn all_tiers_agree() {
        check::<1>();
        check::<2>();
        check::<4>();
        check::<8>();
    }

    #[test]
    fn survivors_match_naive_filter() {
        let src = patterned(64 * 4, 99);
        let mut bm = Vec::new();
        build::<4>(Mark::IsZero, &src, &mut bm);
        let mut got = Vec::new();
        emit_survivors::<4>(&src, &bm, &mut got);
        let want: Vec<u8> = src
            .chunks_exact(4)
            .filter(|w| w.iter().any(|&b| b != 0))
            .flatten()
            .copied()
            .collect();
        assert_eq!(got, want);
    }
}
