//! TUPL shuffler kernels: AoS → SoA field (de)interleave.
//!
//! The portable path replaces the per-field `extend_from_slice` walk
//! with index arithmetic into a pre-sized destination. The pair
//! shufflers get explicit kernels — TUPL2_1 is the textbook
//! `pack`/`unpack` byte (de)interleave (SSE2 both directions), TUPL2_2
//! deinterleaves with a `pshufb` half-sort (SSSE3, reached at the AVX2
//! tier) and re-interleaves with `unpacklo/hi_epi16` (SSE2). The wider
//! tuples (K ∈ {4, 8}) are gather-shaped and stay portable.
//!
//! [`variant`] reports the strongest tier either direction dispatches
//! to for the (K, W) pair on this machine.

use super::Variant;

fn portable_encode_into<const K: usize, const W: usize>(
    src: &[u8],
    dst: &mut [u8],
    nt: usize,
    from: usize,
) {
    let tb = K * W;
    for field in 0..K {
        let base = field * nt * W;
        for t in from..nt {
            dst[base + t * W..base + (t + 1) * W]
                .copy_from_slice(&src[t * tb + field * W..t * tb + (field + 1) * W]);
        }
    }
}

fn portable_decode_into<const K: usize, const W: usize>(
    src: &[u8],
    dst: &mut [u8],
    nt: usize,
    from: usize,
) {
    let tb = K * W;
    for t in from..nt {
        for field in 0..K {
            let s = (field * nt + t) * W;
            dst[t * tb + field * W..t * tb + (field + 1) * W].copy_from_slice(&src[s..s + W]);
        }
    }
}

/// Which tier TUPL dispatch resolves to for this (tuple, word) shape.
pub fn variant<const K: usize, const W: usize>() -> Variant {
    #[cfg(target_arch = "x86_64")]
    {
        if K == 2 && (W == 1 || W == 2) {
            let t = super::tier();
            if t >= Variant::Sse2 {
                return t;
            }
        }
    }
    Variant::Scalar
}

/// AoS → SoA: append all field-0 words, then field-1, …, then the
/// incomplete trailing tuple verbatim.
pub fn encode<const K: usize, const W: usize>(input: &[u8], out: &mut Vec<u8>) -> Variant {
    let v = variant::<K, W>();
    encode_with::<K, W>(v, input, out);
    v
}

/// [`encode`] pinned to a tier (clamped to the detected CPU).
pub fn encode_with<const K: usize, const W: usize>(v: Variant, input: &[u8], out: &mut Vec<u8>) {
    let tb = K * W;
    let nt = input.len() / tb;
    let start = out.len();
    out.resize(start + nt * tb, 0);
    {
        let src = &input[..nt * tb];
        let dst = &mut out[start..];
        // safety: tier clamped to CPUID detection before calling
        // `#[target_feature]` bodies.
        #[cfg(target_arch = "x86_64")]
        let done = match v.min(super::detected()) {
            Variant::Avx2 => unsafe { x86::encode_avx2::<K, W>(src, dst, nt) },
            Variant::Sse2 => unsafe { x86::encode_sse2::<K, W>(src, dst, nt) },
            Variant::Scalar => 0,
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = {
            let _ = v;
            0
        };
        portable_encode_into::<K, W>(src, dst, nt, done);
    }
    out.extend_from_slice(&input[nt * tb..]);
}

/// SoA → AoS inverse of [`encode`].
pub fn decode<const K: usize, const W: usize>(input: &[u8], out: &mut Vec<u8>) -> Variant {
    let v = variant::<K, W>();
    decode_with::<K, W>(v, input, out);
    v
}

/// [`decode`] pinned to a tier (clamped to the detected CPU).
pub fn decode_with<const K: usize, const W: usize>(v: Variant, input: &[u8], out: &mut Vec<u8>) {
    let tb = K * W;
    let nt = input.len() / tb;
    let start = out.len();
    out.resize(start + nt * tb, 0);
    {
        let src = &input[..nt * tb];
        let dst = &mut out[start..];
        // safety: tier clamped to CPUID detection before calling
        // `#[target_feature]` bodies.
        #[cfg(target_arch = "x86_64")]
        let done = match v.min(super::detected()) {
            Variant::Avx2 | Variant::Sse2 => unsafe { x86::decode_sse2::<K, W>(src, dst, nt) },
            Variant::Scalar => 0,
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = {
            let _ = v;
            0
        };
        portable_decode_into::<K, W>(src, dst, nt, done);
    }
    out.extend_from_slice(&input[nt * tb..]);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// SSE2 deinterleave; returns tuples covered.
    #[target_feature(enable = "sse2")]
    pub(super) fn encode_sse2<const K: usize, const W: usize>(
        src: &[u8],
        dst: &mut [u8],
        nt: usize,
    ) -> usize {
        if K != 2 || W != 1 {
            return 0;
        }
        // TUPL2_1: 16 byte-pairs per iteration → 16 evens + 16 odds.
        let groups = nt / 16;
        let mask = _mm_set1_epi16(0x00FF);
        for g in 0..groups {
            // safety: loads read 32 bytes at `g*32 ≤ nt*2 - 32`; stores
            // write 16 bytes ending at `nt + g*16 + 16 ≤ 2·nt = dst.len()`.
            unsafe {
                let v0 = _mm_loadu_si128(src.as_ptr().add(g * 32).cast());
                let v1 = _mm_loadu_si128(src.as_ptr().add(g * 32 + 16).cast());
                let ev = _mm_packus_epi16(_mm_and_si128(v0, mask), _mm_and_si128(v1, mask));
                let od = _mm_packus_epi16(_mm_srli_epi16(v0, 8), _mm_srli_epi16(v1, 8));
                _mm_storeu_si128(dst.as_mut_ptr().add(g * 16).cast(), ev);
                _mm_storeu_si128(dst.as_mut_ptr().add(nt + g * 16).cast(), od);
            }
        }
        groups * 16
    }

    /// SSSE3 16-bit deinterleave (reached via the AVX2 tier).
    #[target_feature(enable = "ssse3")]
    fn encode22_ssse3(src: &[u8], dst: &mut [u8], nt: usize) -> usize {
        // TUPL2_2: 8 u16-pairs per iteration → 8 evens + 8 odds.
        let groups = nt / 8;
        let half_sort = _mm_set_epi8(15, 14, 11, 10, 7, 6, 3, 2, 13, 12, 9, 8, 5, 4, 1, 0);
        for g in 0..groups {
            // safety: loads read 32 bytes at `g*32 ≤ nt*4 - 32`; stores
            // write 16 bytes ending at `2·nt + g*16 + 16 ≤ 4·nt`.
            unsafe {
                let s0 =
                    _mm_shuffle_epi8(_mm_loadu_si128(src.as_ptr().add(g * 32).cast()), half_sort);
                let s1 = _mm_shuffle_epi8(
                    _mm_loadu_si128(src.as_ptr().add(g * 32 + 16).cast()),
                    half_sort,
                );
                _mm_storeu_si128(
                    dst.as_mut_ptr().add(g * 16).cast(),
                    _mm_unpacklo_epi64(s0, s1),
                );
                _mm_storeu_si128(
                    dst.as_mut_ptr().add(2 * nt + g * 16).cast(),
                    _mm_unpackhi_epi64(s0, s1),
                );
            }
        }
        groups * 8
    }

    /// AVX2-tier encode: adds the SSSE3 TUPL2_2 kernel on top of SSE2.
    #[target_feature(enable = "avx2")]
    pub(super) fn encode_avx2<const K: usize, const W: usize>(
        src: &[u8],
        dst: &mut [u8],
        nt: usize,
    ) -> usize {
        if K == 2 && W == 2 {
            return encode22_ssse3(src, dst, nt);
        }
        encode_sse2::<K, W>(src, dst, nt)
    }

    /// SSE2 re-interleave for both pair shapes; returns tuples covered.
    #[target_feature(enable = "sse2")]
    pub(super) fn decode_sse2<const K: usize, const W: usize>(
        src: &[u8],
        dst: &mut [u8],
        nt: usize,
    ) -> usize {
        if K != 2 || (W != 1 && W != 2) {
            return 0;
        }
        // 16 bytes of each field region per iteration.
        let per = 16 / W; // tuples per iteration × … = 16/W pairs
        let groups = nt / per;
        for g in 0..groups {
            // safety: loads read 16 bytes inside each `nt·W`-byte field
            // region; stores write 32 bytes ending at `g*32 + 32 ≤
            // nt·2W = dst.len()`.
            unsafe {
                let a = _mm_loadu_si128(src.as_ptr().add(g * 16).cast());
                let b = _mm_loadu_si128(src.as_ptr().add(nt * W + g * 16).cast());
                let (lo, hi) = if W == 1 {
                    (_mm_unpacklo_epi8(a, b), _mm_unpackhi_epi8(a, b))
                } else {
                    (_mm_unpacklo_epi16(a, b), _mm_unpackhi_epi16(a, b))
                };
                _mm_storeu_si128(dst.as_mut_ptr().add(g * 32).cast(), lo);
                _mm_storeu_si128(dst.as_mut_ptr().add(g * 32 + 16).cast(), hi);
            }
        }
        groups * per
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 131 + 17) % 256) as u8).collect()
    }

    fn naive_encode<const K: usize, const W: usize>(input: &[u8]) -> Vec<u8> {
        let tb = K * W;
        let nt = input.len() / tb;
        let mut out = Vec::new();
        for field in 0..K {
            for t in 0..nt {
                let s = t * tb + field * W;
                out.extend_from_slice(&input[s..s + W]);
            }
        }
        out.extend_from_slice(&input[nt * tb..]);
        out
    }

    fn check<const K: usize, const W: usize>() {
        let tb = K * W;
        for len in [
            0usize,
            1,
            tb,
            3 * tb + 1,
            15 * tb,
            16 * tb,
            17 * tb,
            40 * tb + 2,
            256 * tb,
        ] {
            let input = sample(len);
            let want = naive_encode::<K, W>(&input);
            for v in super::super::available() {
                let mut enc = Vec::new();
                encode_with::<K, W>(v, &input, &mut enc);
                assert_eq!(enc, want, "enc K={K} W={W} {v:?} len={len}");
                let mut dec = Vec::new();
                decode_with::<K, W>(v, &enc, &mut dec);
                assert_eq!(dec, input, "roundtrip K={K} W={W} {v:?} len={len}");
            }
        }
    }

    #[test]
    fn all_shapes_and_tiers_agree() {
        check::<2, 1>();
        check::<2, 2>();
        check::<4, 1>();
        check::<4, 2>();
        check::<8, 1>();
        check::<8, 4>();
    }
}
