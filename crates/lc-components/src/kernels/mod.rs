//! Vectorized inner-loop kernels with runtime CPUID dispatch.
//!
//! This module is the single audited home of every `unsafe` block in the
//! component library (an xtask lint enforces the confinement). Each
//! kernel family exposes:
//!
//! * a **portable** implementation — safe, autovectorization-shaped Rust
//!   that is also the semantic reference (Miri-clean by construction);
//! * optional **explicit SIMD** implementations (`std::arch` SSE2/AVX2)
//!   selected at runtime by CPUID detection;
//! * an `apply`-style dispatching entry point plus a `*_with(variant, …)`
//!   twin that forces a specific tier — the hook the differential tests
//!   use to prove every SIMD kernel bitwise-equal to its scalar twin;
//! * a `variant::<W>()` probe reporting which tier dispatch selects, so
//!   components can answer [`lc_core::Component::kernel_variant`] and the
//!   cost-attribution layer can tag `component.<name>.*` rows.
//!
//! # Dispatch model
//!
//! The selected tier is `min(detected, cap)` where `detected` comes from
//! `is_x86_feature_detected!` (cached) and `cap` defaults to the
//! `LC_KERNELS` environment variable (`scalar` | `sse2` | `avx2`; unset
//! means "no cap"). [`set_tier_cap`] lowers the cap at runtime — used by
//! the equivalence tests and by operators who need to pin the portable
//! path. On non-x86_64 targets everything resolves to
//! [`Variant::Scalar`].
//!
//! # Safety audit boundary
//!
//! All `unsafe` here is of exactly two shapes: (1) calling a
//! `#[target_feature]` function after the matching runtime detection, and
//! (2) unaligned vector loads/stores through raw pointers whose bounds
//! are checked by the surrounding loop (`i + STEP <= len`). Kernels never
//! allocate, never transmute, and write only into caller-provided slices
//! that are sized before the call. Everything else in the crate is
//! `#![deny(unsafe_code)]`-clean.
#![allow(unsafe_code)]

pub mod bitmap;
pub mod bitplane;
pub mod diff;
pub mod pointwise;
pub mod rle;
pub mod tuple;

pub use lc_core::KernelVariant as Variant;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Sentinel: the runtime cap has not been set, fall back to `LC_KERNELS`.
const CAP_UNSET: u8 = u8::MAX;

static CAP: AtomicU8 = AtomicU8::new(CAP_UNSET);
static ENV_CAP: OnceLock<Variant> = OnceLock::new();
static DETECTED: OnceLock<Variant> = OnceLock::new();

fn to_u8(v: Variant) -> u8 {
    match v {
        Variant::Scalar => 0,
        Variant::Sse2 => 1,
        Variant::Avx2 => 2,
    }
}

fn from_u8(v: u8) -> Variant {
    match v {
        0 => Variant::Scalar,
        1 => Variant::Sse2,
        _ => Variant::Avx2,
    }
}

/// Strongest tier the running CPU supports (cached CPUID probe).
fn detected() -> Variant {
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                Variant::Avx2
            } else if std::arch::is_x86_feature_detected!("sse2") {
                Variant::Sse2
            } else {
                Variant::Scalar
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Variant::Scalar
    })
}

/// Cap requested through the `LC_KERNELS` environment variable.
fn env_cap() -> Variant {
    *ENV_CAP.get_or_init(|| match std::env::var("LC_KERNELS").as_deref() {
        Ok("scalar") => Variant::Scalar,
        Ok("sse2") => Variant::Sse2,
        // Unset, "avx2", or anything unrecognized: no cap. An unknown
        // value must not silently disable SIMD in production.
        _ => Variant::Avx2,
    })
}

/// The kernel tier dispatch resolves to on this machine right now:
/// `min(detected CPU features, configured cap)`.
pub fn tier() -> Variant {
    let cap = match CAP.load(Ordering::Relaxed) {
        CAP_UNSET => env_cap(),
        v => from_u8(v),
    };
    detected().min(cap)
}

/// Cap the dispatch tier at runtime, overriding `LC_KERNELS`.
///
/// `set_tier_cap(Variant::Scalar)` forces every kernel onto the portable
/// path; `set_tier_cap(Variant::Avx2)` removes the cap (detection still
/// applies). Takes effect for all subsequent kernel calls process-wide.
pub fn set_tier_cap(cap: Variant) {
    CAP.store(to_u8(cap), Ordering::Relaxed);
}

/// Every tier currently reachable through dispatch, weakest first.
///
/// The differential tests iterate this list to compare each reachable
/// SIMD tier against the portable reference on the same inputs.
pub fn available() -> Vec<Variant> {
    let mut v = vec![Variant::Scalar];
    if tier() >= Variant::Sse2 {
        v.push(Variant::Sse2);
    }
    if tier() >= Variant::Avx2 {
        v.push(Variant::Avx2);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_never_exceeds_detection_and_cap_lowers_it() {
        let t = tier();
        assert!(t <= detected());
        set_tier_cap(Variant::Scalar);
        assert_eq!(tier(), Variant::Scalar);
        // set_tier_cap(Avx2) overrides LC_KERNELS entirely (docs above).
        set_tier_cap(Variant::Avx2);
        assert_eq!(tier(), detected());
        // Restore the env-derived default: other tests in this binary
        // dispatch, and an LC_KERNELS pin must keep applying to them.
        CAP.store(CAP_UNSET, Ordering::Relaxed);
        assert_eq!(tier(), detected().min(env_cap()));
    }

    #[test]
    fn available_is_monotone_from_scalar() {
        let avail = available();
        assert_eq!(avail[0], Variant::Scalar);
        for pair in avail.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
