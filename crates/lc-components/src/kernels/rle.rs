//! RLE scan helpers: record segmentation over a repeat bitmap, and
//! memset-shaped run replay for decode.
//!
//! The RLE encoder's two inner scans — "how long is the run at `i`" and
//! "where does the next run of ≥ 2 start" — become bit scans once the
//! neighbor-repeat bitmap exists (built 16–32 words at a time by
//! [`super::bitmap`]): a run of equal words is `1 +` the stretch of set
//! bits after its first word, and a literal region ends just before the
//! next set bit. These helpers are safe portable code; the SIMD content
//! of the RLE kernel family lives in the bitmap build, so
//! [`variant`] reports the bitmap kernel's tier.

use super::Variant;

/// Which tier the RLE encoder's bitmap scan dispatches to.
pub fn variant<const W: usize>() -> Variant {
    super::bitmap::variant::<W>()
}

/// Number of consecutive set bits in `bm` (LSB-first over `n` valid
/// bits) starting at `from`.
pub fn count_set_from(bm: &[u8], n: usize, from: usize) -> usize {
    let mut i = from;
    while i < n {
        let off = i % 8;
        let avail = (8 - off).min(n - i);
        let bits = bm[i / 8] >> off;
        let ones = (!bits).trailing_zeros() as usize;
        if ones >= avail {
            i += avail;
            if ones >= 8 - off {
                continue; // byte exhausted while still all-ones
            }
            break; // `n` ended mid-byte
        }
        i += ones;
        break;
    }
    i - from
}

/// Index of the first set bit at or after `from` (`n` when none).
pub fn next_set_bit(bm: &[u8], n: usize, from: usize) -> usize {
    let mut i = from;
    while i < n {
        let off = i % 8;
        let bits = bm[i / 8] >> off;
        if bits != 0 {
            let idx = i + bits.trailing_zeros() as usize;
            return idx.min(n);
        }
        i += 8 - off;
    }
    n
}

/// Append `count` copies of the `W`-byte word at `word[..W]` — the RLE
/// run replay, shaped as resize + fixed-width block copies so LLVM
/// lowers it to a wide fill instead of per-word `Vec` pushes.
pub fn fill_words<const W: usize>(word: &[u8], count: usize, out: &mut Vec<u8>) {
    let start = out.len();
    out.resize(start + count * W, 0);
    for d in out[start..].chunks_exact_mut(W) {
        d.copy_from_slice(&word[..W]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_count(bm: &[u8], n: usize, from: usize) -> usize {
        (from..n)
            .take_while(|&i| bm[i / 8] & (1 << (i % 8)) != 0)
            .count()
    }

    fn naive_next(bm: &[u8], n: usize, from: usize) -> usize {
        (from..n)
            .find(|&i| bm[i / 8] & (1 << (i % 8)) != 0)
            .unwrap_or(n)
    }

    #[test]
    fn bit_scans_match_naive() {
        let cases: &[&[u8]] = &[
            &[0x00, 0x00],
            &[0xFF, 0xFF, 0x0F],
            &[0b1010_1100, 0b0000_0111, 0xFF, 0x00, 0x80],
            &[0x01],
            &[0x80],
        ];
        for bm in cases {
            for n in [0, 1, 3, 7, 8, 9, bm.len() * 8] {
                if n > bm.len() * 8 {
                    continue;
                }
                for from in 0..=n {
                    assert_eq!(
                        count_set_from(bm, n, from),
                        naive_count(bm, n, from),
                        "count bm={bm:?} n={n} from={from}"
                    );
                    assert_eq!(
                        next_set_bit(bm, n, from),
                        naive_next(bm, n, from),
                        "next bm={bm:?} n={n} from={from}"
                    );
                }
            }
        }
    }

    #[test]
    fn fill_words_replays_runs() {
        let mut out = vec![9u8];
        fill_words::<4>(&[1, 2, 3, 4, 99], 3, &mut out);
        assert_eq!(out, vec![9, 1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]);
        fill_words::<1>(&[7], 4, &mut out);
        assert_eq!(&out[13..], &[7, 7, 7, 7]);
        fill_words::<2>(&[5, 6], 0, &mut out);
        assert_eq!(out.len(), 17);
    }
}
