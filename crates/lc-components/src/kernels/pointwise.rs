//! Pointwise word-map kernels: the mutator codecs (TCMS, TCNB, DBEFS,
//! DBESF) applied to every complete word of a chunk.
//!
//! The portable path applies the scalar codec from [`crate::util::codec`]
//! word by word into a pre-sized destination slice (no per-word `Vec`
//! growth), which LLVM autovectorizes for the shift/xor-only codecs. The
//! explicit SSE2/AVX2 kernels cover word sizes 2/4/8 (packed 8-bit lanes
//! have no hardware shifts, so `W = 1` stays portable) and are
//! bit-identical to the scalar codecs by the differential tests in
//! `tests/kernels_differential.rs`.

use super::Variant;
use crate::util::codec;

/// Which bijection to apply to each word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Two's complement → magnitude-sign (TCMS encode).
    TcmsEnc,
    /// Magnitude-sign → two's complement (TCMS decode).
    TcmsDec,
    /// Two's complement → negabinary (TCNB encode).
    TcnbEnc,
    /// Negabinary → two's complement (TCNB decode).
    TcnbDec,
    /// IEEE-754 (s,e,f) → (e−bias, f, s) (DBEFS encode).
    DbefsEnc,
    /// Inverse of `DbefsEnc`.
    DbefsDec,
    /// IEEE-754 (s,e,f) → (e−bias, s, f) (DBESF encode).
    DbesfEnc,
    /// Inverse of `DbesfEnc`.
    DbesfDec,
}

impl Op {
    /// Every op, for exhaustive differential testing.
    pub const ALL: [Op; 8] = [
        Op::TcmsEnc,
        Op::TcmsDec,
        Op::TcnbEnc,
        Op::TcnbDec,
        Op::DbefsEnc,
        Op::DbefsDec,
        Op::DbesfEnc,
        Op::DbesfDec,
    ];
}

/// The scalar codec for `op` — the semantic reference every vector body
/// must match bit for bit.
#[inline(always)]
fn scalar_op<const W: usize>(op: Op, v: u64) -> u64 {
    match op {
        Op::TcmsEnc => codec::to_magnitude_sign::<W>(v),
        Op::TcmsDec => codec::from_magnitude_sign::<W>(v),
        Op::TcnbEnc => codec::to_negabinary::<W>(v),
        Op::TcnbDec => codec::from_negabinary::<W>(v),
        Op::DbefsEnc => codec::dbefs_encode::<W>(v),
        Op::DbefsDec => codec::dbefs_decode::<W>(v),
        Op::DbesfEnc => codec::dbesf_encode::<W>(v),
        Op::DbesfDec => codec::dbesf_decode::<W>(v),
    }
}

/// Portable word map over equal-length word regions (`src.len()` =
/// `dst.len()`, both multiples of `W`).
fn portable_into<const W: usize>(op: Op, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    for (s, d) in src.chunks_exact(W).zip(dst.chunks_exact_mut(W)) {
        let mut b = [0u8; 8];
        b[..W].copy_from_slice(s);
        let r = scalar_op::<W>(op, u64::from_le_bytes(b));
        d.copy_from_slice(&r.to_le_bytes()[..W]);
    }
}

/// Which tier [`apply`] dispatches to for this word size on this machine.
pub fn variant<const W: usize>(_op: Op) -> Variant {
    #[cfg(target_arch = "x86_64")]
    {
        if W >= 2 {
            let t = super::tier();
            if t >= Variant::Avx2 {
                return Variant::Avx2;
            }
            if t >= Variant::Sse2 {
                return Variant::Sse2;
            }
        }
    }
    Variant::Scalar
}

/// Apply `op` to every complete `W`-byte word of `input`, appending the
/// mapped words and then the incomplete tail verbatim to `out`. Returns
/// the kernel variant that ran.
pub fn apply<const W: usize>(op: Op, input: &[u8], out: &mut Vec<u8>) -> Variant {
    let v = variant::<W>(op);
    apply_with::<W>(v, op, input, out);
    v
}

/// [`apply`] pinned to a specific tier (differential-test hook).
///
/// Requests above the detected CPU tier are clamped, so this is safe to
/// call with any variant on any machine.
pub fn apply_with<const W: usize>(v: Variant, op: Op, input: &[u8], out: &mut Vec<u8>) {
    let n = input.len() / W;
    let start = out.len();
    out.resize(start + n * W, 0);
    {
        let src = &input[..n * W];
        let dst = &mut out[start..];
        #[cfg(target_arch = "x86_64")]
        let done = {
            // safety: the requested tier is clamped to the CPUID-detected
            // tier, so the `#[target_feature]` bodies only run on CPUs
            // that support them.
            match v.min(super::detected()) {
                Variant::Avx2 => unsafe { x86::avx2::run::<W>(op, src, dst) },
                Variant::Sse2 => unsafe { x86::sse2::run::<W>(op, src, dst) },
                Variant::Scalar => 0,
            }
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = {
            let _ = v;
            0
        };
        portable_into::<W>(op, &src[done..], &mut dst[done..]);
    }
    out.extend_from_slice(&input[n * W..]);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! One module per ISA tier, generated from the same template: the
    //! SSE2 and AVX2 bodies are op-for-op identical, differing only in
    //! register width and intrinsic prefix.

    macro_rules! pointwise_isa {
        (
            $modname:ident, $feature:literal, $vec:ty, $step:expr,
            $loadu:ident, $storeu:ident, $setzero:ident,
            $set1_epi16:ident, $set1_epi32:ident, $set1_epi64x:ident,
            $add16:ident, $sub16:ident, $slli16:ident, $srli16:ident, $srai16:ident,
            $add32:ident, $sub32:ident, $slli32:ident, $srli32:ident,
            $add64:ident, $sub64:ident, $slli64:ident, $srli64:ident,
            $and:ident, $or:ident, $xor:ident
        ) => {
            pub(crate) mod $modname {
                use super::super::Op;
                use std::arch::x86_64::*;

                /// Map whole `$step`-byte blocks of `src` into `dst`;
                /// returns bytes processed (the caller finishes the
                /// remainder on the portable path).
                #[target_feature(enable = $feature)]
                fn map(src: &[u8], dst: &mut [u8], f: impl Fn($vec) -> $vec) -> usize {
                    debug_assert!(dst.len() >= src.len());
                    let mut i = 0usize;
                    while i + $step <= src.len() {
                        // safety: the loop condition bounds the load at
                        // `i..i+$step` within `src`; `dst` is at least as
                        // long as `src`, bounding the store.
                        unsafe {
                            let v = $loadu(src.as_ptr().add(i).cast());
                            $storeu(dst.as_mut_ptr().add(i).cast(), f(v));
                        }
                        i += $step;
                    }
                    i
                }

                /// Vector bodies for every supported `(W, op)` pair;
                /// returns 0 when this tier has no kernel for the pair.
                #[target_feature(enable = $feature)]
                pub(crate) fn run<const W: usize>(op: Op, src: &[u8], dst: &mut [u8]) -> usize {
                    match (W, op) {
                        // ---- 16-bit lanes -------------------------------
                        (2, Op::TcmsEnc) => map(src, dst, |v| $xor($slli16(v, 1), $srai16(v, 15))),
                        (2, Op::TcmsDec) => {
                            let one = $set1_epi16(1);
                            let zero = $setzero();
                            map(src, dst, move |v| {
                                $xor($srli16(v, 1), $sub16(zero, $and(v, one)))
                            })
                        }
                        (2, Op::TcnbEnc) => {
                            let m = $set1_epi16(0xAAAAu16 as i16);
                            map(src, dst, move |v| $xor($add16(v, m), m))
                        }
                        (2, Op::TcnbDec) => {
                            let m = $set1_epi16(0xAAAAu16 as i16);
                            map(src, dst, move |v| $sub16($xor(v, m), m))
                        }
                        // ---- 32-bit lanes -------------------------------
                        (4, Op::TcmsEnc) => {
                            let zero = $setzero();
                            map(src, dst, move |v| {
                                // No 32-bit srai needed: sign mask via 0 − (v >> 31).
                                let sign = $sub32(zero, $srli32(v, 31));
                                $xor($slli32(v, 1), sign)
                            })
                        }
                        (4, Op::TcmsDec) => {
                            let one = $set1_epi32(1);
                            let zero = $setzero();
                            map(src, dst, move |v| {
                                $xor($srli32(v, 1), $sub32(zero, $and(v, one)))
                            })
                        }
                        (4, Op::TcnbEnc) => {
                            let m = $set1_epi32(0xAAAA_AAAAu32 as i32);
                            map(src, dst, move |v| $xor($add32(v, m), m))
                        }
                        (4, Op::TcnbDec) => {
                            let m = $set1_epi32(0xAAAA_AAAAu32 as i32);
                            map(src, dst, move |v| $sub32($xor(v, m), m))
                        }
                        (4, Op::DbefsEnc) => {
                            let fmask = $set1_epi32(0x007F_FFFF);
                            let emask = $set1_epi32(0xFF);
                            let bias = $set1_epi32(127);
                            map(src, dst, move |v| {
                                let s = $srli32(v, 31);
                                let f = $and(v, fmask);
                                let e_db = $and($sub32($srli32(v, 23), bias), emask);
                                $or($or($slli32(e_db, 24), $slli32(f, 1)), s)
                            })
                        }
                        (4, Op::DbefsDec) => {
                            let fmask = $set1_epi32(0x007F_FFFF);
                            let emask = $set1_epi32(0xFF);
                            let bias = $set1_epi32(127);
                            let one = $set1_epi32(1);
                            map(src, dst, move |v| {
                                let s = $and(v, one);
                                let f = $and($srli32(v, 1), fmask);
                                let e = $and($add32($srli32(v, 24), bias), emask);
                                $or($or($slli32(s, 31), $slli32(e, 23)), f)
                            })
                        }
                        (4, Op::DbesfEnc) => {
                            let fmask = $set1_epi32(0x007F_FFFF);
                            let emask = $set1_epi32(0xFF);
                            let bias = $set1_epi32(127);
                            map(src, dst, move |v| {
                                let s = $srli32(v, 31);
                                let f = $and(v, fmask);
                                let e_db = $and($sub32($srli32(v, 23), bias), emask);
                                $or($or($slli32(e_db, 24), $slli32(s, 23)), f)
                            })
                        }
                        (4, Op::DbesfDec) => {
                            let fmask = $set1_epi32(0x007F_FFFF);
                            let emask = $set1_epi32(0xFF);
                            let bias = $set1_epi32(127);
                            let one = $set1_epi32(1);
                            map(src, dst, move |v| {
                                let f = $and(v, fmask);
                                let s = $and($srli32(v, 23), one);
                                let e = $and($add32($srli32(v, 24), bias), emask);
                                $or($or($slli32(s, 31), $slli32(e, 23)), f)
                            })
                        }
                        // ---- 64-bit lanes -------------------------------
                        (8, Op::TcmsEnc) => {
                            let zero = $setzero();
                            map(src, dst, move |v| {
                                let sign = $sub64(zero, $srli64(v, 63));
                                $xor($slli64(v, 1), sign)
                            })
                        }
                        (8, Op::TcmsDec) => {
                            let one = $set1_epi64x(1);
                            let zero = $setzero();
                            map(src, dst, move |v| {
                                $xor($srli64(v, 1), $sub64(zero, $and(v, one)))
                            })
                        }
                        (8, Op::TcnbEnc) => {
                            let m = $set1_epi64x(0xAAAA_AAAA_AAAA_AAAAu64 as i64);
                            map(src, dst, move |v| $xor($add64(v, m), m))
                        }
                        (8, Op::TcnbDec) => {
                            let m = $set1_epi64x(0xAAAA_AAAA_AAAA_AAAAu64 as i64);
                            map(src, dst, move |v| $sub64($xor(v, m), m))
                        }
                        (8, Op::DbefsEnc) => {
                            let fmask = $set1_epi64x((1i64 << 52) - 1);
                            let emask = $set1_epi64x(0x7FF);
                            let bias = $set1_epi64x(1023);
                            map(src, dst, move |v| {
                                let s = $srli64(v, 63);
                                let f = $and(v, fmask);
                                let e_db = $and($sub64($srli64(v, 52), bias), emask);
                                $or($or($slli64(e_db, 53), $slli64(f, 1)), s)
                            })
                        }
                        (8, Op::DbefsDec) => {
                            let fmask = $set1_epi64x((1i64 << 52) - 1);
                            let emask = $set1_epi64x(0x7FF);
                            let bias = $set1_epi64x(1023);
                            let one = $set1_epi64x(1);
                            map(src, dst, move |v| {
                                let s = $and(v, one);
                                let f = $and($srli64(v, 1), fmask);
                                let e = $and($add64($srli64(v, 53), bias), emask);
                                $or($or($slli64(s, 63), $slli64(e, 52)), f)
                            })
                        }
                        (8, Op::DbesfEnc) => {
                            let fmask = $set1_epi64x((1i64 << 52) - 1);
                            let emask = $set1_epi64x(0x7FF);
                            let bias = $set1_epi64x(1023);
                            map(src, dst, move |v| {
                                let s = $srli64(v, 63);
                                let f = $and(v, fmask);
                                let e_db = $and($sub64($srli64(v, 52), bias), emask);
                                $or($or($slli64(e_db, 53), $slli64(s, 52)), f)
                            })
                        }
                        (8, Op::DbesfDec) => {
                            let fmask = $set1_epi64x((1i64 << 52) - 1);
                            let emask = $set1_epi64x(0x7FF);
                            let bias = $set1_epi64x(1023);
                            let one = $set1_epi64x(1);
                            map(src, dst, move |v| {
                                let f = $and(v, fmask);
                                let s = $and($srli64(v, 52), one);
                                let e = $and($add64($srli64(v, 53), bias), emask);
                                $or($or($slli64(s, 63), $slli64(e, 52)), f)
                            })
                        }
                        // W = 1 (no packed 8-bit shifts) and unknown pairs.
                        _ => 0,
                    }
                }
            }
        };
    }

    pointwise_isa!(
        sse2,
        "sse2",
        __m128i,
        16,
        _mm_loadu_si128,
        _mm_storeu_si128,
        _mm_setzero_si128,
        _mm_set1_epi16,
        _mm_set1_epi32,
        _mm_set1_epi64x,
        _mm_add_epi16,
        _mm_sub_epi16,
        _mm_slli_epi16,
        _mm_srli_epi16,
        _mm_srai_epi16,
        _mm_add_epi32,
        _mm_sub_epi32,
        _mm_slli_epi32,
        _mm_srli_epi32,
        _mm_add_epi64,
        _mm_sub_epi64,
        _mm_slli_epi64,
        _mm_srli_epi64,
        _mm_and_si128,
        _mm_or_si128,
        _mm_xor_si128
    );

    pointwise_isa!(
        avx2,
        "avx2",
        __m256i,
        32,
        _mm256_loadu_si256,
        _mm256_storeu_si256,
        _mm256_setzero_si256,
        _mm256_set1_epi16,
        _mm256_set1_epi32,
        _mm256_set1_epi64x,
        _mm256_add_epi16,
        _mm256_sub_epi16,
        _mm256_slli_epi16,
        _mm256_srli_epi16,
        _mm256_srai_epi16,
        _mm256_add_epi32,
        _mm256_sub_epi32,
        _mm256_slli_epi32,
        _mm256_srli_epi32,
        _mm256_add_epi64,
        _mm256_sub_epi64,
        _mm256_slli_epi64,
        _mm256_srli_epi64,
        _mm256_and_si256,
        _mm256_or_si256,
        _mm256_xor_si256
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_appends_and_passes_tail_through() {
        let input: Vec<u8> = (0..19).collect(); // 4 u32 words + 3 tail bytes
        let mut out = vec![0xEE];
        apply::<4>(Op::TcmsEnc, &input, &mut out);
        assert_eq!(out.len(), 1 + input.len());
        assert_eq!(&out[17..], &input[16..]);
        assert_eq!(out[0], 0xEE);
    }

    #[test]
    fn scalar_matches_codec_reference() {
        let input: Vec<u8> = (0..64).map(|i| (i * 37 + 5) as u8).collect();
        for op in Op::ALL {
            let mut got = Vec::new();
            apply_with::<4>(Variant::Scalar, op, &input, &mut got);
            let mut want = Vec::new();
            for w in input.chunks_exact(4) {
                let v = u32::from_le_bytes(w.try_into().unwrap()) as u64;
                want.extend_from_slice(&scalar_op::<4>(op, v).to_le_bytes()[..4]);
            }
            assert_eq!(got, want, "{op:?}");
        }
    }
}
