//! DIFF predictor kernels: delta encoding with an optional residual
//! remap (plain, magnitude-sign, or negabinary — the DIFF / DIFFMS /
//! DIFFNB families).
//!
//! Encode is embarrassingly parallel — `d[i] = x[i] − x[i−1]` needs only
//! a one-word-shifted second load — so the SIMD encoders are plain
//! load/subtract/remap/store loops. Decode is a prefix sum; the SIMD
//! decoders use the classic log-step in-register scan (shift-and-add
//! within the vector, then a broadcast carry between vectors), which is
//! exactly associative because all lane arithmetic is modular. Word
//! sizes 4 and 8 get explicit kernels; 1 and 2 stay portable.

use super::Variant;
use crate::util::{codec, words};

/// Residual remap applied on top of the delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residual {
    /// Raw two's-complement delta (DIFF).
    Plain,
    /// Zigzag/magnitude-sign remap (DIFFMS).
    MagnitudeSign,
    /// Negabinary remap (DIFFNB).
    Negabinary,
}

impl Residual {
    /// All residual modes, for the differential tests.
    pub const ALL: [Residual; 3] = [
        Residual::Plain,
        Residual::MagnitudeSign,
        Residual::Negabinary,
    ];

    #[inline(always)]
    fn apply<const W: usize>(self, v: u64) -> u64 {
        match self {
            Residual::Plain => v,
            Residual::MagnitudeSign => codec::to_magnitude_sign::<W>(v),
            Residual::Negabinary => codec::to_negabinary::<W>(v),
        }
    }

    #[inline(always)]
    fn unapply<const W: usize>(self, v: u64) -> u64 {
        match self {
            Residual::Plain => v,
            Residual::MagnitudeSign => codec::from_magnitude_sign::<W>(v),
            Residual::Negabinary => codec::from_negabinary::<W>(v),
        }
    }
}

#[inline(always)]
fn load_word<const W: usize>(s: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b[..W].copy_from_slice(&s[..W]);
    u64::from_le_bytes(b)
}

/// Portable delta encode over word regions, with an explicit carry-in
/// (`prev0`) so it can finish a stream a SIMD kernel started.
fn portable_encode_into<const W: usize>(r: Residual, src: &[u8], dst: &mut [u8], prev0: u64) {
    debug_assert_eq!(src.len(), dst.len());
    let mask = words::mask::<W>();
    let mut prev = prev0;
    for (s, d) in src.chunks_exact(W).zip(dst.chunks_exact_mut(W)) {
        let cur = load_word::<W>(s);
        let delta = cur.wrapping_sub(prev) & mask;
        d.copy_from_slice(&r.apply::<W>(delta).to_le_bytes()[..W]);
        prev = cur;
    }
}

/// Portable prefix-sum decode with an explicit accumulator carry-in.
fn portable_decode_into<const W: usize>(r: Residual, src: &[u8], dst: &mut [u8], acc0: u64) {
    debug_assert_eq!(src.len(), dst.len());
    let mask = words::mask::<W>();
    let mut acc = acc0;
    for (s, d) in src.chunks_exact(W).zip(dst.chunks_exact_mut(W)) {
        acc = acc.wrapping_add(r.unapply::<W>(load_word::<W>(s))) & mask;
        d.copy_from_slice(&acc.to_le_bytes()[..W]);
    }
}

/// Which tier DIFF dispatch resolves to for this word size.
pub fn variant<const W: usize>() -> Variant {
    #[cfg(target_arch = "x86_64")]
    {
        if W == 4 || W == 8 {
            let t = super::tier();
            if t >= Variant::Avx2 {
                return Variant::Avx2;
            }
            if t >= Variant::Sse2 {
                return Variant::Sse2;
            }
        }
    }
    Variant::Scalar
}

/// Delta-encode every complete word of `input` (first word's predecessor
/// is 0), appending residual-mapped deltas then the tail verbatim.
pub fn encode<const W: usize>(r: Residual, input: &[u8], out: &mut Vec<u8>) -> Variant {
    let v = variant::<W>();
    encode_with::<W>(v, r, input, out);
    v
}

/// [`encode`] pinned to a tier (clamped to the detected CPU).
pub fn encode_with<const W: usize>(v: Variant, r: Residual, input: &[u8], out: &mut Vec<u8>) {
    let n = input.len() / W;
    let start = out.len();
    out.resize(start + n * W, 0);
    {
        let src = &input[..n * W];
        let dst = &mut out[start..];
        // safety: tier clamped to CPUID detection before calling
        // `#[target_feature]` bodies.
        #[cfg(target_arch = "x86_64")]
        let done = match v.min(super::detected()) {
            Variant::Avx2 => unsafe { x86::avx2_encode::<W>(r, src, dst) },
            Variant::Sse2 => unsafe { x86::sse2_encode::<W>(r, src, dst) },
            Variant::Scalar => 0,
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = {
            let _ = v;
            0
        };
        let prev = if done == 0 {
            0
        } else {
            load_word::<W>(&src[done - W..])
        };
        portable_encode_into::<W>(r, &src[done..], &mut dst[done..], prev);
    }
    out.extend_from_slice(&input[n * W..]);
}

/// Invert [`encode`]: prefix-sum every complete word, appending the
/// reconstructed words then the tail verbatim.
pub fn decode<const W: usize>(r: Residual, input: &[u8], out: &mut Vec<u8>) -> Variant {
    let v = variant::<W>();
    decode_with::<W>(v, r, input, out);
    v
}

/// [`decode`] pinned to a tier (clamped to the detected CPU).
pub fn decode_with<const W: usize>(v: Variant, r: Residual, input: &[u8], out: &mut Vec<u8>) {
    let n = input.len() / W;
    let start = out.len();
    out.resize(start + n * W, 0);
    {
        let src = &input[..n * W];
        let dst = &mut out[start..];
        // safety: tier clamped to CPUID detection before calling
        // `#[target_feature]` bodies.
        #[cfg(target_arch = "x86_64")]
        let done = match v.min(super::detected()) {
            Variant::Avx2 => unsafe { x86::avx2_decode::<W>(r, src, dst) },
            Variant::Sse2 => unsafe { x86::sse2_decode::<W>(r, src, dst) },
            Variant::Scalar => 0,
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = {
            let _ = v;
            0
        };
        let acc = if done == 0 {
            0
        } else {
            load_word::<W>(&dst[done - W..])
        };
        portable_decode_into::<W>(r, &src[done..], &mut dst[done..], acc);
    }
    out.extend_from_slice(&input[n * W..]);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::Residual;
    use std::arch::x86_64::*;

    // ---- per-lane residual maps (same algebra as kernels::pointwise) ----

    #[target_feature(enable = "sse2")]
    fn apply32(r: Residual, v: __m128i) -> __m128i {
        match r {
            Residual::Plain => v,
            Residual::MagnitudeSign => {
                let sign = _mm_sub_epi32(_mm_setzero_si128(), _mm_srli_epi32(v, 31));
                _mm_xor_si128(_mm_slli_epi32(v, 1), sign)
            }
            Residual::Negabinary => {
                let m = _mm_set1_epi32(0xAAAA_AAAAu32 as i32);
                _mm_xor_si128(_mm_add_epi32(v, m), m)
            }
        }
    }

    #[target_feature(enable = "sse2")]
    fn unapply32(r: Residual, v: __m128i) -> __m128i {
        match r {
            Residual::Plain => v,
            Residual::MagnitudeSign => {
                let one = _mm_set1_epi32(1);
                let sign = _mm_sub_epi32(_mm_setzero_si128(), _mm_and_si128(v, one));
                _mm_xor_si128(_mm_srli_epi32(v, 1), sign)
            }
            Residual::Negabinary => {
                let m = _mm_set1_epi32(0xAAAA_AAAAu32 as i32);
                _mm_sub_epi32(_mm_xor_si128(v, m), m)
            }
        }
    }

    #[target_feature(enable = "sse2")]
    fn apply64(r: Residual, v: __m128i) -> __m128i {
        match r {
            Residual::Plain => v,
            Residual::MagnitudeSign => {
                let sign = _mm_sub_epi64(_mm_setzero_si128(), _mm_srli_epi64(v, 63));
                _mm_xor_si128(_mm_slli_epi64(v, 1), sign)
            }
            Residual::Negabinary => {
                let m = _mm_set1_epi64x(0xAAAA_AAAA_AAAA_AAAAu64 as i64);
                _mm_xor_si128(_mm_add_epi64(v, m), m)
            }
        }
    }

    #[target_feature(enable = "sse2")]
    fn unapply64(r: Residual, v: __m128i) -> __m128i {
        match r {
            Residual::Plain => v,
            Residual::MagnitudeSign => {
                let one = _mm_set1_epi64x(1);
                let sign = _mm_sub_epi64(_mm_setzero_si128(), _mm_and_si128(v, one));
                _mm_xor_si128(_mm_srli_epi64(v, 1), sign)
            }
            Residual::Negabinary => {
                let m = _mm_set1_epi64x(0xAAAA_AAAA_AAAA_AAAAu64 as i64);
                _mm_sub_epi64(_mm_xor_si128(v, m), m)
            }
        }
    }

    #[target_feature(enable = "avx2")]
    fn apply32x(r: Residual, v: __m256i) -> __m256i {
        match r {
            Residual::Plain => v,
            Residual::MagnitudeSign => {
                let sign = _mm256_sub_epi32(_mm256_setzero_si256(), _mm256_srli_epi32(v, 31));
                _mm256_xor_si256(_mm256_slli_epi32(v, 1), sign)
            }
            Residual::Negabinary => {
                let m = _mm256_set1_epi32(0xAAAA_AAAAu32 as i32);
                _mm256_xor_si256(_mm256_add_epi32(v, m), m)
            }
        }
    }

    #[target_feature(enable = "avx2")]
    fn unapply32x(r: Residual, v: __m256i) -> __m256i {
        match r {
            Residual::Plain => v,
            Residual::MagnitudeSign => {
                let one = _mm256_set1_epi32(1);
                let sign = _mm256_sub_epi32(_mm256_setzero_si256(), _mm256_and_si256(v, one));
                _mm256_xor_si256(_mm256_srli_epi32(v, 1), sign)
            }
            Residual::Negabinary => {
                let m = _mm256_set1_epi32(0xAAAA_AAAAu32 as i32);
                _mm256_sub_epi32(_mm256_xor_si256(v, m), m)
            }
        }
    }

    #[target_feature(enable = "avx2")]
    fn apply64x(r: Residual, v: __m256i) -> __m256i {
        match r {
            Residual::Plain => v,
            Residual::MagnitudeSign => {
                let sign = _mm256_sub_epi64(_mm256_setzero_si256(), _mm256_srli_epi64(v, 63));
                _mm256_xor_si256(_mm256_slli_epi64(v, 1), sign)
            }
            Residual::Negabinary => {
                let m = _mm256_set1_epi64x(0xAAAA_AAAA_AAAA_AAAAu64 as i64);
                _mm256_xor_si256(_mm256_add_epi64(v, m), m)
            }
        }
    }

    #[target_feature(enable = "avx2")]
    fn unapply64x(r: Residual, v: __m256i) -> __m256i {
        match r {
            Residual::Plain => v,
            Residual::MagnitudeSign => {
                let one = _mm256_set1_epi64x(1);
                let sign = _mm256_sub_epi64(_mm256_setzero_si256(), _mm256_and_si256(v, one));
                _mm256_xor_si256(_mm256_srli_epi64(v, 1), sign)
            }
            Residual::Negabinary => {
                let m = _mm256_set1_epi64x(0xAAAA_AAAA_AAAA_AAAAu64 as i64);
                _mm256_sub_epi64(_mm256_xor_si256(v, m), m)
            }
        }
    }

    // ---- encode: delta via shifted second load ----

    /// SSE2 delta encode; returns bytes processed (multiple of 16).
    #[target_feature(enable = "sse2")]
    pub(super) fn sse2_encode<const W: usize>(r: Residual, src: &[u8], dst: &mut [u8]) -> usize {
        if (W != 4 && W != 8) || src.len() < 16 {
            return 0;
        }
        debug_assert!(dst.len() >= src.len());
        let mut i = 16usize;
        // safety: the first load reads bytes 0..16 (guarded above); loop
        // loads read `i-W..i+16` with `i + 16 <= len`; stores mirror the
        // loads into `dst`, which is at least as long as `src`.
        unsafe {
            let first = _mm_loadu_si128(src.as_ptr().cast());
            // Word 0 has no predecessor: shift a zero word in.
            let d0 = if W == 4 {
                apply32(r, _mm_sub_epi32(first, _mm_slli_si128(first, 4)))
            } else {
                apply64(r, _mm_sub_epi64(first, _mm_slli_si128(first, 8)))
            };
            _mm_storeu_si128(dst.as_mut_ptr().cast(), d0);
            while i + 16 <= src.len() {
                let cur = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let prev = _mm_loadu_si128(src.as_ptr().add(i - W).cast());
                let d = if W == 4 {
                    apply32(r, _mm_sub_epi32(cur, prev))
                } else {
                    apply64(r, _mm_sub_epi64(cur, prev))
                };
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), d);
                i += 16;
            }
        }
        i
    }

    /// AVX2 delta encode; returns bytes processed (multiple of 32).
    #[target_feature(enable = "avx2")]
    pub(super) fn avx2_encode<const W: usize>(r: Residual, src: &[u8], dst: &mut [u8]) -> usize {
        if (W != 4 && W != 8) || src.len() < 32 {
            return 0;
        }
        debug_assert!(dst.len() >= src.len());
        let mut i = 32usize;
        // safety: same bounds argument as `sse2_encode`, with 32-byte
        // blocks.
        unsafe {
            let first = _mm256_loadu_si256(src.as_ptr().cast());
            // Word 0's predecessor is 0: rotate words down one lane across
            // the 128-bit halves, then zero lane 0.
            let d0 = if W == 4 {
                let idx = _mm256_set_epi32(6, 5, 4, 3, 2, 1, 0, 0);
                let prev = _mm256_and_si256(
                    _mm256_permutevar8x32_epi32(first, idx),
                    _mm256_set_epi32(-1, -1, -1, -1, -1, -1, -1, 0),
                );
                apply32x(r, _mm256_sub_epi32(first, prev))
            } else {
                let prev = _mm256_and_si256(
                    _mm256_permute4x64_epi64(first, 0b10_01_00_00),
                    _mm256_set_epi64x(-1, -1, -1, 0),
                );
                apply64x(r, _mm256_sub_epi64(first, prev))
            };
            _mm256_storeu_si256(dst.as_mut_ptr().cast(), d0);
            while i + 32 <= src.len() {
                let cur = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let prev = _mm256_loadu_si256(src.as_ptr().add(i - W).cast());
                let d = if W == 4 {
                    apply32x(r, _mm256_sub_epi32(cur, prev))
                } else {
                    apply64x(r, _mm256_sub_epi64(cur, prev))
                };
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), d);
                i += 32;
            }
        }
        i
    }

    // ---- decode: in-register log-step inclusive scan ----

    /// SSE2 prefix-sum decode; returns bytes processed (multiple of 16).
    #[target_feature(enable = "sse2")]
    pub(super) fn sse2_decode<const W: usize>(r: Residual, src: &[u8], dst: &mut [u8]) -> usize {
        if W != 4 && W != 8 {
            return 0;
        }
        debug_assert!(dst.len() >= src.len());
        let mut i = 0usize;
        // safety: loads/stores are bounded by `i + 16 <= len` and
        // `dst.len() >= src.len()`.
        unsafe {
            let mut carry = _mm_setzero_si128();
            while i + 16 <= src.len() {
                let v = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let x = if W == 4 {
                    let mut x = unapply32(r, v);
                    x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
                    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
                    x = _mm_add_epi32(x, carry);
                    carry = _mm_shuffle_epi32(x, 0xFF);
                    x
                } else {
                    let mut x = unapply64(r, v);
                    x = _mm_add_epi64(x, _mm_slli_si128(x, 8));
                    x = _mm_add_epi64(x, carry);
                    carry = _mm_shuffle_epi32(x, 0xEE);
                    x
                };
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), x);
                i += 16;
            }
        }
        i
    }

    /// AVX2 prefix-sum decode; returns bytes processed (multiple of 32).
    #[target_feature(enable = "avx2")]
    pub(super) fn avx2_decode<const W: usize>(r: Residual, src: &[u8], dst: &mut [u8]) -> usize {
        if W != 4 && W != 8 {
            return 0;
        }
        debug_assert!(dst.len() >= src.len());
        let mut i = 0usize;
        // safety: loads/stores are bounded by `i + 32 <= len` and
        // `dst.len() >= src.len()`.
        unsafe {
            let zero = _mm256_setzero_si256();
            let mut carry = zero;
            while i + 32 <= src.len() {
                let v = _mm256_loadu_si256(src.as_ptr().add(i).cast());
                let x = if W == 4 {
                    let mut x = unapply32x(r, v);
                    // Scan within each 128-bit half...
                    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
                    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
                    // ...then push the low half's total into the high half.
                    let lo_tot = _mm_shuffle_epi32(_mm256_castsi256_si128(x), 0xFF);
                    x = _mm256_add_epi32(x, _mm256_inserti128_si256(zero, lo_tot, 1));
                    x = _mm256_add_epi32(x, carry);
                    carry = _mm256_permutevar8x32_epi32(x, _mm256_set1_epi32(7));
                    x
                } else {
                    let mut x = unapply64x(r, v);
                    x = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));
                    let lo_tot = _mm_shuffle_epi32(_mm256_castsi256_si128(x), 0xEE);
                    x = _mm256_add_epi64(x, _mm256_inserti128_si256(zero, lo_tot, 1));
                    x = _mm256_add_epi64(x, carry);
                    carry = _mm256_permute4x64_epi64(x, 0xFF);
                    x
                };
                _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), x);
                i += 32;
            }
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift_bytes(len: usize, mut s: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(len);
        while v.len() < len {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            v.extend_from_slice(&s.to_le_bytes());
        }
        v.truncate(len);
        v
    }

    fn check<const W: usize>() {
        for len in [0usize, W, 15, 16, 17, 31, 32, 33, 63, 64, 65, 257] {
            let input = xorshift_bytes(len, 0x5EED_0000 + len as u64 + W as u64);
            for r in Residual::ALL {
                let mut reference = Vec::new();
                encode_with::<W>(Variant::Scalar, r, &input, &mut reference);
                for v in super::super::available() {
                    let mut enc = Vec::new();
                    encode_with::<W>(v, r, &input, &mut enc);
                    assert_eq!(enc, reference, "enc W={W} {r:?} {v:?} len={len}");
                    let mut dec = Vec::new();
                    decode_with::<W>(v, r, &enc, &mut dec);
                    assert_eq!(dec, input, "roundtrip W={W} {r:?} {v:?} len={len}");
                }
            }
        }
    }

    #[test]
    fn all_tiers_agree_and_roundtrip() {
        check::<1>();
        check::<2>();
        check::<4>();
        check::<8>();
    }
}
