//! BIT shuffler kernels: bit-plane transpose.
//!
//! The serialized format is a continuous MSB-first bit stream: plane
//! `b−1` (one bit from every word, word 0 first) then plane `b−2`, and
//! so on. When the word count `n` is a multiple of 8 — true for every
//! full 16 kB chunk at every word size — each plane occupies exactly
//! `n/8` whole bytes, and the transform becomes a byte-granular 8×8 bit
//! transpose per 8-word group:
//!
//! * the **portable grouped** path uses the classic three-step delta-swap
//!   `u64` bit-matrix transpose (8 words per 18 ALU ops per byte column);
//! * the **SIMD** paths (`W` = 1 and 4) extract a whole plane byte per
//!   `movemask` after shifting the target bit into the lane sign
//!   position;
//! * when `n % 8 != 0` (short trailing chunks), plane boundaries straddle
//!   bytes and the exact [`BitWriter`]-equivalent reference runs instead.
//!
//! All three produce bit-identical streams (differential tests below and
//! in `tests/kernels_differential.rs`).

use super::Variant;
use crate::util::bitpack::{BitReader, BitWriter};
use crate::util::words;
use lc_core::DecodeError;

/// Bit-reversal table: `REV8[b] == b.reverse_bits()`. `movemask` packs
/// lane 0 into bit 0 (LSB-first) while the plane byte wants word 0 at
/// the MSB, so every mask byte is reversed on the way through.
#[cfg(target_arch = "x86_64")]
static REV8: [u8; 256] = {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = (i as u8).reverse_bits();
        i += 1;
    }
    t
};

/// 8×8 bit-matrix transpose: bit `8i+j` of the result is bit `8j+i` of
/// `x` (three delta-swaps; Hacker's Delight §7-3).
#[inline(always)]
fn transpose8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Exact reference encoder: the original bit-at-a-time stream writer.
fn reference_encode<const W: usize>(input: &[u8], n: usize, out: &mut Vec<u8>) {
    let b = words::bits::<W>();
    let vals = words::to_vec::<W>(input);
    let mut writer = BitWriter::new(out);
    for bit in (0..b).rev() {
        for &v in vals.iter().take(n) {
            writer.put((v >> bit) & 1, 1);
        }
    }
    writer.finish();
}

/// Exact reference decoder (only path that can observe truncation).
fn reference_decode<const W: usize>(
    src: &[u8],
    n: usize,
    out: &mut Vec<u8>,
) -> Result<(), DecodeError> {
    let b = words::bits::<W>();
    let mut vals = vec![0u64; n];
    let mut reader = BitReader::new(src);
    for bit in (0..b).rev() {
        for v in vals.iter_mut() {
            *v |= reader.get(1)? << bit;
        }
    }
    words::extend_from_words::<W>(out, &vals);
    Ok(())
}

/// Grouped portable encoder over words `from..n` (`n % 8 == 0`,
/// `from % 8 == 0`): one `u64` transpose per (8-word group × byte
/// column).
fn portable_encode_grouped<const W: usize>(src: &[u8], dst: &mut [u8], n: usize, from: usize) {
    let stride = n / 8; // bytes per plane
    let b = 8 * W;
    let mut w = from;
    while w < n {
        for m in 0..W {
            // Reversed byte order puts word 0 at the matrix row that maps
            // to the plane byte's MSB.
            let x = u64::from_le_bytes([
                src[(w + 7) * W + m],
                src[(w + 6) * W + m],
                src[(w + 5) * W + m],
                src[(w + 4) * W + m],
                src[(w + 3) * W + m],
                src[(w + 2) * W + m],
                src[(w + 1) * W + m],
                src[w * W + m],
            ]);
            let y = transpose8(x).to_le_bytes();
            for (qp, &pb) in y.iter().enumerate() {
                let p = b - 1 - (8 * m + qp); // plane index for bit 8m+qp
                dst[p * stride + w / 8] = pb;
            }
        }
        w += 8;
    }
}

/// Grouped portable decoder (inverse of [`portable_encode_grouped`]; the
/// transpose is an involution).
fn portable_decode_grouped<const W: usize>(src: &[u8], dst: &mut [u8], n: usize, from: usize) {
    let stride = n / 8;
    let b = 8 * W;
    let mut w = from;
    while w < n {
        for m in 0..W {
            let mut yb = [0u8; 8];
            for (qp, slot) in yb.iter_mut().enumerate() {
                let p = b - 1 - (8 * m + qp);
                *slot = src[p * stride + w / 8];
            }
            let x = transpose8(u64::from_le_bytes(yb)).to_le_bytes();
            for k in 0..8 {
                dst[(w + k) * W + m] = x[7 - k];
            }
        }
        w += 8;
    }
}

/// Which tier BIT dispatch resolves to for this word size.
pub fn variant<const W: usize>() -> Variant {
    #[cfg(target_arch = "x86_64")]
    {
        if W == 1 || W == 4 {
            let t = super::tier();
            if t >= Variant::Sse2 {
                return t;
            }
        }
    }
    Variant::Scalar
}

/// Transpose the complete words of `input` into bit planes, appending
/// `n·W` plane bytes then the incomplete tail verbatim.
pub fn encode<const W: usize>(input: &[u8], out: &mut Vec<u8>) -> Variant {
    let v = variant::<W>();
    encode_with::<W>(v, input, out);
    v
}

/// [`encode`] pinned to a tier (clamped to the detected CPU).
pub fn encode_with<const W: usize>(v: Variant, input: &[u8], out: &mut Vec<u8>) {
    let n = input.len() / W;
    if !n.is_multiple_of(8) {
        // Plane boundaries straddle bytes: only the streaming reference
        // produces the exact layout.
        reference_encode::<W>(input, n, out);
    } else {
        let start = out.len();
        out.resize(start + n * W, 0);
        let src = &input[..n * W];
        let dst = &mut out[start..];
        // safety: tier clamped to CPUID detection before calling
        // `#[target_feature]` bodies.
        #[cfg(target_arch = "x86_64")]
        let done = match v.min(super::detected()) {
            Variant::Avx2 => unsafe { x86::encode_avx2::<W>(src, dst, n) },
            Variant::Sse2 => unsafe { x86::encode_sse2::<W>(src, dst, n) },
            Variant::Scalar => 0,
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = {
            let _ = v;
            0
        };
        portable_encode_grouped::<W>(src, dst, n, done);
    }
    out.extend_from_slice(&input[n * W..]);
}

/// Invert [`encode`], appending the reconstructed words then the tail.
pub fn decode<const W: usize>(input: &[u8], out: &mut Vec<u8>) -> Result<Variant, DecodeError> {
    let v = variant::<W>();
    decode_with::<W>(v, input, out)?;
    Ok(v)
}

/// [`decode`] pinned to a tier (clamped to the detected CPU).
pub fn decode_with<const W: usize>(
    v: Variant,
    input: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), DecodeError> {
    let n = input.len() / W;
    if !n.is_multiple_of(8) {
        reference_decode::<W>(&input[..n * W], n, out)?;
    } else {
        let start = out.len();
        out.resize(start + n * W, 0);
        let src = &input[..n * W];
        let dst = &mut out[start..];
        // safety: tier clamped to CPUID detection before calling
        // `#[target_feature]` bodies.
        #[cfg(target_arch = "x86_64")]
        let done = match v.min(super::detected()) {
            Variant::Avx2 => unsafe { x86::decode_avx2::<W>(src, dst, n) },
            Variant::Sse2 => unsafe { x86::decode_sse2::<W>(src, dst, n) },
            Variant::Scalar => 0,
        };
        #[cfg(not(target_arch = "x86_64"))]
        let done = {
            let _ = v;
            0
        };
        portable_decode_grouped::<W>(src, dst, n, done);
    }
    out.extend_from_slice(&input[n * W..]);
    Ok(())
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::REV8;
    use std::arch::x86_64::*;

    /// SSE2 plane extraction for `W` ∈ {1, 4}; returns words covered
    /// (multiple of 8).
    #[target_feature(enable = "sse2")]
    pub(super) fn encode_sse2<const W: usize>(src: &[u8], dst: &mut [u8], n: usize) -> usize {
        let stride = n / 8;
        match W {
            1 => {
                let groups = n / 16;
                for g in 0..groups {
                    // safety: group `g` reads 16 bytes at `g*16`,
                    // `groups*16 ≤ n = src.len()`.
                    unsafe {
                        let v = _mm_loadu_si128(src.as_ptr().add(g * 16).cast());
                        for bit in 0..8usize {
                            // Shift bit `bit` into each byte's sign slot;
                            // 16-bit lane shifts leak only into the
                            // neighbor's low bits, never its bit 7.
                            let s = _mm_cvtsi32_si128(7 - bit as i32);
                            let m = _mm_movemask_epi8(_mm_sll_epi16(v, s)) as u32;
                            let p = 7 - bit;
                            dst[p * stride + g * 2] = REV8[(m & 0xFF) as usize];
                            dst[p * stride + g * 2 + 1] = REV8[(m >> 8) as usize];
                        }
                    }
                }
                groups * 16
            }
            4 => {
                let groups = n / 8;
                for g in 0..groups {
                    // safety: group `g` reads 32 bytes at `g*32`,
                    // `groups*32 ≤ n*4 = src.len()`.
                    unsafe {
                        let v0 = _mm_loadu_si128(src.as_ptr().add(g * 32).cast());
                        let v1 = _mm_loadu_si128(src.as_ptr().add(g * 32 + 16).cast());
                        for bit in 0..32usize {
                            let s = _mm_cvtsi32_si128(31 - bit as i32);
                            let m0 = _mm_movemask_ps(_mm_castsi128_ps(_mm_sll_epi32(v0, s)));
                            let m1 = _mm_movemask_ps(_mm_castsi128_ps(_mm_sll_epi32(v1, s)));
                            let p = 31 - bit;
                            dst[p * stride + g] = REV8[m0 as usize] | (REV8[m1 as usize] >> 4);
                        }
                    }
                }
                groups * 8
            }
            _ => 0,
        }
    }

    /// AVX2 plane extraction; same contract as [`encode_sse2`].
    #[target_feature(enable = "avx2")]
    pub(super) fn encode_avx2<const W: usize>(src: &[u8], dst: &mut [u8], n: usize) -> usize {
        let stride = n / 8;
        match W {
            1 => {
                let groups = n / 32;
                for g in 0..groups {
                    // safety: group `g` reads 32 bytes at `g*32`,
                    // `groups*32 ≤ n = src.len()`.
                    unsafe {
                        let v = _mm256_loadu_si256(src.as_ptr().add(g * 32).cast());
                        for bit in 0..8usize {
                            let s = _mm_cvtsi32_si128(7 - bit as i32);
                            let m = _mm256_movemask_epi8(_mm256_sll_epi16(v, s)) as u32;
                            let p = 7 - bit;
                            let o = p * stride + g * 4;
                            dst[o] = REV8[(m & 0xFF) as usize];
                            dst[o + 1] = REV8[((m >> 8) & 0xFF) as usize];
                            dst[o + 2] = REV8[((m >> 16) & 0xFF) as usize];
                            dst[o + 3] = REV8[(m >> 24) as usize];
                        }
                    }
                }
                groups * 32
            }
            4 => {
                let groups = n / 8;
                for g in 0..groups {
                    // safety: group `g` reads 32 bytes at `g*32`,
                    // `groups*32 ≤ n*4 = src.len()`.
                    unsafe {
                        let v = _mm256_loadu_si256(src.as_ptr().add(g * 32).cast());
                        for bit in 0..32usize {
                            let s = _mm_cvtsi32_si128(31 - bit as i32);
                            let m = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_sll_epi32(v, s)));
                            dst[(31 - bit) * stride + g] = REV8[m as usize & 0xFF];
                        }
                    }
                }
                groups * 8
            }
            _ => 0,
        }
    }

    /// SSE2 inverse-movemask decode for `W` = 1; returns words covered.
    #[target_feature(enable = "sse2")]
    pub(super) fn decode_sse2<const W: usize>(src: &[u8], dst: &mut [u8], n: usize) -> usize {
        if W != 1 {
            return 0;
        }
        let stride = n / 8;
        let groups = n / 16;
        let bitsel = _mm_set1_epi64x(0x8040_2010_0804_0201u64 as i64);
        for g in 0..groups {
            let mut acc = _mm_setzero_si128();
            for bit in 0..8usize {
                let p = 7 - bit;
                let b0 = REV8[src[p * stride + g * 2] as usize];
                let b1 = REV8[src[p * stride + g * 2 + 1] as usize];
                // Inverse movemask: broadcast each plane byte, test the
                // per-lane selector bit, fold the result into bit `bit`.
                let sel = _mm_unpacklo_epi64(_mm_set1_epi8(b0 as i8), _mm_set1_epi8(b1 as i8));
                let hit = _mm_cmpeq_epi8(_mm_and_si128(sel, bitsel), bitsel);
                acc = _mm_or_si128(acc, _mm_and_si128(hit, _mm_set1_epi8((1u8 << bit) as i8)));
            }
            // safety: the store writes 16 bytes at `g*16`, `groups*16 ≤
            // n = dst.len()`.
            unsafe {
                _mm_storeu_si128(dst.as_mut_ptr().add(g * 16).cast(), acc);
            }
        }
        groups * 16
    }

    /// AVX2 inverse-movemask decode for `W` = 1; returns words covered.
    #[target_feature(enable = "avx2")]
    pub(super) fn decode_avx2<const W: usize>(src: &[u8], dst: &mut [u8], n: usize) -> usize {
        if W != 1 {
            return 0;
        }
        let stride = n / 8;
        let groups = n / 32;
        let bitsel = _mm256_set1_epi64x(0x8040_2010_0804_0201u64 as i64);
        for g in 0..groups {
            let mut acc = _mm256_setzero_si256();
            for bit in 0..8usize {
                let p = 7 - bit;
                let o = p * stride + g * 4;
                let lo = _mm_unpacklo_epi64(
                    _mm_set1_epi8(REV8[src[o] as usize] as i8),
                    _mm_set1_epi8(REV8[src[o + 1] as usize] as i8),
                );
                let hi = _mm_unpacklo_epi64(
                    _mm_set1_epi8(REV8[src[o + 2] as usize] as i8),
                    _mm_set1_epi8(REV8[src[o + 3] as usize] as i8),
                );
                let sel = _mm256_set_m128i(hi, lo);
                let hit = _mm256_cmpeq_epi8(_mm256_and_si256(sel, bitsel), bitsel);
                acc = _mm256_or_si256(
                    acc,
                    _mm256_and_si256(hit, _mm256_set1_epi8((1u8 << bit) as i8)),
                );
            }
            // safety: the store writes 32 bytes at `g*32`, `groups*32 ≤
            // n = dst.len()`.
            unsafe {
                _mm256_storeu_si256(dst.as_mut_ptr().add(g * 32).cast(), acc);
            }
        }
        groups * 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 197 + 43) % 256) as u8).collect()
    }

    fn check<const W: usize>() {
        // Word counts both on and off the 8-word grouping, including SIMD
        // group boundaries (16/32 words) ± 1 group.
        for len in [
            0usize,
            W,
            3 * W,
            7 * W,
            8 * W,
            9 * W,
            15 * W,
            16 * W,
            17 * W,
            24 * W,
            32 * W,
            40 * W,
            64 * W + 3,
            256 * W,
        ] {
            let input = sample(len);
            let mut reference = Vec::new();
            let n = input.len() / W;
            reference_encode::<W>(&input, n, &mut reference);
            reference.extend_from_slice(&input[n * W..]);
            for v in super::super::available() {
                let mut enc = Vec::new();
                encode_with::<W>(v, &input, &mut enc);
                assert_eq!(enc, reference, "enc W={W} {v:?} len={len}");
                let mut dec = Vec::new();
                decode_with::<W>(v, &enc, &mut dec).unwrap();
                assert_eq!(dec, input, "roundtrip W={W} {v:?} len={len}");
            }
        }
    }

    #[test]
    fn all_tiers_match_the_bitstream_reference() {
        check::<1>();
        check::<2>();
        check::<4>();
        check::<8>();
    }

    #[test]
    fn transpose8_is_an_involution_and_transposes() {
        let x = 0x8040_2010_0804_0201u64; // identity matrix
        assert_eq!(transpose8(x), x);
        // Single off-diagonal bit moves to its mirror: bit (8·2+5) → (8·5+2).
        let x = 1u64 << (8 * 2 + 5);
        assert_eq!(transpose8(x), 1u64 << (8 * 5 + 2));
        for seed in [0x1234_5678u64, 0xDEAD_BEEF_CAFE_F00D] {
            assert_eq!(transpose8(transpose8(seed)), seed);
        }
    }
}
