//! Differential tests: every SIMD kernel tier must be bitwise equal to
//! the scalar reference on adversarial inputs.
//!
//! The matrix is kernels × word sizes × lengths (0 through ~3 vector
//! widths, ±1 to hit every remainder shape) × patterns (zeros, constants,
//! ramps, alternations, float shapes, high-entropy). Tiers above the
//! detected CPU are clamped inside the `*_with` entry points, so the
//! suite passes — exercising whatever is reachable — on any x86-64 or
//! non-x86 machine. Under `LC_KERNELS=scalar` (or Miri) only the portable
//! paths run, which keeps this suite usable as a UB check on the safe
//! fallbacks.

use lc_components::kernels::{self, bitmap, bitplane, diff, pointwise, rle, tuple, Variant};

/// Byte lengths covering empty, sub-word, odd tails, and ±1 around the
/// 16/32/64/96-byte SSE2/AVX2 block boundaries.
const LENGTHS: &[usize] = &[
    0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 95, 96, 97, 127, 128, 129, 256, 257,
    1000, 1024,
];

/// Deterministic xorshift64* stream (same construction as the lc-analyze
/// corpus, which this crate cannot depend on).
fn xorshift(mut state: u64) -> impl FnMut() -> u64 {
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Adversarial byte patterns of length `len`.
fn patterns(len: usize) -> Vec<Vec<u8>> {
    let mut rng = xorshift(0x9E37_79B9_7F4A_7C15 ^ len as u64);
    let mut random = vec![0u8; len];
    for b in random.iter_mut() {
        *b = rng() as u8;
    }
    vec![
        random,
        vec![0u8; len],
        vec![0xFFu8; len],
        vec![0xA5u8; len],
        (0..len).map(|i| i as u8).collect(),
        (0..len)
            .map(|i| if i % 2 == 0 { 0x11 } else { 0xEE })
            .collect(),
        (0..len).map(|i| ((i / 7) % 256) as u8).collect(),
        (0..len)
            .map(|i| (1.0f32 + (i as f32 / 4.0) * 1e-3).to_bits().to_le_bytes()[i % 4])
            .collect(),
        (0..len)
            .map(|i| (-3i32 - (i as i32 / 4)).to_le_bytes()[i % 4])
            .collect(),
    ]
}

fn tiers() -> Vec<Variant> {
    let t = kernels::available();
    assert!(t.contains(&Variant::Scalar), "scalar is always reachable");
    t
}

#[test]
fn pointwise_all_tiers_match_scalar() {
    fn check<const W: usize>() {
        for &len in LENGTHS {
            for input in patterns(len) {
                for op in pointwise::Op::ALL {
                    // DBEFS/DBESF only exist at float widths.
                    if W < 4
                        && matches!(
                            op,
                            pointwise::Op::DbefsEnc
                                | pointwise::Op::DbefsDec
                                | pointwise::Op::DbesfEnc
                                | pointwise::Op::DbesfDec
                        )
                    {
                        continue;
                    }
                    let mut want = Vec::new();
                    pointwise::apply_with::<W>(Variant::Scalar, op, &input, &mut want);
                    for v in tiers() {
                        let mut got = Vec::new();
                        pointwise::apply_with::<W>(v, op, &input, &mut got);
                        assert_eq!(got, want, "W={W} {op:?} {v:?} len={len}");
                    }
                }
            }
        }
    }
    check::<1>();
    check::<2>();
    check::<4>();
    check::<8>();
}

#[test]
fn diff_all_tiers_match_scalar_and_roundtrip() {
    fn check<const W: usize>() {
        for &len in LENGTHS {
            for input in patterns(len) {
                for r in diff::Residual::ALL {
                    let mut want = Vec::new();
                    diff::encode_with::<W>(Variant::Scalar, r, &input, &mut want);
                    for v in tiers() {
                        let mut got = Vec::new();
                        diff::encode_with::<W>(v, r, &input, &mut got);
                        assert_eq!(got, want, "enc W={W} {r:?} {v:?} len={len}");
                        let mut back = Vec::new();
                        diff::decode_with::<W>(v, r, &got, &mut back);
                        assert_eq!(back, input, "roundtrip W={W} {r:?} {v:?} len={len}");
                    }
                }
            }
        }
    }
    check::<1>();
    check::<2>();
    check::<4>();
    check::<8>();
}

#[test]
fn bitmap_all_tiers_match_scalar_and_survivors_filter() {
    fn check<const W: usize>() {
        for &len in LENGTHS {
            for input in patterns(len) {
                let src = &input[..(input.len() / W) * W];
                let n = src.len() / W;
                for mk in bitmap::Mark::ALL {
                    let mut want = Vec::new();
                    let want_kept = bitmap::build_with::<W>(Variant::Scalar, mk, src, &mut want);
                    for v in tiers() {
                        let mut got = Vec::new();
                        let kept = bitmap::build_with::<W>(v, mk, src, &mut got);
                        assert_eq!(got, want, "bitmap W={W} {mk:?} {v:?} len={len}");
                        assert_eq!(kept, want_kept, "kept W={W} {mk:?} {v:?} len={len}");
                    }
                    // Survivor emission must agree with a naive bit filter.
                    let mut surv = Vec::new();
                    bitmap::emit_survivors::<W>(src, &want, &mut surv);
                    let mut naive = Vec::new();
                    for i in 0..n {
                        if want[i / 8] & (1 << (i % 8)) == 0 {
                            naive.extend_from_slice(&src[i * W..(i + 1) * W]);
                        }
                    }
                    assert_eq!(surv, naive, "survivors W={W} {mk:?} len={len}");
                    assert_eq!(surv.len(), want_kept * W);
                }
            }
        }
    }
    check::<1>();
    check::<2>();
    check::<4>();
    check::<8>();
}

#[test]
fn expand_zero4_inverts_emit_survivors() {
    // The vectorized IsZero reconstruction must rebuild exactly the
    // words emit_survivors dropped: survivors back in place, marked
    // lanes zero. Where the kernel stops early (tier too low or tail
    // guard), finish scalar — the same contract rre.rs decode relies on.
    for &len in LENGTHS {
        for input in patterns(len) {
            let src = &input[..(input.len() / 4) * 4];
            let n = src.len() / 4;
            let mut bm = Vec::new();
            bitmap::build::<4>(bitmap::Mark::IsZero, src, &mut bm);
            let mut surv = Vec::new();
            bitmap::emit_survivors::<4>(src, &bm, &mut surv);
            let mut pos = 0usize;
            let mut back = Vec::new();
            let mut i = bitmap::expand_zero4(&bm, n, &surv, &mut pos, &mut back);
            while i < n {
                if bm[i / 8] & (1 << (i % 8)) == 0 {
                    back.extend_from_slice(&surv[pos..pos + 4]);
                    pos += 4;
                } else {
                    back.extend_from_slice(&[0u8; 4]);
                }
                i += 1;
            }
            assert_eq!(back, src, "len={len}");
            assert_eq!(pos, surv.len(), "len={len}");
        }
    }
}

#[test]
fn bitplane_all_tiers_match_scalar_and_roundtrip() {
    fn check<const W: usize>() {
        for &len in LENGTHS {
            for input in patterns(len) {
                let mut want = Vec::new();
                bitplane::encode_with::<W>(Variant::Scalar, &input, &mut want);
                for v in tiers() {
                    let mut got = Vec::new();
                    bitplane::encode_with::<W>(v, &input, &mut got);
                    assert_eq!(got, want, "enc W={W} {v:?} len={len}");
                    let mut back = Vec::new();
                    bitplane::decode_with::<W>(v, &got, &mut back).unwrap();
                    assert_eq!(back, input, "roundtrip W={W} {v:?} len={len}");
                }
            }
        }
    }
    check::<1>();
    check::<2>();
    check::<4>();
    check::<8>();
}

#[test]
fn tuple_all_tiers_match_scalar_and_roundtrip() {
    fn check<const K: usize, const W: usize>() {
        for &len in LENGTHS {
            for input in patterns(len) {
                let mut want = Vec::new();
                tuple::encode_with::<K, W>(Variant::Scalar, &input, &mut want);
                for v in tiers() {
                    let mut got = Vec::new();
                    tuple::encode_with::<K, W>(v, &input, &mut got);
                    assert_eq!(got, want, "enc K={K} W={W} {v:?} len={len}");
                    let mut back = Vec::new();
                    tuple::decode_with::<K, W>(v, &got, &mut back);
                    assert_eq!(back, input, "roundtrip K={K} W={W} {v:?} len={len}");
                }
            }
        }
    }
    check::<2, 1>();
    check::<2, 2>();
    check::<4, 1>();
    check::<4, 2>();
    check::<8, 1>();
    check::<8, 4>();
}

#[test]
fn rle_bit_scans_match_naive_on_corpus_bitmaps() {
    // The RLE helpers are safe portable code; differential-check them
    // against naive scans over bitmaps built from the corpus.
    for &len in LENGTHS {
        for input in patterns(len) {
            let src = &input[..(input.len() / 4) * 4];
            let n = src.len() / 4;
            let mut bm = Vec::new();
            bitmap::build::<4>(bitmap::Mark::RepeatsPrior, src, &mut bm);
            for from in [0usize, 1, n / 2, n.saturating_sub(1), n] {
                let naive_count = (from..n)
                    .take_while(|&i| bm[i / 8] & (1 << (i % 8)) != 0)
                    .count();
                assert_eq!(rle::count_set_from(&bm, n, from), naive_count, "len={len}");
                let naive_next = (from..n)
                    .find(|&i| bm[i / 8] & (1 << (i % 8)) != 0)
                    .unwrap_or(n);
                assert_eq!(rle::next_set_bit(&bm, n, from), naive_next, "len={len}");
            }
        }
    }
}
