//! Value generators for the three SP domains.
//!
//! Each generator produces a stream of `f32` values whose *compressibility
//! structure* matches its domain, which is what the study's figures depend
//! on (not the values themselves):
//!
//! * [`message`] — MPI message traces: block-structured payloads where
//!   whole buffers repeat, interleaved with padded (constant) regions and
//!   incompressible header-like noise.
//! * [`simulation`] — smooth multiscale fields: sums of sines plus an
//!   AR(1) component, with occasional regime shifts; residuals after DIFF
//!   are small and exponents are narrowly distributed.
//! * [`observation`] — autocorrelated sensor noise quantized to
//!   instrument resolution, with missing-value sentinel runs
//!   (−9999.0) — the classic source of exact 4-byte repeats.

use rand::rngs::StdRng;
use rand::RngExt;

/// Per-file parameter tweak derived from the name so files within a domain
/// are not identical in character.
fn name_salt(name: &str) -> f32 {
    let s: u32 = name.bytes().map(u32::from).sum();
    (s % 97) as f32 / 97.0
}

/// MPI message trace: repeated buffer blocks + padding + header noise.
pub fn message(rng: &mut StdRng, n: usize, name: &str) -> Vec<f32> {
    let salt = name_salt(name);
    let mut out = Vec::with_capacity(n);
    // A library of message payload templates that recur on the wire.
    let n_templates = 6 + (salt * 10.0) as usize;
    let template_len = 192 + (salt * 512.0) as usize;
    let templates: Vec<Vec<f32>> = (0..n_templates)
        .map(|_| {
            let base: f32 = rng.random_range(1.0e-2..1.0e3);
            (0..template_len)
                .map(|i| base * (1.0 + 0.01 * (i as f32).sin()) + rng.random::<f32>() * base * 1e-4)
                .collect()
        })
        .collect();
    while out.len() < n {
        match rng.random_range(0..10u32) {
            // 50%: replay a template verbatim → exact 4-byte repeats across
            // the stream (RRE) though rarely adjacent.
            0..=4 => {
                let t = &templates[rng.random_range(0..templates.len())];
                out.extend(t.iter().take(n - out.len()));
            }
            // 5%: zero padding → runs visible at every granularity.
            5 => {
                let len = rng.random_range(16..128usize).min(n - out.len());
                out.extend(std::iter::repeat_n(0.0f32, len));
            }
            // 25%: constant fill with a marker whose four bytes are all
            // distinct — runs exist at 4-byte granularity but neither at
            // byte nor (usually) at 8-byte alignment, the property behind
            // the paper's Fig. 11.
            6..=7 => {
                let len = rng.random_range(16..256usize).min(n - out.len());
                let v = f32::from_bits(0x3F8C_51B7 ^ ((salt * 255.0) as u32));
                out.extend(std::iter::repeat_n(v, len));
            }
            // 20%: header-like incompressible noise.
            _ => {
                let len = rng.random_range(16..128usize).min(n - out.len());
                for _ in 0..len {
                    out.push(f32::from_bits(rng.random::<u32>() & 0x7F7F_FFFF));
                }
            }
        }
    }
    out.truncate(n);
    out
}

/// Smooth simulation field: multiscale sines + AR(1) + regime shifts.
pub fn simulation(rng: &mut StdRng, n: usize, name: &str) -> Vec<f32> {
    let salt = name_salt(name);
    let mut out = Vec::with_capacity(n);
    let f1 = 0.001 + salt * 0.002;
    let f2 = 0.013 + salt * 0.004;
    let f3 = 0.101 + salt * 0.03;
    let mut ar = 0.0f64;
    let mut offset = 10.0f64 + salt as f64 * 100.0;
    for i in 0..n {
        if i % 8192 == 8191 && rng.random_range(0..4u32) == 0 {
            // Regime shift: new baseline, as between simulation variables.
            offset = rng.random_range(1.0..1000.0f64);
        }
        ar = 0.995 * ar + rng.random_range(-1.0..1.0f64) * 0.01;
        let x = i as f64;
        let v = offset
            + (x * f1 as f64).sin() * 4.0
            + (x * f2 as f64).sin() * 0.5
            + (x * f3 as f64).sin() * 0.05
            + ar;
        out.push(v as f32);
    }
    out
}

/// Observational data: AR(1) noise quantized to instrument resolution with
/// missing-value sentinel runs.
pub fn observation(rng: &mut StdRng, n: usize, name: &str) -> Vec<f32> {
    let salt = name_salt(name);
    let mut out = Vec::with_capacity(n);
    let quantum = 0.01f64 * (1.0 + salt as f64 * 9.0); // instrument resolution
    let sentinel = -9999.0f32;
    let mut level = 250.0f64 + salt as f64 * 50.0; // e.g. Kelvin
    let mut i = 0;
    while i < n {
        if rng.random_range(0..100u32) < 3 {
            // Missing-data gap: a short run of identical sentinels — long
            // enough to repeat at 4-byte granularity, short enough that
            // aligned 8-byte repeats stay rare.
            let len = rng.random_range(3..10usize).min(n - i);
            out.extend(std::iter::repeat_n(sentinel, len));
            i += len;
            continue;
        }
        level += rng.random_range(-1.0..1.0f64) * 0.3;
        // Quantize to the instrument's resolution: equal consecutive
        // readings become exact 4-byte repeats.
        let q = (level / quantum).round() * quantum;
        out.push(q as f32);
        i += 1;
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn generators_fill_exactly_n() {
        for n in [0usize, 1, 100, 40_000] {
            assert_eq!(message(&mut rng(), n, "msg_bt").len(), n);
            assert_eq!(simulation(&mut rng(), n, "num_brain").len(), n);
            assert_eq!(observation(&mut rng(), n, "obs_temp").len(), n);
        }
    }

    #[test]
    fn simulation_is_smooth() {
        let v = simulation(&mut rng(), 10_000, "num_brain");
        let mut big_jumps = 0;
        for w in v.windows(2) {
            if (w[1] - w[0]).abs() > 1.0 {
                big_jumps += 1;
            }
        }
        // Regime shifts are rare; the field is otherwise smooth.
        assert!(big_jumps < 10, "{big_jumps} large jumps");
    }

    #[test]
    fn observation_contains_sentinel_runs() {
        let v = observation(&mut rng(), 50_000, "obs_error");
        let mut run = 0;
        let mut max_run = 0;
        for w in v.windows(2) {
            if w[0] == w[1] && w[0] == -9999.0 {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run >= 3, "expected sentinel runs, max={max_run}");
    }

    #[test]
    fn observation_has_4byte_repeats_but_not_byte_runs() {
        // The property behind paper Fig. 11: runs exist at 4-byte
        // granularity far more often than at byte granularity.
        let v = observation(&mut rng(), 50_000, "obs_temp");
        let word_repeats = v.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            word_repeats > 500,
            "quantization must create word repeats: {word_repeats}"
        );
    }

    #[test]
    fn message_mixes_compressible_and_noise() {
        let v = message(&mut rng(), 50_000, "msg_sp");
        let zeros = v.iter().filter(|&&x| x == 0.0).count();
        assert!(zeros > 500, "padding regions expected: {zeros}");
        let distinct: std::collections::HashSet<u32> = v.iter().map(|x| x.to_bits()).collect();
        assert!(
            distinct.len() > 1000,
            "noise regions expected: {}",
            distinct.len()
        );
    }

    #[test]
    fn values_are_finite_or_sentinel() {
        for v in simulation(&mut rng(), 10_000, "num_comet") {
            assert!(v.is_finite());
        }
    }
}
