//! Double-precision dataset extension.
//!
//! The SP dataset descends from Burtscher & Ratanaworabhan's DCC'07 work,
//! which is actually about *double*-precision data; LC's published
//! compressors come in SP and DP flavors (SPspeed/DPspeed, …), and the
//! component-importance study the paper cites (Azami & Burtscher,
//! ISPASS'25) found that "the preferred word size of certain components
//! depends on the data type of the input (single- vs double-precision)".
//!
//! This module generates double-precision variants of the same 13 files:
//! identical domain structure, 8-byte values. The hypothesis it enables —
//! on DP data, exact repeats live at 8-byte granularity, so RLE_8 (not
//! RLE_4) becomes the compressing variant and the Fig. 11 effect moves one
//! word size up — is asserted in this module's tests and exercised by the
//! `dp_wordsize` example.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{seed_of, Domain, Scale, SpFile, SP_FILES};

/// Generate the double-precision variant of `file` at `scale`.
///
/// The byte size matches the SP variant (same [`Scale`] semantics), so the
/// DP file holds half as many values.
pub fn generate_dp(file: &SpFile, scale: Scale) -> Vec<u8> {
    let bytes = scale.bytes_for(file) / 8 * 8;
    let n_vals = bytes / 8;
    let mut rng = StdRng::seed_from_u64(seed_of(file.name) ^ 0xD0D0_D0D0_D0D0_D0D0);
    let vals = match file.domain {
        Domain::Message => message_dp(&mut rng, n_vals, file.name),
        Domain::Simulation => simulation_dp(&mut rng, n_vals, file.name),
        Domain::Observation => observation_dp(&mut rng, n_vals, file.name),
    };
    let mut out = Vec::with_capacity(bytes);
    for v in vals {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Generate the whole DP dataset at `scale`, Table 3 order.
pub fn generate_all_dp(scale: Scale) -> Vec<(&'static str, Vec<u8>)> {
    SP_FILES
        .iter()
        .map(|f| (f.name, generate_dp(f, scale)))
        .collect()
}

fn salt(name: &str) -> f64 {
    let s: u32 = name.bytes().map(u32::from).sum();
    f64::from(s % 97) / 97.0
}

fn message_dp(rng: &mut StdRng, n: usize, name: &str) -> Vec<f64> {
    let salt = salt(name);
    let mut out = Vec::with_capacity(n);
    let template: Vec<f64> = (0..256)
        .map(|i| (1.0 + salt) * (1.0 + 0.01 * (i as f64).sin()) + rng.random::<f64>() * 1e-6)
        .collect();
    while out.len() < n {
        match rng.random_range(0..10u32) {
            0..=4 => out.extend(template.iter().take(n - out.len())),
            // Constant marker whose eight bytes are all distinct: repeats
            // at 8-byte granularity only.
            5..=7 => {
                let len = rng.random_range(8..128usize).min(n - out.len());
                let v = f64::from_bits(0x3FF0_1234_5678_9ABC ^ ((salt * 255.0) as u64));
                out.extend(std::iter::repeat_n(v, len));
            }
            _ => {
                let len = rng.random_range(8..64usize).min(n - out.len());
                for _ in 0..len {
                    out.push(f64::from_bits(rng.random::<u64>() & 0x7FEF_FFFF_FFFF_FFFF));
                }
            }
        }
    }
    out.truncate(n);
    out
}

fn simulation_dp(rng: &mut StdRng, n: usize, name: &str) -> Vec<f64> {
    let salt = salt(name);
    let mut ar = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        ar = 0.995 * ar + rng.random_range(-1.0..1.0) * 0.01;
        let x = i as f64;
        out.push(10.0 + salt * 100.0 + (x * 0.002).sin() * 4.0 + (x * 0.11).sin() * 0.05 + ar);
    }
    out
}

fn observation_dp(rng: &mut StdRng, n: usize, name: &str) -> Vec<f64> {
    let salt = salt(name);
    let quantum = 0.01 * (1.0 + salt * 9.0);
    let mut level = 250.0 + salt * 50.0;
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while i < n {
        if rng.random_range(0..100u32) < 3 {
            let len = rng.random_range(3..10usize).min(n - i);
            out.extend(std::iter::repeat_n(-9999.0f64, len));
            i += len;
            continue;
        }
        level += rng.random_range(-1.0..1.0) * 0.3;
        out.push((level / quantum).round() * quantum);
        i += 1;
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file_by_name;

    #[test]
    fn dp_generation_is_deterministic_and_sized() {
        let f = file_by_name("obs_temp").unwrap();
        let a = generate_dp(f, Scale::tiny());
        let b = generate_dp(f, Scale::tiny());
        assert_eq!(a, b);
        assert_eq!(a.len() % 8, 0);
        assert!(a.len() >= Scale::MIN_BYTES - 8);
    }

    #[test]
    fn dp_differs_from_sp() {
        let f = file_by_name("num_brain").unwrap();
        let sp = crate::generate(f, Scale::tiny());
        let dp = generate_dp(f, Scale::tiny());
        assert_ne!(sp[..512], dp[..512]);
    }

    #[test]
    fn dp_repeats_live_at_8_byte_granularity() {
        // The word-size/data-type hypothesis: consecutive equal 8-byte
        // words are common, equal 4-byte half-words across value
        // boundaries are not.
        let f = file_by_name("obs_error").unwrap();
        let data = generate_dp(f, Scale::tiny());
        let n8 = data.len() / 8;
        let w8 = |i: usize| u64::from_le_bytes(data[i * 8..i * 8 + 8].try_into().unwrap());
        let repeats8 = (1..n8).filter(|&i| w8(i) == w8(i - 1)).count();
        assert!(
            repeats8 * 50 > n8,
            "quantized DP data must repeat at 8-byte granularity: {repeats8}/{n8}"
        );
    }

    #[test]
    fn generate_all_dp_covers_13_files() {
        let all = generate_all_dp(Scale::tiny());
        assert_eq!(all.len(), 13);
    }
}
