//! Synthetic SP dataset (stand-in for paper Table 3).
//!
//! The paper evaluates on the SP dataset: 13 single-precision files from
//! several domains — MPI message traces (`msg_*`), simulation results
//! (`num_*`), and observational data (`obs_*`) — totalling ≈ 959 MB. The
//! files themselves are not redistributable here, so this crate generates
//! **seeded synthetic equivalents** with the same names, the same
//! *relative* sizes (scalable via [`Scale`]), and domain-plausible value
//! structure:
//!
//! * smooth autocorrelated fields (AR(1) walks, sine mixtures) so that
//!   DIFF-style predictors produce small residuals;
//! * shared exponent ranges so leading-zero reducers (CLOG) and upper-bit
//!   reducers (RARE/RAZE) find structure after mutation;
//! * exact value repeats and sentinel runs (missing-data markers, padded
//!   message buffers) so RLE/RRE find runs **at 4-byte granularity only**
//!   — the property behind the paper's Fig. 11;
//! * noisy low-order mantissa bits so nothing is trivially compressible.
//!
//! Generation is deterministic: a given `(file, scale)` pair always yields
//! identical bytes, across runs and platforms.

#![forbid(unsafe_code)]

pub mod dp;
pub mod generators;
pub mod profile;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One file of the (synthetic) SP dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpFile {
    /// File name as in the SP dataset.
    pub name: &'static str,
    /// Size in the paper's Table 3, in tenths of a megabyte (133.2 MB →
    /// 1332). Kept integral so the table is exactly representable.
    pub paper_size_tenth_mb: u32,
    /// Which generator family shapes this file's values.
    pub domain: Domain,
}

/// Value-structure family of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// MPI message payloads: blocky, repeated buffers, padded regions.
    Message,
    /// Numerical simulation fields: smooth with multiscale structure.
    Simulation,
    /// Instrument observations: autocorrelated noise, quantized levels,
    /// missing-value sentinels.
    Observation,
}

/// The 13 files of paper Table 3, in table order (sizes in MB:
/// 133.2, 97.1, 145.1, 139.5, 62.9, 70.9, 53.7, 79.8, 17.5, 31.1, 9.5,
/// 99.1, 20.0; "obs_info" at 9.5 MB is named in §5).
pub const SP_FILES: [SpFile; 13] = [
    SpFile {
        name: "msg_bt",
        paper_size_tenth_mb: 1332,
        domain: Domain::Message,
    },
    SpFile {
        name: "msg_lu",
        paper_size_tenth_mb: 971,
        domain: Domain::Message,
    },
    SpFile {
        name: "msg_sp",
        paper_size_tenth_mb: 1451,
        domain: Domain::Message,
    },
    SpFile {
        name: "msg_sppm",
        paper_size_tenth_mb: 1395,
        domain: Domain::Message,
    },
    SpFile {
        name: "msg_sweep3d",
        paper_size_tenth_mb: 629,
        domain: Domain::Message,
    },
    SpFile {
        name: "num_brain",
        paper_size_tenth_mb: 709,
        domain: Domain::Simulation,
    },
    SpFile {
        name: "num_comet",
        paper_size_tenth_mb: 537,
        domain: Domain::Simulation,
    },
    SpFile {
        name: "num_control",
        paper_size_tenth_mb: 798,
        domain: Domain::Simulation,
    },
    SpFile {
        name: "num_plasma",
        paper_size_tenth_mb: 175,
        domain: Domain::Simulation,
    },
    SpFile {
        name: "obs_error",
        paper_size_tenth_mb: 311,
        domain: Domain::Observation,
    },
    SpFile {
        name: "obs_info",
        paper_size_tenth_mb: 95,
        domain: Domain::Observation,
    },
    SpFile {
        name: "obs_spitzer",
        paper_size_tenth_mb: 991,
        domain: Domain::Observation,
    },
    SpFile {
        name: "obs_temp",
        paper_size_tenth_mb: 200,
        domain: Domain::Observation,
    },
];

/// Total paper size of the dataset in MB (≈ 959 MB).
pub fn paper_total_mb() -> f64 {
    SP_FILES
        .iter()
        .map(|f| f.paper_size_tenth_mb as f64 / 10.0)
        .sum()
}

/// Scale factor mapping paper sizes to generated sizes.
///
/// `Scale::denominator(d)` generates `paper_size / d` bytes per file,
/// rounded to whole f32 values and to at least [`Scale::MIN_BYTES`] so
/// every file spans several 16 kB chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    denominator: u32,
}

impl Scale {
    /// Every generated file has at least this many bytes (4 chunks).
    pub const MIN_BYTES: usize = 4 * 16 * 1024;

    /// The paper's full sizes (denominator 1). ~959 MB total — only for
    /// explicitly requested full-scale runs.
    pub fn full() -> Self {
        Self { denominator: 1 }
    }

    /// `1/d` of the paper's sizes.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn denominator(d: u32) -> Self {
        assert!(d > 0, "scale denominator must be positive");
        Self { denominator: d }
    }

    /// Default experiment scale: 1/512 of the paper (~1.9 MB total),
    /// chosen so the full 107,632-pipeline campaign finishes in minutes.
    pub fn default_study() -> Self {
        Self::denominator(512)
    }

    /// Tiny scale for unit tests and Criterion benches.
    pub fn tiny() -> Self {
        Self::denominator(8192)
    }

    /// The denominator `d` this scale was built with (1 = paper size).
    /// Stable identity token for campaign journals and reports.
    pub fn divisor(&self) -> u32 {
        self.denominator
    }

    /// Generated byte size for `file` at this scale.
    pub fn bytes_for(&self, file: &SpFile) -> usize {
        let full = file.paper_size_tenth_mb as u64 * 1_000_000 / 10;
        let scaled = (full / self.denominator as u64) as usize;
        let aligned = scaled / 4 * 4;
        aligned.max(Self::MIN_BYTES)
    }
}

/// Generate the bytes of `file` at `scale`.
///
/// Deterministic: the RNG seed derives from the file name only.
///
/// ```
/// use lc_data::{file_by_name, generate, Scale};
/// let f = file_by_name("obs_info").unwrap();
/// let bytes = generate(f, Scale::tiny());
/// assert!(bytes.len() >= Scale::MIN_BYTES);
/// assert_eq!(bytes, generate(f, Scale::tiny()), "deterministic");
/// ```
pub fn generate(file: &SpFile, scale: Scale) -> Vec<u8> {
    let bytes = scale.bytes_for(file);
    let n_vals = bytes / 4;
    let mut rng = StdRng::seed_from_u64(seed_of(file.name));
    let vals = match file.domain {
        Domain::Message => generators::message(&mut rng, n_vals, file.name),
        Domain::Simulation => generators::simulation(&mut rng, n_vals, file.name),
        Domain::Observation => generators::observation(&mut rng, n_vals, file.name),
    };
    let mut out = Vec::with_capacity(bytes);
    for v in vals {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Generate the whole dataset at `scale`, in Table 3 order.
pub fn generate_all(scale: Scale) -> Vec<(&'static str, Vec<u8>)> {
    SP_FILES
        .iter()
        .map(|f| (f.name, generate(f, scale)))
        .collect()
}

/// Look up a file descriptor by name.
pub fn file_by_name(name: &str) -> Option<&'static SpFile> {
    SP_FILES.iter().find(|f| f.name == name)
}

/// Stable 64-bit seed for a file name (FNV-1a).
pub(crate) fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_files_total_about_959_mb() {
        assert_eq!(SP_FILES.len(), 13);
        let total = paper_total_mb();
        assert!((total - 959.4).abs() < 0.2, "total {total}");
    }

    #[test]
    fn obs_info_is_the_smallest_at_9_5_mb() {
        let smallest = SP_FILES
            .iter()
            .min_by_key(|f| f.paper_size_tenth_mb)
            .unwrap();
        assert_eq!(smallest.name, "obs_info");
        assert_eq!(smallest.paper_size_tenth_mb, 95);
    }

    #[test]
    fn generation_is_deterministic() {
        let f = file_by_name("num_plasma").unwrap();
        let a = generate(f, Scale::tiny());
        let b = generate(f, Scale::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn different_files_differ() {
        let a = generate(file_by_name("msg_bt").unwrap(), Scale::tiny());
        let b = generate(file_by_name("msg_lu").unwrap(), Scale::tiny());
        assert_ne!(a[..1024], b[..1024]);
    }

    #[test]
    fn scale_respects_relative_sizes_and_minimum() {
        let s = Scale::denominator(512);
        let big = s.bytes_for(file_by_name("msg_sp").unwrap());
        let small = s.bytes_for(file_by_name("obs_info").unwrap());
        assert!(big > small);
        assert!(small >= Scale::MIN_BYTES);
        // Ratio roughly matches the paper's 145.1 / 9.5 (floored by the
        // minimum size).
        let ratio = big as f64 / small as f64;
        assert!(
            ratio > 4.0,
            "minimum floor compresses the ratio, ratio={ratio}"
        );
    }

    #[test]
    fn sizes_are_f32_aligned() {
        for f in &SP_FILES {
            assert_eq!(Scale::tiny().bytes_for(f) % 4, 0, "{}", f.name);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_denominator_panics() {
        Scale::denominator(0);
    }

    #[test]
    fn generate_all_covers_every_file() {
        let all = generate_all(Scale::tiny());
        assert_eq!(all.len(), 13);
        for (name, bytes) in &all {
            assert!(bytes.len() >= Scale::MIN_BYTES, "{name}");
        }
    }
}
