//! Dataset profiling: quick structural statistics of a byte stream.
//!
//! Used by tests to assert that the synthetic files have the
//! compressibility structure the study depends on, and by the CLI to show
//! what was generated.

/// Structural statistics of a (single-precision) byte stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Total bytes.
    pub bytes: usize,
    /// Fraction of consecutive 4-byte words that are exactly equal.
    pub word_repeat_fraction: f64,
    /// Fraction of consecutive bytes that are equal.
    pub byte_repeat_fraction: f64,
    /// Fraction of 4-byte words that are exactly zero.
    pub zero_word_fraction: f64,
    /// Mean absolute delta between consecutive words interpreted as f32
    /// (sentinel-to-value jumps included).
    pub mean_abs_delta: f64,
    /// Number of distinct exponent field values seen.
    pub distinct_exponents: usize,
}

/// Compute a [`Profile`] of `data` (interpreted as little-endian f32s).
pub fn profile(data: &[u8]) -> Profile {
    let n = data.len() / 4;
    let word = |i: usize| u32::from_le_bytes(data[i * 4..i * 4 + 4].try_into().unwrap()); // invariant: slice is exactly 4 bytes
    let mut word_repeats = 0usize;
    let mut zeros = 0usize;
    let mut abs_delta = 0.0f64;
    let mut exponents = std::collections::HashSet::new();
    for i in 0..n {
        let w = word(i);
        if w == 0 {
            zeros += 1;
        }
        exponents.insert((w >> 23) & 0xFF);
        if i > 0 {
            if w == word(i - 1) {
                word_repeats += 1;
            }
            let a = f32::from_bits(word(i - 1)) as f64;
            let b = f32::from_bits(w) as f64;
            if a.is_finite() && b.is_finite() {
                abs_delta += (b - a).abs();
            }
        }
    }
    let byte_repeats = data.windows(2).filter(|w| w[0] == w[1]).count();
    Profile {
        bytes: data.len(),
        word_repeat_fraction: if n > 1 {
            word_repeats as f64 / (n - 1) as f64
        } else {
            0.0
        },
        byte_repeat_fraction: if data.len() > 1 {
            byte_repeats as f64 / (data.len() - 1) as f64
        } else {
            0.0
        },
        zero_word_fraction: if n > 0 { zeros as f64 / n as f64 } else { 0.0 },
        mean_abs_delta: if n > 1 {
            abs_delta / (n - 1) as f64
        } else {
            0.0
        },
        distinct_exponents: exponents.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{file_by_name, generate, Scale};

    #[test]
    fn empty_profile() {
        let p = profile(&[]);
        assert_eq!(p.bytes, 0);
        assert_eq!(p.word_repeat_fraction, 0.0);
    }

    #[test]
    fn all_equal_words() {
        let data: Vec<u8> = std::iter::repeat_n(42.5f32.to_le_bytes(), 100)
            .flatten()
            .collect();
        let p = profile(&data);
        assert!((p.word_repeat_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_observation_matches_fig11_premise() {
        // The Fig. 11 premise: word-level repeats far more common than
        // would be visible at other granularities.
        let data = generate(file_by_name("obs_temp").unwrap(), Scale::tiny());
        let p = profile(&data);
        assert!(p.word_repeat_fraction > 0.01, "{p:?}");
        assert!(p.distinct_exponents < 40, "narrow exponent range: {p:?}");
    }

    #[test]
    fn synthetic_simulation_is_predictable() {
        let data = generate(file_by_name("num_control").unwrap(), Scale::tiny());
        let p = profile(&data);
        assert!(p.mean_abs_delta < 10.0, "smooth field: {p:?}");
        assert!(p.distinct_exponents < 64, "{p:?}");
    }

    #[test]
    fn synthetic_message_has_padding() {
        let data = generate(file_by_name("msg_sweep3d").unwrap(), Scale::tiny());
        let p = profile(&data);
        assert!(p.zero_word_fraction > 0.02, "{p:?}");
    }
}
