//! Concurrency model tests for the lock-free telemetry sink.
//!
//! The sink is a Treiber stack of event batches: producers `push_batch`
//! via thread-local flushes while a consumer detaches the whole stack
//! with one `swap` in `take_batches`. There is no loom in this tree
//! (zero-dependency policy), so these tests explore interleavings the
//! pragmatic way: many iterations of genuinely concurrent producers and
//! consumers, with deterministic pseudo-random yield points injected
//! from a per-iteration seed to perturb the schedule.
//!
//! The properties checked are the ones a model checker would assert:
//!
//! * **Conservation** — every recorded event is drained exactly once:
//!   no event is lost when a drain races a push, and none is duplicated
//!   when two drains race each other.
//! * **ABA-freedom in practice** — nodes are never reused, so a CAS
//!   that succeeds against a stale head cannot resurrect a freed node;
//!   conservation would fail (duplicate or crash) if it did.
//! * **Flush-before-join** — events flushed by a worker before scope
//!   join are visible to an immediate drain by the joining thread.
//!
//! Run with `cargo test -p lc-telemetry --features model-check`.
//! Gated off by default: the schedules loop long enough to be slow.

#![cfg(feature = "model-check")]

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lc_telemetry::{drain, flush_thread, record, ArgValue, Event};

/// Telemetry state is process-global; serialize the tests in this binary.
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Deterministic schedule perturbation: a splitmix64 stream drives
/// whether each step yields the CPU, spins, or proceeds, so every
/// iteration explores a different (but reproducible) interleaving.
struct Schedule(u64);

impl Schedule {
    fn new(seed: u64) -> Self {
        Schedule(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Perturb the schedule at a potential interleaving point.
    fn step(&mut self) {
        match self.next() % 8 {
            0 => std::thread::yield_now(),
            1..=2 => {
                for _ in 0..(self.next() % 64) {
                    std::hint::spin_loop();
                }
            }
            _ => {}
        }
    }
}

fn tagged_event(tag: u64) -> Event {
    Event {
        name: "model",
        cat: "model-check",
        ts_ns: 0,
        dur_ns: 0,
        tid: 0, // filled by `record`
        args: vec![("tag", ArgValue::U64(tag))],
    }
}

fn tag_of(e: &Event) -> Option<u64> {
    if e.cat != "model-check" {
        return None;
    }
    match e.args.first() {
        Some(("tag", ArgValue::U64(t))) => Some(*t),
        _ => None,
    }
}

/// Producers record tagged events (flushing per-thread) while a consumer
/// drains concurrently. Every tag must come back exactly once: a lost
/// push, a drain-vs-push race dropping a batch, or a node revived after
/// free would all break the multiset equality.
#[test]
fn concurrent_push_and_drain_conserve_every_event() {
    let _g = locked();
    let _ = drain(); // clean slate

    const PRODUCERS: u64 = 4;
    const EVENTS: u64 = 300;
    const ITERS: u64 = 20;

    for iter in 0..ITERS {
        let done = AtomicU64::new(0);
        let collected = Mutex::new(Vec::<Event>::new());
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let done = &done;
                s.spawn(move || {
                    let mut sched = Schedule::new(iter * 1000 + p);
                    for i in 0..EVENTS {
                        record(tagged_event((iter * PRODUCERS + p) * EVENTS + i));
                        sched.step();
                        // Irregular flush sizes exercise partial batches
                        // racing the consumer's swap.
                        if sched.next().is_multiple_of(7) {
                            flush_thread();
                        }
                    }
                    flush_thread();
                    done.fetch_add(1, Ordering::Release);
                });
            }
            // Concurrent consumer: drains while producers are mid-push,
            // staying live until every producer has finished.
            let done = &done;
            let collected = &collected;
            s.spawn(move || {
                let mut sched = Schedule::new(iter * 7919);
                while done.load(Ordering::Acquire) < PRODUCERS {
                    let got = drain();
                    collected.lock().unwrap().extend(got);
                    sched.step();
                }
            });
        });
        // Final drain picks up whatever the concurrent consumer missed.
        let mut events = collected.into_inner().unwrap();
        events.extend(drain());

        let tags: Vec<u64> = events.iter().filter_map(tag_of).collect();
        let unique: HashSet<u64> = tags.iter().copied().collect();
        assert_eq!(
            tags.len() as u64,
            PRODUCERS * EVENTS,
            "iteration {iter}: lost or duplicated events (got {}, want {})",
            tags.len(),
            PRODUCERS * EVENTS,
        );
        assert_eq!(
            unique.len(),
            tags.len(),
            "iteration {iter}: duplicate drain of the same event"
        );
        let base = iter * PRODUCERS * EVENTS;
        assert!(
            unique
                .iter()
                .all(|t| (base..base + PRODUCERS * EVENTS).contains(t)),
            "iteration {iter}: stale event from a previous iteration leaked through"
        );
    }
}

/// Two drains racing each other must partition the stack: each pushed
/// batch goes to exactly one of them (the `swap` hands the whole list to
/// a single owner; a double-free or shared tail would double-count).
#[test]
fn racing_drains_partition_the_sink() {
    let _g = locked();
    let _ = drain();

    const ITERS: u64 = 40;
    const PRODUCERS: u64 = 3;
    const EVENTS: u64 = 200;

    for iter in 0..ITERS {
        let seen = Mutex::new(Vec::<u64>::new());
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                s.spawn(move || {
                    let mut sched = Schedule::new(iter * 31 + p);
                    for i in 0..EVENTS {
                        record(tagged_event((iter * PRODUCERS + p) * EVENTS + i));
                        if sched.next().is_multiple_of(5) {
                            flush_thread();
                        }
                        sched.step();
                    }
                    flush_thread();
                });
            }
            for d in 0..2u64 {
                let seen = &seen;
                s.spawn(move || {
                    let mut sched = Schedule::new(iter * 131 + d);
                    for _ in 0..50 {
                        let got = drain();
                        seen.lock().unwrap().extend(got.iter().filter_map(tag_of));
                        sched.step();
                    }
                });
            }
        });
        let mut tags = seen.into_inner().unwrap();
        tags.extend(drain().iter().filter_map(tag_of));
        let unique: HashSet<u64> = tags.iter().copied().collect();
        assert_eq!(
            tags.len() as u64,
            PRODUCERS * EVENTS,
            "iteration {iter}: batch lost or handed to both drains"
        );
        assert_eq!(
            unique.len(),
            tags.len(),
            "iteration {iter}: duplicated batch"
        );
    }
}

/// The documented join protocol: a worker that flushes before returning
/// is visible to a drain performed immediately after `scope` joins it —
/// no TLS-destructor race window.
#[test]
fn flush_before_join_makes_events_immediately_visible() {
    let _g = locked();
    let _ = drain();

    for iter in 0..100u64 {
        std::thread::scope(|s| {
            s.spawn(move || {
                record(tagged_event(1_000_000 + iter));
                flush_thread();
            });
        });
        // The worker is joined; its flush must already be in the sink.
        let tags: Vec<u64> = drain().iter().filter_map(tag_of).collect();
        assert_eq!(tags, vec![1_000_000 + iter], "iteration {iter}");
    }
}

/// Splitmix64 mix used to give each flight record an internal
/// consistency relation: record `i` carries `(i, mix(i))`, so any torn
/// read that stitched fields of two different records together is
/// detected by re-checking the relation.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Flight-recorder wraparound: writers push several times the ring
/// capacity while dumpers snapshot concurrently. After the writers
/// join, each writer's ring must hold *exactly* its newest `cap`
/// records — contiguous sequence numbers, none lost, none duplicated —
/// and the overwritten count must account for everything else.
#[test]
fn flight_wraparound_keeps_exactly_the_newest_capacity_records() {
    let _g = locked();
    const CAP: u64 = 256;
    const TOTAL: u64 = CAP * 4 + 37;
    const WRITERS: u64 = 3;
    lc_telemetry::flight::arm(CAP as usize);

    let tids = Mutex::new(Vec::<u64>::new());
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let tids = &tids;
            s.spawn(move || {
                tids.lock().unwrap().push(lc_telemetry::thread_id());
                let mut sched = Schedule::new(w * 97);
                for i in 0..TOTAL {
                    lc_telemetry::flight::note("model.flight.wrap", &[("i", i), ("check", mix(i))]);
                    if sched.next().is_multiple_of(64) {
                        sched.step();
                    }
                }
            });
        }
        // Concurrent dumper: snapshots taken mid-wraparound must stay
        // internally consistent even though they cannot be complete.
        s.spawn(|| {
            let mut sched = Schedule::new(4242);
            for _ in 0..40 {
                let (records, _) = lc_telemetry::flight::snapshot();
                for r in records.iter().filter(|r| r.name == "model.flight.wrap") {
                    assert_eq!(
                        r.args[1].1,
                        mix(r.args[0].1),
                        "torn record in live snapshot"
                    );
                }
                sched.step();
            }
        });
    });
    lc_telemetry::flight::disarm();

    let (records, stats) = lc_telemetry::flight::snapshot();
    let tids = tids.into_inner().unwrap();
    for tid in tids {
        let mut seqs: Vec<u64> = records
            .iter()
            .filter(|r| r.tid == tid && r.name == "model.flight.wrap")
            .map(|r| {
                assert_eq!(r.args[0].1, r.seq, "record payload matches its slot");
                assert_eq!(r.args[1].1, mix(r.args[0].1), "torn record after join");
                r.seq
            })
            .collect();
        seqs.sort_unstable();
        let expect: Vec<u64> = (TOTAL - CAP..TOTAL).collect();
        assert_eq!(seqs, expect, "exactly the newest {CAP} records survive");
    }
    assert!(
        stats.overwritten >= WRITERS * (TOTAL - CAP),
        "wraparound accounted as overwritten"
    );
}

/// Concurrent record/dump: dumps racing live writers must never observe
/// a half-written record (the seqlock discards torn slots) and must
/// never return the same `(tid, seq)` twice within one snapshot.
#[test]
fn flight_concurrent_dump_is_a_consistent_snapshot() {
    let _g = locked();
    const ITERS: u64 = 8;
    const WRITERS: u64 = 4;
    const EVENTS: u64 = 1500;
    lc_telemetry::flight::arm(128);

    for iter in 0..ITERS {
        let stop_flag = AtomicU64::new(0);
        std::thread::scope(|s| {
            let stop = &stop_flag;
            for w in 0..WRITERS {
                s.spawn(move || {
                    let mut sched = Schedule::new(iter * 1000 + w);
                    for i in 0..EVENTS {
                        let v = iter * WRITERS * EVENTS + w * EVENTS + i;
                        lc_telemetry::flight::note(
                            "model.flight.race",
                            &[("i", v), ("check", mix(v))],
                        );
                        if sched.next().is_multiple_of(32) {
                            sched.step();
                        }
                    }
                    stop.fetch_add(1, Ordering::Release);
                });
            }
            for d in 0..2u64 {
                s.spawn(move || {
                    let mut sched = Schedule::new(iter * 131 + d);
                    while stop.load(Ordering::Acquire) < WRITERS {
                        let (records, stats) = lc_telemetry::flight::snapshot();
                        let mut seen = HashSet::new();
                        for r in &records {
                            assert!(
                                seen.insert((r.tid, r.seq)),
                                "iteration {iter}: duplicate (tid,seq) in one snapshot"
                            );
                            if r.name == "model.flight.race" {
                                assert_eq!(
                                    r.args[1].1,
                                    mix(r.args[0].1),
                                    "iteration {iter}: torn record leaked through the seqlock"
                                );
                            }
                        }
                        assert!(
                            stats.recovered <= stats.written,
                            "iteration {iter}: snapshot recovered more than was written"
                        );
                        sched.step();
                    }
                });
            }
        });
    }
    lc_telemetry::flight::disarm();
}

/// Counters under full contention: `PRODUCERS × N` relaxed increments
/// from racing threads must sum exactly (the metrics side of the sink
/// shares the campaign hot path with the span machinery).
#[test]
fn contended_counter_increments_never_drop() {
    let _g = locked();
    lc_telemetry::metrics::reset();
    lc_telemetry::enable(); // Counter::add is a no-op while disabled
    static TOTAL: AtomicU64 = AtomicU64::new(0);
    TOTAL.store(0, Ordering::Relaxed);

    const THREADS: u64 = 8;
    const N: u64 = 50_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                let mut sched = Schedule::new(t);
                let c = lc_telemetry::counter("model.contended");
                for _ in 0..N {
                    c.add(1);
                    TOTAL.fetch_add(1, Ordering::Relaxed);
                    if sched.next().is_multiple_of(1024) {
                        sched.step();
                    }
                }
            });
        }
    });
    lc_telemetry::disable();
    assert_eq!(lc_telemetry::counter("model.contended").get(), THREADS * N);
    assert_eq!(TOTAL.load(Ordering::Relaxed), THREADS * N);
    lc_telemetry::metrics::reset();
}
