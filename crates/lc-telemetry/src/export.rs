//! Exporters: Chrome trace-event JSON, JSONL event logs, and metric
//! snapshots — all built on `lc-json`, so output is deterministic for a
//! given event list (insertion-ordered objects, shortest-round-trip
//! floats).

use lc_json::Value;

use crate::metrics;
use crate::Event;

/// Render events in the Chrome trace-event format (JSON object form),
/// loadable in Perfetto and `chrome://tracing`.
///
/// Every span becomes one complete (`"ph":"X"`) event; timestamps and
/// durations are microseconds (fractional — the viewer accepts floats,
/// and our source clock is nanoseconds).
pub fn chrome_trace(events: &[Event]) -> String {
    let trace_events: Vec<Value> = events
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("name", Value::from(e.name)),
                ("cat", Value::from(e.cat)),
                ("ph", Value::from("X")),
                ("ts", Value::from(e.ts_ns as f64 / 1e3)),
                ("dur", Value::from(e.dur_ns as f64 / 1e3)),
                ("pid", Value::from(1u64)),
                ("tid", Value::from(e.tid)),
            ];
            if !e.args.is_empty() {
                fields.push((
                    "args",
                    Value::object(e.args.iter().map(|(k, v)| (*k, v.to_json()))),
                ));
            }
            Value::object(fields)
        })
        .collect();
    Value::object([
        ("traceEvents", Value::array(trace_events)),
        ("displayTimeUnit", Value::from("ms")),
    ])
    .dump()
}

/// One compact JSON object per line, one line per event.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let mut fields = vec![
            ("name", Value::from(e.name)),
            ("cat", Value::from(e.cat)),
            ("ts_ns", Value::from(e.ts_ns)),
            ("dur_ns", Value::from(e.dur_ns)),
            ("tid", Value::from(e.tid)),
        ];
        for (k, v) in &e.args {
            fields.push((*k, v.to_json()));
        }
        out.push_str(&Value::object(fields).dump());
        out.push('\n');
    }
    out
}

/// Snapshot all registered counters, gauges, and histograms as a JSON
/// value: `{"counters": {...}, "gauges": {name: {value,max}},
/// "histograms": {name: {count,sum,p50,p90,p99}}}`.
pub fn metrics_value() -> Value {
    let counters = Value::object(
        metrics::counter_snapshot()
            .into_iter()
            .map(|(n, v)| (n, Value::from(v))),
    );
    let gauges = Value::object(metrics::gauge_snapshot().into_iter().map(|(n, v, max)| {
        (
            n,
            Value::object([("value", Value::from(v)), ("max", Value::from(max))]),
        )
    }));
    let histograms = Value::object(metrics::histogram_snapshot().into_iter().map(|(n, s)| {
        (
            n,
            Value::object([
                ("count", Value::from(s.count)),
                ("sum", Value::from(s.sum)),
                ("p50", Value::from(s.p50)),
                ("p90", Value::from(s.p90)),
                ("p99", Value::from(s.p99)),
            ]),
        )
    }));
    Value::object([
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArgValue;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                name: "stage_a",
                cat: "stage.encode",
                ts_ns: 1_500,
                dur_ns: 2_000,
                tid: 0,
                args: vec![
                    ("chunk", ArgValue::U64(3)),
                    ("applied", ArgValue::Bool(true)),
                ],
            },
            Event {
                name: "stage_b",
                cat: "stage.decode",
                ts_ns: 4_000,
                dur_ns: 500,
                tid: 1,
                args: vec![],
            },
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let text = chrome_trace(&sample_events());
        let v = lc_json::Value::parse(&text).expect("valid JSON");
        let evs = v["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(evs.len(), 2);
        for e in evs {
            assert_eq!(e["ph"], "X");
            assert_eq!(e["pid"], 1u64);
            assert!(e["ts"].as_f64().is_some());
            assert!(e["dur"].as_f64().is_some());
            assert!(e["name"].as_str().is_some());
        }
        // Nanoseconds → microseconds.
        assert_eq!(evs[0]["ts"], 1.5);
        assert_eq!(evs[0]["dur"], 2.0);
        assert_eq!(evs[0]["args"]["chunk"], 3u64);
        assert_eq!(evs[0]["args"]["applied"], true);
        // An event without args omits the args object entirely.
        assert!(evs[1]["args"].is_null());
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let text = events_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = lc_json::Value::parse(line).expect("valid JSON line");
            assert!(v["name"].as_str().is_some());
            assert!(v["ts_ns"].as_u64().is_some());
        }
        let first = lc_json::Value::parse(lines[0]).unwrap();
        assert_eq!(first["chunk"], 3u64);
    }

    #[test]
    fn metrics_value_contains_registered_metrics() {
        let _g = crate::tests::LOCK.lock().unwrap_or_else(|p| p.into_inner());
        crate::enable();
        metrics::counter("export.test.counter").add(11);
        metrics::histogram("export.test.hist").record(300);
        crate::disable();
        let v = metrics_value();
        assert_eq!(v["counters"]["export.test.counter"], 11u64);
        let h = &v["histograms"]["export.test.hist"];
        assert_eq!(h["count"], 1u64);
        assert!(h["p50"].as_u64().unwrap() >= 300);
        let reparsed = lc_json::Value::parse(&v.pretty()).unwrap();
        assert_eq!(reparsed, v);
    }
}
