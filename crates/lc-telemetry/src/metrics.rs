//! Counters and fixed-bucket histograms.
//!
//! Both are process-global, registered by name on first use, and updated
//! with relaxed atomics only — a counter bump or histogram record is a
//! handful of uncontended atomic adds. Registration takes a mutex, so
//! hot paths should resolve their handle once (`let h = histogram(...)`)
//! and reuse it inside loops.
//!
//! Histograms use 64 power-of-two buckets: bucket *i* counts values in
//! `[2^i, 2^(i+1))` (bucket 0 additionally holds 0). That gives ~2×
//! resolution over the full `u64` range with a fixed 512-byte footprint,
//! which is exactly what nanosecond latency distributions need. Reported
//! percentiles locate the requested rank's bucket and **linearly
//! interpolate** within it by the rank's position among the bucket's
//! samples, so quantiles are no longer pinned to power-of-two bucket
//! edges; a rank that consumes its whole bucket still reports the
//! bucket's inclusive upper bound (conservative, ≤ 2× error).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing named counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Add `n` (relaxed; only when metrics are recording).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::metrics_on() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A last-value gauge that also tracks its high-water mark.
///
/// Counters only go up; a gauge models a level (bytes resident in a
/// cache, queue depth) that rises and falls. `set` records the current
/// level and folds it into the maximum, so a snapshot shows both where
/// the level ended and how high it ever got.
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// Record the current level (relaxed; only when metrics are recording).
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::metrics_on() {
            self.value.store(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The most recently recorded level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest level ever recorded.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Number of power-of-two buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log₂ histogram of `u64` samples.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Snapshot of a histogram: count, sum, and interpolated percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// 50th-percentile sample value, interpolated within its bucket.
    pub p50: u64,
    /// Same for the 90th percentile.
    pub p90: u64,
    /// Same for the 99th percentile.
    pub p99: u64,
}

/// Bucket index for a sample: `floor(log2(v))`, with 0 and 1 in bucket 0.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Inclusive lower bound of bucket `i` (bucket 0 starts at 0).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i.min(63)
    }
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample (relaxed atomics; only when metrics are recording).
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::metrics_on() {
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            // Saturating add via CAS-free approximation: a u64 ns sum
            // overflows after ~584 years of accumulated time, so a plain
            // wrapping add is fine in practice; keep it simple.
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Percentile with within-bucket linear interpolation. The sample of
    /// rank `ceil(q * count)` is located in its log₂ bucket, then its
    /// value is estimated by interpolating between the bucket's bounds
    /// according to the rank's position among the bucket's samples. A
    /// rank that consumes the whole bucket still reports the bucket's
    /// inclusive upper bound, so a single-sample histogram reports the
    /// same conservative bound at every quantile and estimates never
    /// leave the true sample's bucket. `q` is clamped to `(0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let lower = bucket_lower_bound(i);
                let upper = bucket_upper_bound(i);
                let frac = (target - cum) as f64 / n as f64;
                let width = (upper - lower) as f64;
                return lower
                    .saturating_add((frac * width).round() as u64)
                    .min(upper);
            }
            cum += n;
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Snapshot count, sum, and p50/p90/p99.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum.load(Ordering::Relaxed),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

struct Registry {
    counters: Mutex<HashMap<String, &'static Counter>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    histograms: Mutex<HashMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(HashMap::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(HashMap::new()),
    })
}

/// Look up (or create) the counter registered under `name`.
///
/// Accepts dynamic names (e.g. `"component.RLE_4.encode.bytes"`).
/// Counters live for the process lifetime (handle and name are leaked
/// on first registration); resolve once and reuse the handle on hot
/// paths.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry()
        .counters
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if let Some(c) = reg.get(name) {
        return c;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    let c: &'static Counter = Box::leak(Box::new(Counter {
        name: leaked,
        value: AtomicU64::new(0),
    }));
    reg.insert(leaked.to_string(), c);
    c
}

/// Look up (or create) the gauge registered under `name`.
///
/// Gauges live for the process lifetime (they are leaked on first
/// registration); resolve once and reuse the handle on hot paths.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry().gauges.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(g) = reg.iter().find(|g| g.name == name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge {
        name,
        value: AtomicU64::new(0),
        max: AtomicU64::new(0),
    }));
    reg.push(g);
    g
}

/// Look up (or create) the histogram registered under `name`.
///
/// Accepts dynamic names (e.g. `"stage.encode.ns/RLE_4"`); the handle is
/// `'static`, so hot paths should resolve it once outside their loop.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = registry()
        .histograms
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if let Some(h) = reg.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    reg.insert(name.to_string(), h);
    h
}

/// Snapshot every registered counter as `(name, value)`, name-sorted.
pub fn counter_snapshot() -> Vec<(&'static str, u64)> {
    let reg = registry()
        .counters
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    let mut out: Vec<(&'static str, u64)> = reg.values().map(|c| (c.name, c.get())).collect();
    out.sort_by_key(|(n, _)| *n);
    out
}

/// Snapshot every registered gauge as `(name, value, max)`, name-sorted.
pub fn gauge_snapshot() -> Vec<(&'static str, u64, u64)> {
    let reg = registry().gauges.lock().unwrap_or_else(|p| p.into_inner());
    let mut out: Vec<(&'static str, u64, u64)> =
        reg.iter().map(|g| (g.name, g.get(), g.max())).collect();
    out.sort_by_key(|(n, _, _)| *n);
    out
}

/// Snapshot every registered histogram as `(name, summary)`, name-sorted.
pub fn histogram_snapshot() -> Vec<(String, HistogramSummary)> {
    let reg = registry()
        .histograms
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    let mut out: Vec<(String, HistogramSummary)> =
        reg.iter().map(|(n, h)| (n.clone(), h.summary())).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Zero every registered counter and histogram (registrations persist).
pub fn reset() {
    for c in registry()
        .counters
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .values()
    {
        c.value.store(0, Ordering::Relaxed);
    }
    for g in registry()
        .gauges
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
    {
        g.value.store(0, Ordering::Relaxed);
        g.max.store(0, Ordering::Relaxed);
    }
    for h in registry()
        .histograms
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .values()
    {
        h.zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        crate::tests::LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(9), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let _g = locked();
        crate::enable();
        let h = Histogram::new();
        // 90 fast samples (~100ns bucket [64,127]) + 10 slow (~1µs bucket
        // [1024,2047]): p50 and p90 land in the fast bucket, p99 in the slow.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        crate::disable();
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 100 + 10 * 1500);
        // p50: rank 50 of 90 in [64,127] → 64 + (50/90)·63 = 99.
        assert_eq!(s.p50, 99);
        // p90: rank 90 consumes the whole fast bucket → its upper bound.
        assert_eq!(s.p90, 127);
        // p99: rank 99 is the 9th of 10 in [1024,2047] → 1024 + 0.9·1023.
        assert_eq!(s.p99, 1945);
    }

    #[test]
    fn interpolated_percentiles_are_not_bucket_edges() {
        let _g = locked();
        crate::enable();
        let h = Histogram::new();
        // Uniform fill of one wide bucket: quantiles should spread across
        // it instead of all collapsing onto the 8191 edge.
        for v in 4096u64..8192 {
            h.record(v);
        }
        crate::disable();
        let p50 = h.percentile(0.50);
        let p90 = h.percentile(0.90);
        assert!(p50 > 4096 && p50 < 8191, "p50 {p50} inside the bucket");
        assert!(p90 > p50 && p90 < 8191, "p90 {p90} above p50, below edge");
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let _g = locked();
        crate::enable();
        let h = Histogram::new();
        h.record(5000);
        crate::disable();
        let ub = bucket_upper_bound(bucket_index(5000));
        assert_eq!(h.percentile(0.01), ub);
        assert_eq!(h.percentile(0.5), ub);
        assert_eq!(h.percentile(1.0), ub);
    }

    #[test]
    fn counters_accumulate_only_when_enabled() {
        let _g = locked();
        let c = counter("test.counter.gated");
        c.value.store(0, Ordering::Relaxed);
        crate::disable();
        c.add(5);
        assert_eq!(c.get(), 0);
        crate::enable();
        c.add(5);
        c.add(2);
        crate::disable();
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_tracks_level_and_high_water_mark() {
        let _g = locked();
        let g = gauge("test.gauge.level");
        g.value.store(0, Ordering::Relaxed);
        g.max.store(0, Ordering::Relaxed);
        crate::disable();
        g.set(100);
        assert_eq!(g.get(), 0, "disabled gauge records nothing");
        crate::enable();
        g.set(100);
        g.set(700);
        g.set(300);
        crate::disable();
        assert_eq!(g.get(), 300);
        assert_eq!(g.max(), 700);
        let snap = gauge_snapshot();
        let row = snap.iter().find(|(n, _, _)| *n == "test.gauge.level");
        assert_eq!(row, Some(&("test.gauge.level", 300, 700)));
    }

    #[test]
    fn registry_returns_same_handle() {
        let a = histogram("test.hist.same") as *const Histogram;
        let b = histogram("test.hist.same") as *const Histogram;
        assert_eq!(a, b);
        let c = counter("test.counter.same") as *const Counter;
        let d = counter("test.counter.same") as *const Counter;
        assert_eq!(c, d);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let _g = locked();
        crate::enable();
        let h = histogram("test.hist.concurrent");
        h.zero();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        h.record(i);
                    }
                });
            }
        });
        crate::disable();
        assert_eq!(h.count(), 4000);
    }
}
