//! First-party telemetry for the LC reproduction: span tracing, metrics,
//! and trace export. Zero external dependencies (`lc-json` is the only
//! workspace dependency, used by the exporters).
//!
//! # Design
//!
//! The paper's contribution is a *measurement*, so the reproduction must
//! be able to attribute time at the same granularity the paper does:
//! per component, per stage, per chunk. This crate provides:
//!
//! * **Spans** — [`span!`] / [`span_in!`] open an RAII guard that records
//!   a `(name, category, start, duration, thread, args)` event when
//!   dropped. Events land in a *thread-local* buffer and are pushed in
//!   batches onto a global lock-free sink (a Treiber stack of batches),
//!   so concurrent pool workers never contend on a lock on the hot path.
//! * **Counters and histograms** — monotonic [`Counter`]s and fixed
//!   64-bucket power-of-two [`Histogram`]s with p50/p90/p99 summaries.
//!   All updates are relaxed atomics.
//! * **Exporters** — [`export::chrome_trace`] (loadable in Perfetto /
//!   `chrome://tracing`), [`export::events_jsonl`] (one JSON object per
//!   line, via `lc-json`), and [`export::metrics_value`] (counter +
//!   histogram snapshot).
//!
//! # Collection modes
//!
//! Telemetry is **off** by default; every instrumentation site reduces
//! to one relaxed atomic load of a mode bitmask when nothing is
//! collecting. Three independent consumers can be switched on:
//!
//! * **Sink** ([`enable`]) — spans become [`Event`]s in the unbounded
//!   trace sink, drainable by [`drain`] for export. Memory grows with
//!   event count, so this is for bounded runs (CLI invocations,
//!   campaigns, tests), not long-running servers.
//! * **Metrics** ([`enable_metrics`], implied by [`enable`]) —
//!   counters, gauges and histograms record. Fixed memory per metric,
//!   safe to leave on forever; `lc serve` runs with metrics on.
//! * **Flight recorder** ([`flight::arm`]) — spans and notes land in
//!   fixed-capacity per-thread ring buffers that can be dumped as a
//!   JSONL "black box" at any moment, including from a panic hook. See
//!   [`flight`].
//!
//! The [`span!`] macros do not evaluate their argument expressions when
//! every consumer is off. The `bench/benches/telemetry.rs` A/B bench
//! verifies the end-to-end encode overhead of the disabled path is
//! below the noise floor (< 1%).
//!
//! # Request scoping
//!
//! A thread can carry a current *request id* ([`request_scope`]); while
//! set, every span the thread opens gets a `req` argument, so a trace
//! export can reconstruct the critical path of one request across
//! threads. `lc-parallel`'s pool propagates the submitting thread's
//! request id into its workers.
//!
//! # Clock
//!
//! Timestamps are nanoseconds since the first telemetry call in the
//! process, taken from [`Instant`] (monotonic): wall-clock steps cannot
//! produce negative durations or reorder spans.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub mod export;
pub mod flight;
pub mod metrics;

pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram, HistogramSummary};

/// Mode bitmask: which telemetry consumers are live. All hot-path
/// instrumentation reduces to one relaxed load of this byte when
/// everything is off.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Spans flow into the unbounded drainable event sink.
const MODE_SINK: u8 = 1;
/// Counters/gauges/histograms record.
const MODE_METRICS: u8 = 2;
/// The flight recorder is armed (see [`flight`]).
const MODE_FLIGHT: u8 = 4;

/// Turn full telemetry collection on: the event sink and metrics.
pub fn enable() {
    STATE.fetch_or(MODE_SINK | MODE_METRICS, Ordering::Relaxed);
}

/// Turn on metrics only (counters, gauges, histograms). Fixed memory
/// per metric — safe for long-running processes where the unbounded
/// event sink of [`enable`] would grow without limit.
pub fn enable_metrics() {
    STATE.fetch_or(MODE_METRICS, Ordering::Relaxed);
}

/// Turn the sink and metrics off (events already buffered stay
/// drainable; an armed flight recorder stays armed).
pub fn disable() {
    STATE.fetch_and(!(MODE_SINK | MODE_METRICS), Ordering::Relaxed);
}

/// Whether the event sink is collecting. One relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    STATE.load(Ordering::Relaxed) & MODE_SINK != 0
}

/// Whether metrics are recording. One relaxed atomic load.
#[inline(always)]
pub fn metrics_on() -> bool {
    STATE.load(Ordering::Relaxed) & MODE_METRICS != 0
}

/// Whether *any* consumer (sink, metrics, flight recorder) is live —
/// the gate instrumentation sites use to decide whether to open spans.
#[inline(always)]
pub fn active() -> bool {
    STATE.load(Ordering::Relaxed) != 0
}

pub(crate) fn set_flight(on: bool) {
    if on {
        STATE.fetch_or(MODE_FLIGHT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!MODE_FLIGHT, Ordering::Relaxed);
    }
}

pub(crate) fn flight_bit() -> bool {
    STATE.load(Ordering::Relaxed) & MODE_FLIGHT != 0
}

/// Monotonic epoch shared by every event in the process.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process telemetry epoch (monotonic).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Request scoping: a per-thread current request id, attached to spans.
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_REQ: Cell<u64> = const { Cell::new(0) };
}

/// The calling thread's current request id (0 = none).
#[inline]
pub fn current_request() -> u64 {
    CURRENT_REQ.with(|c| c.get())
}

/// RAII guard restoring the previous request id on drop.
pub struct RequestScope {
    prev: u64,
}

/// Mark the calling thread as working on request `req` until the
/// returned guard drops. While set, every span opened on this thread
/// carries a `req` argument and flight-recorder records are tagged with
/// it, so an export can be filtered down to one request's critical
/// path. Scopes nest; `req = 0` clears the tag for the guard's extent.
#[must_use = "the request scope ends when the guard drops"]
pub fn request_scope(req: u64) -> RequestScope {
    let prev = CURRENT_REQ.with(|c| c.replace(req));
    RequestScope { prev }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQ.with(|c| c.set(self.prev));
    }
}

/// A span/event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (owned; use for dynamic values like file names).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl ArgValue {
    /// Convert to an `lc-json` value for the exporters.
    pub fn to_json(&self) -> lc_json::Value {
        match self {
            ArgValue::U64(v) => lc_json::Value::from(*v),
            ArgValue::F64(v) => lc_json::Value::from(*v),
            ArgValue::Bool(v) => lc_json::Value::from(*v),
            ArgValue::Str(v) => lc_json::Value::from(v.as_str()),
        }
    }
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span name (component name, operation, …). `&'static` by design:
    /// names come from code, values go in `args`.
    pub name: &'static str,
    /// Category, used by trace viewers to group/filter rows.
    pub cat: &'static str,
    /// Start, nanoseconds since the process telemetry epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Telemetry thread id (dense, assigned on first use per thread).
    pub tid: u64,
    /// Key/value payload.
    pub args: Vec<(&'static str, ArgValue)>,
}

// ---------------------------------------------------------------------------
// Sink: thread-local buffers draining into a global lock-free batch stack.
// ---------------------------------------------------------------------------

/// Events held locally before a batch push (amortizes sink traffic).
const FLUSH_AT: usize = 256;

struct Node {
    batch: Vec<Event>,
    next: *mut Node,
}

/// Head of the Treiber stack of flushed batches.
static SINK: AtomicPtr<Node> = AtomicPtr::new(std::ptr::null_mut());

/// Lock-free push of one batch onto the global sink.
fn push_batch(batch: Vec<Event>) {
    if batch.is_empty() {
        return;
    }
    let node = Box::into_raw(Box::new(Node {
        batch,
        next: std::ptr::null_mut(),
    }));
    let mut head = SINK.load(Ordering::Relaxed);
    loop {
        // SAFETY: `node` was just allocated by us and is not yet shared.
        unsafe { (*node).next = head };
        match SINK.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed) {
            Ok(_) => return,
            Err(cur) => head = cur,
        }
    }
}

/// Detach the whole stack and free its nodes, returning the events.
fn take_batches() -> Vec<Event> {
    let mut head = SINK.swap(std::ptr::null_mut(), Ordering::Acquire);
    let mut out = Vec::new();
    while !head.is_null() {
        // SAFETY: the swap above made this list exclusively ours; each
        // node was created by `Box::into_raw` in `push_batch`.
        let node = unsafe { Box::from_raw(head) };
        out.extend(node.batch);
        head = node.next;
    }
    out
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Per-thread event buffer; `Drop` flushes so scoped pool workers hand
/// their events to the sink when `std::thread::scope` joins them.
struct LocalBuf {
    tid: u64,
    events: Vec<Event>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        push_batch(std::mem::take(&mut self.events));
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

/// The calling thread's telemetry thread id.
pub fn thread_id() -> u64 {
    LOCAL.with(|l| l.borrow().tid)
}

/// Record one completed event into the calling thread's buffer.
pub fn record(mut event: Event) {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        event.tid = buf.tid;
        buf.events.push(event);
        if buf.events.len() >= FLUSH_AT {
            let batch = std::mem::take(&mut buf.events);
            push_batch(batch);
        }
    });
}

/// Push the calling thread's buffered events to the global sink now.
///
/// Worker threads should call this before their closure returns. The
/// thread-local buffer also flushes via its `Drop`, but TLS destructors
/// run *after* `std::thread::scope` observes the closure finished, so a
/// scope-joining thread that drains immediately could otherwise race
/// with the flush. `lc-parallel`'s pool workers call this at loop exit.
pub fn flush_thread() {
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        let batch = std::mem::take(&mut buf.events);
        push_batch(batch);
    });
}

/// Drain every buffered event: the calling thread's local buffer plus all
/// batches worker threads flushed to the sink, sorted by start timestamp.
///
/// Threads still actively recording keep their partial local buffers;
/// call this after parallel sections have joined (pool workers flush
/// with [`flush_thread`] before exiting).
pub fn drain() -> Vec<Event> {
    flush_thread();
    let mut events = take_batches();
    events.sort_by_key(|e| (e.ts_ns, e.tid));
    events
}

/// Discard all buffered events and zero all metrics. Intended for tests
/// and A/B benches that need a clean slate.
pub fn reset() {
    let _ = drain();
    metrics::reset();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII span guard: records an [`Event`] with the span's duration when
/// dropped. A disabled guard is inert and costs nothing beyond its
/// construction branch.
pub struct Span(Option<SpanData>);

struct SpanData {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
    hist: bool,
}

impl Span {
    /// Open a live span. Prefer the [`span!`]/[`span_in!`] macros, which
    /// skip argument evaluation when telemetry is disabled.
    ///
    /// If the calling thread is inside a [`request_scope`], the span
    /// automatically carries a `req` argument with the request id.
    pub fn begin(
        cat: &'static str,
        name: &'static str,
        mut args: Vec<(&'static str, ArgValue)>,
    ) -> Span {
        let req = current_request();
        if req != 0 {
            args.push(("req", ArgValue::U64(req)));
        }
        Span(Some(SpanData {
            name,
            cat,
            start_ns: now_ns(),
            args,
            hist: false,
        }))
    }

    /// An inert span (telemetry disabled).
    #[inline(always)]
    pub fn disabled() -> Span {
        Span(None)
    }

    /// Whether this span is live.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Attach an argument after the span was opened (e.g. an outcome only
    /// known at the end of the spanned region). No-op when disabled.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(d) = &mut self.0 {
            d.args.push((key, value.into()));
        }
    }

    /// Also record this span's duration into the histogram
    /// `"<cat>.ns/<name>"` on drop. No-op when disabled.
    pub fn with_histogram(&mut self) {
        if let Some(d) = &mut self.0 {
            d.hist = true;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(d) = self.0.take() {
            let dur_ns = now_ns().saturating_sub(d.start_ns);
            if d.hist && metrics_on() {
                metrics::histogram(&format!("{}.ns/{}", d.cat, d.name)).record(dur_ns);
            }
            emit(Event {
                name: d.name,
                cat: d.cat,
                ts_ns: d.start_ns,
                dur_ns,
                tid: 0, // filled by `record`
                args: d.args,
            });
        }
    }
}

/// Route one completed event to every live event consumer: the flight
/// recorder when armed, the drainable sink when [`enabled`]. Span drops
/// funnel through here; instrumentation that hand-builds [`Event`]s
/// (e.g. the pool's per-worker summaries) should too, so flight dumps
/// see them.
pub fn emit(event: Event) {
    if flight::armed() {
        flight::record_event(&event);
    }
    if enabled() {
        record(event);
    }
}

/// Open a span in an explicit category:
/// `span_in!("stage.encode", component_name, chunk = i, applied = true)`.
///
/// Argument expressions are **not** evaluated when telemetry is disabled;
/// the whole macro is one relaxed atomic load in that case. The span is
/// live when *any* consumer is on (sink, metrics, flight recorder); its
/// event is routed to whichever consumers are live at drop.
#[macro_export]
macro_rules! span_in {
    ($cat:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::active() {
            $crate::Span::begin(
                $cat,
                $name,
                vec![$((stringify!($key), $crate::ArgValue::from($val))),*],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Open a span in the default `"lc"` category:
/// `span!("archive.encode", bytes = input.len())`.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $crate::span_in!("lc", $name $(, $key = $val)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Telemetry state is process-global; serialize the tests that touch it.
    pub(crate) static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = locked();
        reset();
        disable();
        {
            let _s = span!("nothing", x = 1u64);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn span_records_name_cat_args_and_duration() {
        let _g = locked();
        reset();
        enable();
        {
            let mut s = span_in!("cat.test", "op", a = 7u64, flag = true);
            s.arg("late", "yes");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        disable();
        let events = drain();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "op");
        assert_eq!(e.cat, "cat.test");
        assert!(e.dur_ns >= 1_000_000, "dur {} ns", e.dur_ns);
        assert_eq!(e.args[0], ("a", ArgValue::U64(7)));
        assert_eq!(e.args[1], ("flag", ArgValue::Bool(true)));
        assert_eq!(e.args[2], ("late", ArgValue::Str("yes".into())));
    }

    #[test]
    fn events_from_joined_threads_are_drained_and_sorted() {
        let _g = locked();
        reset();
        enable();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..100u64 {
                        let _sp = span!("worker_op", t = t, i = i);
                    }
                    flush_thread();
                });
            }
        });
        disable();
        let events = drain();
        assert_eq!(events.len(), 400);
        assert!(
            events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
            "sorted by ts"
        );
        let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "one tid per worker thread");
    }

    #[test]
    fn buffer_overflow_flushes_mid_thread() {
        let _g = locked();
        reset();
        enable();
        for i in 0..(FLUSH_AT * 2 + 10) {
            let _sp = span!("burst", i = i);
        }
        disable();
        assert_eq!(drain().len(), FLUSH_AT * 2 + 10);
    }

    #[test]
    fn with_histogram_feeds_duration_histogram() {
        let _g = locked();
        reset();
        enable();
        {
            let mut s = span_in!("ht", "timed");
            s.with_histogram();
        }
        disable();
        let _ = drain();
        let summary = metrics::histogram("ht.ns/timed").summary();
        assert_eq!(summary.count, 1);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
