//! Always-on flight recorder: a fixed-capacity lock-free record of the
//! most recent spans and lifecycle notes, dumpable as a JSONL "black
//! box" at any moment — including from a panic hook or on the exit path
//! of a hard abort — without stopping or coordinating with writers.
//!
//! # Design
//!
//! Each thread records into its **own** ring buffer, so the write path
//! is single-producer and entirely lock-free: no CAS loops, no shared
//! write cursor, no contention between pool workers. Rings are
//! registered in a global list (kept alive after their thread exits) so
//! a dump can merge every thread's recent history by timestamp.
//!
//! Each slot is guarded by a per-slot **sequence word** (a seqlock):
//! the writer stores an odd value before touching the payload fields
//! and the even successor after, with release/acquire fences pairing
//! the two sides. A reader that observes the same even sequence before
//! and after its payload loads knows it saw one committed record; any
//! concurrent overwrite changes the sequence and the reader discards
//! the slot. All payload fields are plain relaxed atomics, so a torn
//! read is *detected*, never undefined behavior.
//!
//! String fields (span name, category, argument keys — all `&'static
//! str` in this crate's event model) are stored as indices into a
//! process-global intern table, with a thread-local cache so steady
//! state interning takes no lock. An index that a discarded slot would
//! have produced is bounds-checked at dump time; it can never
//! dereference garbage.
//!
//! # Lifecycle
//!
//! [`arm`] switches the recorder on (it is one mode bit in the same
//! bitmask the span macros already load). From then on every dropped
//! span is recorded, as are explicit [`note`]s (drain transitions, hard
//! aborts, final accounting). [`dump_jsonl`] renders a merged snapshot;
//! [`dump_to`] publishes it atomically (temp file + rename) so a crash
//! mid-dump can never leave a torn black box; [`dump_on_panic`]
//! installs a chained panic hook that writes the dump before the
//! process dies.

use std::cell::{OnceCell, RefCell};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

use crate::{ArgValue, Event};

/// Default per-thread ring capacity (slots), used when [`arm`] is given 0.
pub const DEFAULT_CAPACITY: usize = 2048;

/// Slots-per-ring for rings created after [`arm`]; 0 until armed.
static CAPACITY: AtomicUsize = AtomicUsize::new(0);

// ---------------------------------------------------------------------------
// Interning: &'static str → small index, resolved back at dump time.
// ---------------------------------------------------------------------------

struct InternTable {
    names: Vec<&'static str>,
    /// Keyed by the string's (address, length): `&'static str`s are
    /// never deallocated, so the address is a stable identity.
    by_key: HashMap<(usize, usize), u64>,
}

fn intern_table() -> &'static Mutex<InternTable> {
    static TABLE: OnceLock<Mutex<InternTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(InternTable {
            names: Vec::new(),
            by_key: HashMap::new(),
        })
    })
}

thread_local! {
    /// Per-thread intern cache: steady-state interning is one HashMap
    /// probe, no global lock.
    static INTERN_CACHE: RefCell<HashMap<(usize, usize), u64>> = RefCell::new(HashMap::new());
}

/// Intern a static string, returning its 1-based index (0 = absent).
fn intern(s: &'static str) -> u64 {
    let key = (s.as_ptr() as usize, s.len());
    let cached = INTERN_CACHE
        .try_with(|c| c.borrow().get(&key).copied())
        .ok()
        .flatten();
    if let Some(idx) = cached {
        return idx;
    }
    let mut table = intern_table().lock().unwrap_or_else(|p| p.into_inner());
    let idx = match table.by_key.get(&key) {
        Some(&idx) => idx,
        None => {
            table.names.push(s);
            let idx = table.names.len() as u64; // 1-based
            table.by_key.insert(key, idx);
            idx
        }
    };
    drop(table);
    let _ = INTERN_CACHE.try_with(|c| {
        c.borrow_mut().insert(key, idx);
    });
    idx
}

fn resolve_names(indices: &[u64]) -> Vec<Option<&'static str>> {
    let table = intern_table().lock().unwrap_or_else(|p| p.into_inner());
    indices
        .iter()
        .map(|&idx| {
            if idx == 0 {
                None
            } else {
                table.names.get(idx as usize - 1).copied()
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Per-thread seqlock rings.
// ---------------------------------------------------------------------------

/// One ring slot. `seq` is 0 when never written, odd while the owner
/// thread is writing, and `2·(n+1)` once record number `n` is
/// committed. All payload fields are relaxed atomics: the seqlock
/// protocol detects torn reads, the atomics keep them defined.
struct Slot {
    seq: AtomicU64,
    ts_ns: AtomicU64,
    dur_ns: AtomicU64,
    req: AtomicU64,
    cat_idx: AtomicU64,
    name_idx: AtomicU64,
    k0_idx: AtomicU64,
    v0: AtomicU64,
    k1_idx: AtomicU64,
    v1: AtomicU64,
}

impl Slot {
    const fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            req: AtomicU64::new(0),
            cat_idx: AtomicU64::new(0),
            name_idx: AtomicU64::new(0),
            k0_idx: AtomicU64::new(0),
            v0: AtomicU64::new(0),
            k1_idx: AtomicU64::new(0),
            v1: AtomicU64::new(0),
        }
    }
}

/// Payload of one record, pre-interned.
struct Raw {
    ts_ns: u64,
    dur_ns: u64,
    req: u64,
    cat_idx: u64,
    name_idx: u64,
    k0_idx: u64,
    v0: u64,
    k1_idx: u64,
    v1: u64,
}

struct Ring {
    tid: u64,
    /// Power of two.
    cap: usize,
    /// Next record number to write (monotonic; record `n` lives in slot
    /// `n % cap` until overwritten by record `n + cap`).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64, cap: usize) -> Ring {
        Ring {
            tid,
            cap,
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::empty()).collect(),
        }
    }

    /// Single-writer record append (only the owning thread calls this).
    fn write(&self, r: &Raw) {
        let n = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(n as usize) & (self.cap - 1)];
        // Seqlock write side: odd marks the slot in-progress. The release
        // fence orders the odd store before the payload stores as seen
        // through any reader's acquire fence, so a reader that observed
        // payload from this write cannot still read the old sequence.
        slot.seq.store(2 * n + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.ts_ns.store(r.ts_ns, Ordering::Relaxed);
        slot.dur_ns.store(r.dur_ns, Ordering::Relaxed);
        slot.req.store(r.req, Ordering::Relaxed);
        slot.cat_idx.store(r.cat_idx, Ordering::Relaxed);
        slot.name_idx.store(r.name_idx, Ordering::Relaxed);
        slot.k0_idx.store(r.k0_idx, Ordering::Relaxed);
        slot.v0.store(r.v0, Ordering::Relaxed);
        slot.k1_idx.store(r.k1_idx, Ordering::Relaxed);
        slot.v1.store(r.v1, Ordering::Relaxed);
        // Commit: even sequence, release-paired with readers' initial
        // acquire load.
        slot.seq.store(2 * n + 2, Ordering::Release);
        self.head.store(n + 1, Ordering::Release);
    }

    /// Seqlock read side: returns the committed record in `slot_idx`, or
    /// `None` if the slot is empty, mid-write, or was overwritten while
    /// being read.
    fn read_slot(&self, slot_idx: usize) -> Option<(u64, Raw)> {
        let slot = &self.slots[slot_idx];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        let raw = Raw {
            ts_ns: slot.ts_ns.load(Ordering::Relaxed),
            dur_ns: slot.dur_ns.load(Ordering::Relaxed),
            req: slot.req.load(Ordering::Relaxed),
            cat_idx: slot.cat_idx.load(Ordering::Relaxed),
            name_idx: slot.name_idx.load(Ordering::Relaxed),
            k0_idx: slot.k0_idx.load(Ordering::Relaxed),
            v0: slot.v0.load(Ordering::Relaxed),
            k1_idx: slot.k1_idx.load(Ordering::Relaxed),
            v1: slot.v1.load(Ordering::Relaxed),
        };
        // Acquire fence pairs with the writer's release fence: if any
        // payload load above saw a later write, the re-read below sees
        // that write's odd sequence and the record is discarded.
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        if s1 != s2 {
            return None;
        }
        Some((s1 / 2 - 1, raw))
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

fn with_ring(f: impl FnOnce(&Ring)) {
    // `try_with` so a record attempted during TLS teardown is silently
    // dropped instead of panicking.
    let _ = MY_RING.try_with(|cell| {
        let ring = cell.get_or_init(|| {
            let cap = CAPACITY.load(Ordering::Relaxed).max(64).next_power_of_two();
            let ring = Arc::new(Ring::new(crate::thread_id(), cap));
            rings()
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

/// Arm the flight recorder with `capacity` slots per thread (0 picks
/// [`DEFAULT_CAPACITY`]; values round up to a power of two). Rings
/// created before re-arming keep their original capacity.
pub fn arm(capacity: usize) {
    let cap = if capacity == 0 {
        DEFAULT_CAPACITY
    } else {
        capacity.max(64).next_power_of_two()
    };
    CAPACITY.store(cap, Ordering::Relaxed);
    crate::set_flight(true);
}

/// Whether the recorder is armed. One relaxed atomic load.
#[inline(always)]
pub fn armed() -> bool {
    crate::flight_bit()
}

/// Stop recording (already-captured history stays dumpable).
pub fn disarm() {
    crate::set_flight(false);
}

fn arg_as_u64(v: &ArgValue) -> Option<u64> {
    match v {
        ArgValue::U64(x) => Some(*x),
        ArgValue::Bool(b) => Some(*b as u64),
        ArgValue::F64(_) | ArgValue::Str(_) => None,
    }
}

/// Record one completed event (span drops route here via
/// [`crate::emit`] when armed). The first two integer-valued arguments
/// are kept; string/float arguments are dropped — the flight recorder
/// trades fidelity for a guaranteed-bounded, allocation-free record.
pub fn record_event(event: &Event) {
    if !armed() {
        return;
    }
    let mut keys = [0u64; 2];
    let mut vals = [0u64; 2];
    let mut n = 0;
    for (k, v) in &event.args {
        if n == 2 {
            break;
        }
        if *k == "req" {
            continue; // carried in the dedicated req field
        }
        if let Some(x) = arg_as_u64(v) {
            keys[n] = intern(k);
            vals[n] = x;
            n += 1;
        }
    }
    let raw = Raw {
        ts_ns: event.ts_ns,
        dur_ns: event.dur_ns,
        req: crate::current_request(),
        cat_idx: intern(event.cat),
        name_idx: intern(event.name),
        k0_idx: keys[0],
        v0: vals[0],
        k1_idx: keys[1],
        v1: vals[1],
    };
    with_ring(|ring| ring.write(&raw));
}

/// Record an instant lifecycle note (category `"note"`): drain
/// transitions, hard aborts, final accounting. Up to two key/value
/// pairs are kept. No-op when the recorder is not armed.
pub fn note(name: &'static str, args: &[(&'static str, u64)]) {
    if !armed() {
        return;
    }
    let mut keys = [0u64; 2];
    let mut vals = [0u64; 2];
    for (i, (k, v)) in args.iter().take(2).enumerate() {
        keys[i] = intern(k);
        vals[i] = *v;
    }
    let raw = Raw {
        ts_ns: crate::now_ns(),
        dur_ns: 0,
        req: crate::current_request(),
        cat_idx: intern("note"),
        name_idx: intern(name),
        k0_idx: keys[0],
        v0: vals[0],
        k1_idx: keys[1],
        v1: vals[1],
    };
    with_ring(|ring| ring.write(&raw));
}

/// One record recovered from a flight-recorder snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Per-thread record number (monotonic within `tid`).
    pub seq: u64,
    /// Start, nanoseconds since the process telemetry epoch.
    pub ts_ns: u64,
    /// Duration (0 for notes).
    pub dur_ns: u64,
    /// Telemetry thread id of the recording thread.
    pub tid: u64,
    /// Request id the recording thread was scoped to (0 = none).
    pub req: u64,
    /// Category (`"note"` for lifecycle notes).
    pub cat: &'static str,
    /// Record name.
    pub name: &'static str,
    /// Up to two integer arguments.
    pub args: Vec<(&'static str, u64)>,
}

/// Accounting for one snapshot.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotStats {
    /// Records recovered into the snapshot.
    pub recovered: u64,
    /// Records ever written across all rings.
    pub written: u64,
    /// Records lost to ring wraparound (overwritten before the dump).
    pub overwritten: u64,
    /// Slots skipped because a writer was mid-record during the read.
    pub torn: u64,
}

/// Read every ring without stopping writers and return the merged
/// records sorted by `(ts_ns, tid, seq)`, plus accounting for what the
/// fixed capacity dropped.
pub fn snapshot() -> (Vec<FlightRecord>, SnapshotStats) {
    let rings: Vec<Arc<Ring>> = rings()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .cloned()
        .collect();
    let mut stats = SnapshotStats::default();
    let mut raws: Vec<(u64, u64, Raw)> = Vec::new(); // (tid, seq, payload)
    for ring in &rings {
        let head = ring.head.load(Ordering::Acquire);
        stats.written += head;
        stats.overwritten += head.saturating_sub(ring.cap as u64);
        let live = head.min(ring.cap as u64) as usize;
        let first = head.saturating_sub(ring.cap as u64);
        for slot_idx in 0..ring.cap {
            match ring.read_slot(slot_idx) {
                Some((seq, raw)) if seq >= first => raws.push((ring.tid, seq, raw)),
                Some(_) => {} // stale record already counted overwritten
                None => {
                    // Empty slots in a not-yet-full ring are expected;
                    // only count torn reads where a record should be.
                    if slot_idx < live {
                        stats.torn += 1;
                    }
                }
            }
        }
    }
    let mut indices = Vec::with_capacity(raws.len() * 4);
    for (_, _, raw) in &raws {
        indices.extend_from_slice(&[raw.cat_idx, raw.name_idx, raw.k0_idx, raw.k1_idx]);
    }
    let resolved = resolve_names(&indices);
    let mut records: Vec<FlightRecord> = raws
        .iter()
        .enumerate()
        .map(|(i, (tid, seq, raw))| {
            let name_of = |j: usize| resolved[i * 4 + j].unwrap_or("?");
            let mut args = Vec::new();
            if raw.k0_idx != 0 {
                args.push((name_of(2), raw.v0));
            }
            if raw.k1_idx != 0 {
                args.push((name_of(3), raw.v1));
            }
            FlightRecord {
                seq: *seq,
                ts_ns: raw.ts_ns,
                dur_ns: raw.dur_ns,
                tid: *tid,
                req: raw.req,
                cat: name_of(0),
                name: name_of(1),
                args,
            }
        })
        .collect();
    records.sort_by_key(|r| (r.ts_ns, r.tid, r.seq));
    stats.recovered = records.len() as u64;
    (records, stats)
}

/// Render a snapshot as JSONL: one meta line (`lc-flight/v1` schema,
/// snapshot accounting) followed by one JSON object per record, oldest
/// first.
pub fn dump_jsonl() -> String {
    let (records, stats) = snapshot();
    let mut out = String::new();
    let meta = lc_json::Value::object([
        ("flight", lc_json::Value::from("lc-flight/v1")),
        ("records", lc_json::Value::from(stats.recovered)),
        ("written", lc_json::Value::from(stats.written)),
        ("overwritten", lc_json::Value::from(stats.overwritten)),
        ("torn", lc_json::Value::from(stats.torn)),
    ]);
    out.push_str(&meta.to_string());
    out.push('\n');
    for r in &records {
        let mut fields: Vec<(&str, lc_json::Value)> = vec![
            ("ts_ns", lc_json::Value::from(r.ts_ns)),
            ("dur_ns", lc_json::Value::from(r.dur_ns)),
            ("tid", lc_json::Value::from(r.tid)),
            ("seq", lc_json::Value::from(r.seq)),
            ("cat", lc_json::Value::from(r.cat)),
            ("name", lc_json::Value::from(r.name)),
        ];
        if r.req != 0 {
            fields.push(("req", lc_json::Value::from(r.req)));
        }
        for (k, v) in &r.args {
            fields.push((k, lc_json::Value::from(*v)));
        }
        out.push_str(&lc_json::Value::object(fields).to_string());
        out.push('\n');
    }
    out
}

/// Dump to `path` with atomic publication: the JSONL is written to a
/// sibling temp file and renamed into place, so observers never see a
/// torn black box even if the dumping process dies mid-write.
pub fn dump_to(path: &Path) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    // Fsync durability is deliberately out of scope for a crash-path dump.
    // durable-exempt: black box uses its own tmp-write + rename publication.
    std::fs::write(&tmp, dump_jsonl())?;
    std::fs::rename(&tmp, path)
}

/// Install a chained panic hook that dumps the flight recorder to
/// `path` (best effort) before the previous hook runs. Installs at most
/// once per process; later calls update the dump path.
pub fn dump_on_panic(path: PathBuf) {
    static INSTALL: Once = Once::new();
    static TARGET: OnceLock<Mutex<PathBuf>> = OnceLock::new();
    let target = TARGET.get_or_init(|| Mutex::new(path.clone()));
    *target.lock().unwrap_or_else(|p| p.into_inner()) = path;
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if armed() {
                let p = TARGET
                    .get()
                    .map(|t| t.lock().unwrap_or_else(|e| e.into_inner()).clone());
                if let Some(p) = p {
                    let _ = dump_to(&p);
                }
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        crate::tests::LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records written by this test run, identified by a unique name.
    fn count_named(records: &[FlightRecord], name: &str) -> usize {
        records.iter().filter(|r| r.name == name).count()
    }

    #[test]
    fn note_and_span_land_in_snapshot() {
        let _g = locked();
        arm(64);
        note("flight.test.note", &[("a", 7), ("b", 9)]);
        {
            let mut s = crate::span_in!("flight.test", "flight.test.span", bytes = 123usize);
            s.arg("late", 5u64);
        }
        disarm();
        let (records, _) = snapshot();
        let n = records
            .iter()
            .find(|r| r.name == "flight.test.note")
            .expect("note recorded");
        assert_eq!(n.cat, "note");
        assert_eq!(n.args, vec![("a", 7), ("b", 9)]);
        let s = records
            .iter()
            .find(|r| r.name == "flight.test.span")
            .expect("span recorded");
        assert_eq!(s.cat, "flight.test");
        assert_eq!(s.args, vec![("bytes", 123), ("late", 5)]);
    }

    #[test]
    fn request_id_is_attached() {
        let _g = locked();
        arm(64);
        {
            let _scope = crate::request_scope(42);
            note("flight.test.req", &[]);
        }
        disarm();
        let (records, _) = snapshot();
        let r = records
            .iter()
            .find(|r| r.name == "flight.test.req")
            .expect("note recorded");
        assert_eq!(r.req, 42);
    }

    #[test]
    fn wraparound_keeps_latest_and_accounts_for_overwritten() {
        let _g = locked();
        arm(64);
        let total = 64 * 3 + 17;
        std::thread::spawn(move || {
            for i in 0..total {
                note("flight.test.wrap", &[("i", i)]);
            }
        })
        .join()
        .expect("writer thread");
        disarm();
        let (records, stats) = snapshot();
        let mine: Vec<&FlightRecord> = records
            .iter()
            .filter(|r| r.name == "flight.test.wrap")
            .collect();
        assert_eq!(mine.len(), 64, "ring keeps exactly its capacity");
        // The survivors are precisely the newest `cap` records, in order.
        for (k, r) in mine.iter().enumerate() {
            assert_eq!(r.args[0].1, total - 64 + k as u64);
        }
        assert!(stats.overwritten >= (total - 64), "overwrites accounted");
    }

    #[test]
    fn dump_jsonl_is_parseable_and_has_meta_line() {
        let _g = locked();
        arm(64);
        note("flight.test.jsonl", &[("x", 1)]);
        disarm();
        let dump = dump_jsonl();
        let mut lines = dump.lines();
        let meta = lc_json::Value::parse(lines.next().expect("meta line")).expect("meta parses");
        assert_eq!(
            meta.get("flight").and_then(|v| v.as_str()),
            Some("lc-flight/v1")
        );
        let mut saw = false;
        for line in lines {
            let v = lc_json::Value::parse(line).expect("record parses");
            if v.get("name").and_then(|n| n.as_str()) == Some("flight.test.jsonl") {
                assert_eq!(v.get("x").and_then(|x| x.as_u64()), Some(1));
                saw = true;
            }
        }
        assert!(saw, "dumped record present");
    }

    #[test]
    fn disarmed_recorder_records_nothing() {
        let _g = locked();
        disarm();
        let (before, _) = snapshot();
        let n = count_named(&before, "flight.test.disarmed");
        note("flight.test.disarmed", &[]);
        let (after, _) = snapshot();
        assert_eq!(count_named(&after, "flight.test.disarmed"), n);
    }
}
