//! Repo automation tasks (`cargo run -p xtask -- <task>`).
//!
//! The only task today is `lint`: a dependency-free source scan that
//! enforces three workspace invariants the compiler cannot express:
//!
//! 1. **`#![forbid(unsafe_code)]` everywhere but the allowlist.** Only
//!    `lc-core`, `lc-parallel`, and `lc-telemetry` contain audited
//!    `unsafe` (disjoint-slice writes, the archive scatter path, and
//!    the lock-free span sink). `lc-components` is a special case: it
//!    must carry `#![deny(unsafe_code)]` at the crate root and may use
//!    `unsafe` only under `src/kernels/`, the audited home of its SIMD
//!    intrinsics. Every other crate must forbid it at the crate root so
//!    a stray `unsafe` block is a compile error, not a review nit.
//! 2. **No `.unwrap()`/`.expect()` in library code.** Panics in
//!    library paths defeat the campaign runner's panic quarantine.
//!    Test modules, `src/bin/` targets, and doc comments are exempt;
//!    a deliberate panic on a checked invariant may stay if the line
//!    (or the line above it) carries an `// invariant:` comment
//!    explaining why it cannot fire.
//! 3. **Unique component registration.** Every registry name maps to
//!    exactly one component and the inventory matches the paper's 62
//!    (12 mutators + 10 shufflers + 12 predictors + 28 reducers).
//! 4. **No bare durable-state writes.** Outside `lc-chaos` (which owns
//!    the hardened writer), source must not call `std::fs::write` or
//!    `File::create` directly: durable artifacts go through
//!    `lc_chaos::fs::atomic_write` / `DurableFile` so a crash can never
//!    leave a half-written file. One-shot user-named CLI outputs may
//!    opt out with a `// durable-exempt:` comment on the same or
//!    preceding line stating why partial output is acceptable.
//! 5. **No `allow(unsafe_code)` escapes.** A crate-level `deny` can be
//!    re-`allow`ed item-by-item; outside `lc-components/src/kernels/`
//!    (and the audited allowlist crates) any `#[allow(unsafe_code)]` or
//!    `#[cfg_attr(…, allow(unsafe_code))]` attribute is rejected, so
//!    the confinement in (1) cannot be quietly tunneled around.
//! 6. **Frozen dependency graph (`DEPS_FROZEN`).** The workspace is
//!    zero-dependency by construction: every `[workspace.dependencies]`
//!    entry must be a `path` dependency inside the repo, and every
//!    member manifest may only reference workspace entries
//!    (`name.workspace = true`) or path dependencies. A version,
//!    `git`, or registry dependency anywhere fails the lint.
//!
//! Exit status is non-zero iff any diagnostic fires, so CI can run
//! `cargo run -p xtask -- lint` as a gate.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates allowed to contain `unsafe` anywhere (each carries SAFETY
/// comments).
const UNSAFE_ALLOWLIST: &[&str] = &["lc-core", "lc-parallel", "lc-telemetry"];

/// Crates where `unsafe` is denied crate-wide but re-allowed inside one
/// audited module subtree: (crate, subtree under `src/`).
const UNSAFE_CONFINED: &[(&str, &str)] = &[("lc-components", "kernels/")];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint   (got {:?})",
                other.unwrap_or("<none>")
            );
            ExitCode::FAILURE
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the workspace root")
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut diagnostics = Vec::new();

    check_forbid_unsafe(&root, &mut diagnostics);
    check_no_allow_unsafe_escapes(&root, &mut diagnostics);
    check_no_panics_in_libraries(&root, &mut diagnostics);
    check_unique_registration(&mut diagnostics);
    check_hardened_durable_writes(&root, &mut diagnostics);
    check_deps_frozen(&root, &mut diagnostics);

    if diagnostics.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        for d in &diagnostics {
            eprintln!("xtask lint: {d}");
        }
        eprintln!("xtask lint: {} violation(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

/// Every crate under `crates/` must carry `#![forbid(unsafe_code)]` at its
/// entry point unless it is on the audited allowlist. Crates in
/// [`UNSAFE_CONFINED`] must instead carry `#![deny(unsafe_code)]` at the
/// root and keep every `unsafe` token inside their audited subtree.
fn check_forbid_unsafe(root: &Path, diagnostics: &mut Vec<String>) {
    for crate_dir in crate_dirs(root) {
        let name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if UNSAFE_ALLOWLIST.contains(&name.as_str()) {
            continue;
        }
        let entry = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|p| crate_dir.join(p))
            .find(|p| p.is_file());
        let Some(entry) = entry else {
            diagnostics.push(format!("{name}: no src/lib.rs or src/main.rs found"));
            continue;
        };
        let text = fs::read_to_string(&entry).unwrap_or_default();
        if let Some((_, subtree)) = UNSAFE_CONFINED.iter().find(|(c, _)| *c == name) {
            if !text.contains("#![deny(unsafe_code)]") {
                diagnostics.push(format!(
                    "{}: missing #![deny(unsafe_code)] (crate {name} confines unsafe to src/{subtree})",
                    rel(root, &entry)
                ));
            }
            check_unsafe_confined(root, &crate_dir, subtree, diagnostics);
        } else if !text.contains("#![forbid(unsafe_code)]") {
            diagnostics.push(format!(
                "{}: missing #![forbid(unsafe_code)] (crate {name} is not on the unsafe allowlist)",
                rel(root, &entry)
            ));
        }
    }
}

/// Every `unsafe` token in the crate must live under `src/<subtree>`.
/// Occurrences of the attribute name `unsafe_code` (the deny/allow gates
/// themselves) do not count.
fn check_unsafe_confined(
    root: &Path,
    crate_dir: &Path,
    subtree: &str,
    diagnostics: &mut Vec<String>,
) {
    let src = crate_dir.join("src");
    for file in rs_files(&src) {
        if rel(&src, &file).starts_with(subtree) {
            continue; // the audited module subtree
        }
        let text = fs::read_to_string(&file).unwrap_or_default();
        for (i, line) in text.lines().enumerate() {
            let code = line.split("//").next().unwrap_or("");
            if code.contains("unsafe") && !code.replace("unsafe_code", "").contains("unsafe") {
                continue; // only the lint-gate attribute, not the keyword
            }
            if code.contains("unsafe") {
                diagnostics.push(format!(
                    "{}:{}: `unsafe` outside src/{subtree} (all intrinsics belong in the audited kernel module)",
                    rel(root, &file),
                    i + 1
                ));
            }
        }
    }
}

/// The attribute text this lint hunts for, assembled so the pattern
/// does not appear verbatim in this (scanned) file.
fn allow_unsafe_needle() -> String {
    format!("allow(unsafe{}", "_code)")
}

/// `UNSAFE_CONFINED` extension: a crate-level `deny(unsafe_code)` can be
/// re-allowed per item with `#[allow(unsafe_code)]` or
/// `#[cfg_attr(…, allow(unsafe_code))]`. Reject every such escape in
/// non-allowlisted crates outside the audited confinement subtrees, so
/// the unsafe budget cannot grow without editing the lint itself. Test
/// modules are exempt (they exercise the lint's own fixtures).
fn check_no_allow_unsafe_escapes(root: &Path, diagnostics: &mut Vec<String>) {
    let needle = allow_unsafe_needle();
    for crate_dir in crate_dirs(root) {
        let name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if UNSAFE_ALLOWLIST.contains(&name.as_str()) {
            continue;
        }
        let subtree = UNSAFE_CONFINED
            .iter()
            .find(|(c, _)| *c == name)
            .map(|(_, s)| *s);
        let src = crate_dir.join("src");
        for file in rs_files(&src) {
            if subtree.is_some_and(|s| rel(&src, &file).starts_with(s)) {
                continue; // the audited module subtree
            }
            let text = fs::read_to_string(&file).unwrap_or_default();
            for_each_non_test_line(&text, |i, line, _| {
                let code = line.split("//").next().unwrap_or("");
                if code.contains(&needle) {
                    diagnostics.push(format!(
                        "{}:{}: {} escape outside the audited unsafe subtree \
                         (confinement is not tunnelable per-item)",
                        rel(root, &file),
                        i + 1,
                        needle
                    ));
                }
            });
        }
    }
}

/// `DEPS_FROZEN`: the workspace builds with zero registry access, and
/// stays that way. Every `[workspace.dependencies]` entry in the root
/// manifest must be a `path` dependency; every dependency line in a
/// member manifest must either inherit a workspace entry
/// (`workspace = true`) or be a `path` dependency itself. Anything that
/// names a version, `git`, or registry source is a violation.
fn check_deps_frozen(root: &Path, diagnostics: &mut Vec<String>) {
    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];
    for dir in crate_dirs(root) {
        manifests.push(dir.join("Cargo.toml"));
    }
    for entry in fs::read_dir(root.join("vendor"))
        .into_iter()
        .flatten()
        .flatten()
    {
        let m = entry.path().join("Cargo.toml");
        if m.is_file() {
            manifests.push(m);
        }
    }
    for manifest in manifests {
        let text = fs::read_to_string(&manifest).unwrap_or_default();
        let mut in_deps = false;
        for (i, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.starts_with('[') {
                in_deps = trimmed.contains("dependencies");
                continue;
            }
            if !in_deps || trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let code = trimmed.split('#').next().unwrap_or("").trim();
            if code.is_empty() || !code.contains('=') {
                continue;
            }
            if code.contains("workspace = true")
                || code.contains("workspace=true")
                || code.contains("path =")
                || code.contains("path=")
            {
                continue;
            }
            diagnostics.push(format!(
                "{}:{}: non-workspace dependency {:?} — the dependency graph is \
                 frozen (path/workspace entries only; vendor externals under vendor/)",
                rel(root, &manifest),
                i + 1,
                code.split('=').next().unwrap_or(code).trim()
            ));
        }
    }
}

/// Library sources must not call `.unwrap()` / `.expect()` outside test
/// modules, unless the call site is annotated with an `// invariant:`
/// comment on the same or preceding line.
fn check_no_panics_in_libraries(root: &Path, diagnostics: &mut Vec<String>) {
    for crate_dir in crate_dirs(root) {
        let src = crate_dir.join("src");
        for file in rs_files(&src) {
            // Binary targets and the crate's own test trees are exempt:
            // panicking on bad CLI input or in a test is fine.
            let relpath = rel(&src, &file);
            if relpath.starts_with("bin/") || relpath == "main.rs" {
                continue;
            }
            scan_file_for_panics(root, &file, diagnostics);
        }
    }
}

fn scan_file_for_panics(root: &Path, file: &Path, diagnostics: &mut Vec<String>) {
    let text = match fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            diagnostics.push(format!("{}: unreadable: {e}", rel(root, file)));
            return;
        }
    };
    for_each_non_test_line(&text, |i, line, prev_line| {
        let trimmed = line.trim();
        // Strip line comments (and thereby doc comments) before matching.
        // `.expect("` (message form) rather than `.expect(` keeps domain
        // methods that happen to be called `expect` — e.g. the lc-json
        // parser's `expect(b'{')` — out of scope.
        let code = trimmed.split("//").next().unwrap_or("");
        if code.contains(".unwrap()") || code.contains(".expect(\"") {
            let excused = trimmed.contains("invariant:") || prev_line.contains("invariant:");
            if !excused {
                diagnostics.push(format!(
                    "{}:{}: .unwrap()/.expect() in library code (annotate with `// invariant:` if the panic is provably unreachable)",
                    rel(root, file),
                    i + 1
                ));
            }
        }
    });
}

/// Calls `f(line_index, line, prev_line)` for every source line that is
/// not inside a `#[cfg(test)]` item. `prev_line` is the previous raw
/// line (test or not), so annotation comments directly above a call
/// site are visible to the callback.
fn for_each_non_test_line<'a>(text: &'a str, mut f: impl FnMut(usize, &'a str, &'a str)) {
    let mut in_test_block = false;
    let mut depth = 0i64;
    let mut pending_cfg_test = false;
    let mut prev_line = "";
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if in_test_block {
            depth += brace_delta(trimmed);
            if depth <= 0 {
                in_test_block = false;
            }
            prev_line = line;
            continue;
        }
        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            prev_line = line;
            continue;
        }
        if pending_cfg_test {
            // The attribute applies to the next item; if that item is a
            // module (or any braced item), skip its whole body.
            if trimmed.starts_with('#') {
                // further attributes, keep waiting
            } else {
                depth = brace_delta(trimmed);
                if depth > 0 {
                    in_test_block = true;
                } // else: single-line item (e.g. `use` under cfg(test))
                pending_cfg_test = false;
            }
            prev_line = line;
            continue;
        }
        f(i, line, prev_line);
        prev_line = line;
    }
}

/// Source outside `lc-chaos` must route file creation through the
/// hardened writer (`lc_chaos::fs::atomic_write` / `DurableFile`), so a
/// crash mid-write can never tear a durable artifact. `// durable-exempt:`
/// on the same or preceding line opts a user-named one-shot output out.
fn check_hardened_durable_writes(root: &Path, diagnostics: &mut Vec<String>) {
    for crate_dir in crate_dirs(root) {
        let name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if name == "lc-chaos" {
            continue; // owns the hardened writer and its raw syscalls
        }
        let src = crate_dir.join("src");
        for file in rs_files(&src) {
            scan_file_for_durable_writes(root, &file, diagnostics);
        }
    }
}

fn scan_file_for_durable_writes(root: &Path, file: &Path, diagnostics: &mut Vec<String>) {
    let text = match fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            diagnostics.push(format!("{}: unreadable: {e}", rel(root, file)));
            return;
        }
    };
    for_each_non_test_line(&text, |i, line, prev_line| {
        let trimmed = line.trim();
        let code = trimmed.split("//").next().unwrap_or("");
        // Needles are split so this scanner does not flag its own source.
        let bare_create = code.contains(concat!("File::", "create("))
            && !code.contains(concat!("DurableFile::", "create"));
        let bare_write = code.contains(concat!("fs::", "write("));
        if (bare_create || bare_write)
            && !trimmed.contains("durable-exempt:")
            && !prev_line.contains("durable-exempt:")
        {
            diagnostics.push(format!(
                "{}:{}: bare File::create/fs::write (use lc_chaos::fs::atomic_write or DurableFile; annotate `// durable-exempt:` for user-named one-shot outputs)",
                rel(root, file),
                i + 1
            ));
        }
    });
}

/// The registry must hold exactly one component per name, in the paper's
/// 12/10/12/28 inventory.
fn check_unique_registration(diagnostics: &mut Vec<String>) {
    let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    for c in lc_components::all() {
        *by_name.entry(c.name()).or_insert(0) += 1;
        *by_kind.entry(c.kind().label()).or_insert(0) += 1;
    }
    for (name, count) in &by_name {
        if *count > 1 {
            diagnostics.push(format!(
                "registry: component {name} registered {count} times"
            ));
        }
    }
    let expected = [
        ("mutator", 12),
        ("shuffler", 10),
        ("predictor", 12),
        ("reducer", 28),
    ];
    for (kind, want) in expected {
        let got = by_kind.get(kind).copied().unwrap_or(0);
        if got != want {
            diagnostics.push(format!("registry: expected {want} {kind}s, found {got}"));
        }
    }
}

/// All immediate subdirectories of `crates/` that contain a Cargo.toml.
fn crate_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    dirs
}

/// Every `.rs` file under `dir`, recursively.
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).into_iter().flatten().flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn brace_delta(line: &str) -> i64 {
    let code = line.split("//").next().unwrap_or("");
    let opens = code.matches('{').count() as i64;
    let closes = code.matches('}').count() as i64;
    opens - closes
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_on_the_shipped_tree_is_clean() {
        let root = workspace_root();
        let mut diagnostics = Vec::new();
        check_forbid_unsafe(&root, &mut diagnostics);
        check_no_allow_unsafe_escapes(&root, &mut diagnostics);
        check_no_panics_in_libraries(&root, &mut diagnostics);
        check_unique_registration(&mut diagnostics);
        check_hardened_durable_writes(&root, &mut diagnostics);
        check_deps_frozen(&root, &mut diagnostics);
        assert!(diagnostics.is_empty(), "{diagnostics:#?}");
    }

    #[test]
    fn allow_unsafe_escapes_are_flagged_outside_the_subtree() {
        let root = std::env::temp_dir().join("xtask-lint-allow-escape-test");
        fs::remove_dir_all(&root).ok();
        let src = root.join("crates").join("lc-components").join("src");
        fs::create_dir_all(src.join("kernels")).unwrap();
        fs::write(
            root.join("crates").join("lc-components").join("Cargo.toml"),
            "[package]\nname = \"lc-components\"\n",
        )
        .unwrap();
        let attr = format!("#[{}]", allow_unsafe_needle());
        let cfg_attr = format!(
            "#[cfg_attr(target_arch = \"x86_64\", {}]",
            allow_unsafe_needle()
        );
        // Inside the audited subtree: fine.
        fs::write(
            src.join("kernels").join("mod.rs"),
            format!("{attr}\nmod simd;\n"),
        )
        .unwrap();
        fs::write(src.join("lib.rs"), "#![deny(unsafe_code)]\n").unwrap();
        let mut clean = Vec::new();
        check_no_allow_unsafe_escapes(&root, &mut clean);
        assert!(clean.is_empty(), "{clean:#?}");

        // Outside: both attribute spellings are rejected.
        fs::write(
            src.join("lib.rs"),
            format!("#![deny(unsafe_code)]\n{attr}\nmod escape;\n{cfg_attr}\nmod escape2;\n"),
        )
        .unwrap();
        let mut diagnostics = Vec::new();
        check_no_allow_unsafe_escapes(&root, &mut diagnostics);
        assert_eq!(diagnostics.len(), 2, "{diagnostics:#?}");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn deps_frozen_flags_external_dependencies() {
        let root = std::env::temp_dir().join("xtask-lint-deps-frozen-test");
        fs::remove_dir_all(&root).ok();
        let dir = root.join("crates").join("demo");
        fs::create_dir_all(dir.join("src")).unwrap();
        fs::write(
            dir.join("Cargo.toml"),
            "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n[dependencies]\n\
             lc-core.workspace = true\nlocal = { path = \"../local\" }\n",
        )
        .unwrap();
        let mut clean = Vec::new();
        check_deps_frozen(&root, &mut clean);
        assert!(clean.is_empty(), "{clean:#?}");

        fs::write(
            dir.join("Cargo.toml"),
            "[package]\nname = \"demo\"\n\n[dependencies]\nserde = \"1.0\"\n\n\
             [dev-dependencies]\nleft-pad = { git = \"https://example.com/x\" }\n",
        )
        .unwrap();
        let mut diagnostics = Vec::new();
        check_deps_frozen(&root, &mut diagnostics);
        assert_eq!(diagnostics.len(), 2, "{diagnostics:#?}");
        assert!(diagnostics[0].contains("serde"), "{diagnostics:#?}");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn unsafe_confinement_flags_leaks_and_allows_kernels() {
        let dir = std::env::temp_dir().join("xtask-lint-unsafe-confined-test");
        let src = dir.join("src");
        fs::create_dir_all(src.join("kernels")).unwrap();

        // Gate attributes and comments never count; the keyword outside
        // the subtree does; anything inside the subtree is fine.
        fs::write(
            src.join("lib.rs"),
            "#![deny(unsafe_code)]\n// unsafe in a comment is fine\npub mod kernels;\npub mod other;\n",
        )
        .unwrap();
        fs::write(
            src.join("kernels").join("mod.rs"),
            "#![allow(unsafe_code)]\npub fn f() { unsafe { core::hint::unreachable_unchecked() } }\n",
        )
        .unwrap();
        fs::write(src.join("other.rs"), "pub fn g() {}\n").unwrap();
        let mut clean = Vec::new();
        check_unsafe_confined(&dir, &dir, "kernels/", &mut clean);
        assert!(clean.is_empty(), "{clean:#?}");

        fs::write(
            src.join("other.rs"),
            "pub fn g(p: *const u8) -> u8 { unsafe { *p } }\n",
        )
        .unwrap();
        let mut diagnostics = Vec::new();
        check_unsafe_confined(&dir, &dir, "kernels/", &mut diagnostics);
        assert_eq!(diagnostics.len(), 1, "{diagnostics:#?}");
    }

    #[test]
    fn brace_tracking_handles_inline_comments() {
        assert_eq!(brace_delta("mod tests { // { not counted"), 1);
        assert_eq!(brace_delta("} // close"), -1);
        assert_eq!(brace_delta("fn f() {}"), 0);
    }

    #[test]
    fn durable_write_scanner_flags_and_excuses() {
        let dir = std::env::temp_dir().join("xtask-lint-durable-test");
        fs::create_dir_all(&dir).unwrap();
        let f = dir.join("sample.rs");

        fs::write(&f, "fn bad() { std::fs::write(p, b).ok(); }\n").unwrap();
        let mut diagnostics = Vec::new();
        scan_file_for_durable_writes(&dir, &f, &mut diagnostics);
        assert_eq!(diagnostics.len(), 1, "{diagnostics:#?}");

        fs::write(
            &f,
            "fn fine() {\n    // durable-exempt: user-named output.\n    std::fs::write(p, b).ok();\n}\nfn hardened() { DurableFile::create(p, policy).ok(); }\n#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(p, b).ok(); }\n}\n",
        )
        .unwrap();
        let mut clean = Vec::new();
        scan_file_for_durable_writes(&dir, &f, &mut clean);
        assert!(clean.is_empty(), "{clean:#?}");
    }

    #[test]
    fn test_blocks_are_skipped() {
        let mut diagnostics = Vec::new();
        let dir = std::env::temp_dir().join("xtask-lint-test");
        fs::create_dir_all(&dir).unwrap();
        let f = dir.join("sample.rs");
        fs::write(
            &f,
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n",
        )
        .unwrap();
        scan_file_for_panics(&dir, &f, &mut diagnostics);
        assert!(diagnostics.is_empty(), "{diagnostics:#?}");

        fs::write(&f, "fn bad() { x.unwrap(); }\n").unwrap();
        scan_file_for_panics(&dir, &f, &mut diagnostics);
        assert_eq!(diagnostics.len(), 1);

        fs::write(
            &f,
            "fn fine() { x.unwrap(); // invariant: x checked above\n}\n",
        )
        .unwrap();
        let mut clean = Vec::new();
        scan_file_for_panics(&dir, &f, &mut clean);
        assert!(clean.is_empty(), "{clean:#?}");
    }
}
