//! Machine-readable component contracts.
//!
//! A [`Contract`] is a component's declaration of the structural facts the
//! rest of the system is allowed to rely on: its kind, word granularity,
//! whether it may change the chunk size (and by how much, worst case),
//! whether encode/decode form an exact inverse pair, and what algebraic
//! shape its encoder has (see [`CommuteClass`]). The paper leans on these
//! facts implicitly — reducers appear only in the last pipeline stage,
//! copy-on-expand bounds every stage's output, size-preserving components
//! never change the length — and `lc-analyze` checks every declared claim
//! against the real implementation on adversarial inputs, so a contract is
//! never "documentation": a wrong claim is a test failure.
//!
//! Contracts also drive pipeline-space pruning: when two stage-1/stage-2
//! components provably commute ([`Contract::commutes_with`]), the pipelines
//! `(A, B, r)` and `(B, A, r)` feed byte-identical data to the reducer and
//! accumulate identical kernel statistics, so a campaign sweep only needs
//! to execute one of them (`lc-study::campaign` handles the bookkeeping).

use crate::component::ComponentKind;

/// Worst-case encoded size as an affine function of the input size:
/// `max_bytes(n) = n·num/den + add` (rounded up).
///
/// Size-preserving components use the exact bound `n` ([`ExpansionBound::exact`]);
/// reducers declare how far their framing and worst-case records can
/// expand a chunk before copy-on-expand discards the attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExpansionBound {
    /// Multiplier numerator.
    pub num: u64,
    /// Multiplier denominator (never zero).
    pub den: u64,
    /// Additive slack in bytes (framing, headers, bit padding).
    pub add: u64,
}

impl ExpansionBound {
    /// `max_bytes(n) = n` — the size-preserving bound.
    pub const fn exact() -> Self {
        Self {
            num: 1,
            den: 1,
            add: 0,
        }
    }

    /// Affine bound `n·num/den + add`.
    pub const fn affine(num: u64, den: u64, add: u64) -> Self {
        assert!(den != 0, "expansion bound denominator must be nonzero");
        Self { num, den, add }
    }

    /// Evaluate the bound for an `n`-byte input (ceiling division).
    pub fn max_bytes(&self, n: usize) -> usize {
        let scaled = (n as u64 * self.num).div_ceil(self.den);
        (scaled + self.add) as usize
    }
}

/// Whether a component may change the chunk size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// Output length always equals input length (mutators, shufflers,
    /// predictors). `encode_stage` debug-asserts this.
    Preserving,
    /// Output length may differ; copy-on-expand applies (reducers).
    Reducing,
}

/// The algebraic shape of a component's *encoder*, used to prove
/// commutation between stage-1/stage-2 pipeline prefixes.
///
/// Only shapes that make commutation decidable are named; everything else
/// is [`CommuteClass::Opaque`] and never participates in pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommuteClass {
    /// A pure function applied independently to every complete
    /// `word_size`-byte word, with trailing incomplete-word bytes passed
    /// through unchanged (TCMS, TCNB, DBEFS, DBESF). Output word `i`
    /// depends on input word `i` only, and kernel statistics depend only
    /// on the input length.
    PointwiseWordMap,
    /// A value-independent permutation of `word_size`-byte fields within
    /// each complete tuple, with the trailing incomplete tuple passed
    /// through unchanged (TUPL). The permutation depends only on the
    /// input length, and kernel statistics depend only on the length.
    WordPermutation,
    /// No algebraic structure claimed (BIT is bit-granular, predictors
    /// are neighbor-dependent, reducers are value-dependent).
    Opaque,
}

/// What an encoder's output *size and kernel statistics* are a function
/// of — the key fact behind pattern-tier equivalence classes.
///
/// A reducer whose size is determined by, say, the zero/nonzero pattern
/// of its input words produces equal-size output (with identical kernel
/// statistics) on any two inputs sharing that pattern, even when the
/// bytes differ. The abstract interpreter (`lc-analyze::absint`) uses
/// this to merge pipelines whose prefixes provably agree on the pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeDeterminant {
    /// `|encode(x)|` and both directions' kernel statistics depend only
    /// on the input length and the zero/nonzero pattern of its complete
    /// `word_size`-byte words plus the literal tail bytes' count (RZE:
    /// zero words are elided, nonzero words are emitted literally).
    ZeroPattern,
    /// `|encode(x)|` and both directions' kernel statistics depend only
    /// on the input length and the adjacent-equality pattern of its
    /// complete `word_size`-byte words (RLE/RRE: runs are collapsed, the
    /// run structure is exactly the equality pattern).
    EqualityPattern,
    /// Size may depend on the actual byte values (entropy-style reducers
    /// such as CLOG/RARE, and every size-preserving component, where the
    /// question is moot).
    Opaque,
}

/// A component's machine-readable contract. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Contract {
    /// Must equal [`crate::Component::kind`].
    pub kind: ComponentKind,
    /// Must equal [`crate::Component::word_size`].
    pub word_size: usize,
    /// Whether the encoder preserves the chunk length exactly.
    pub size: SizeClass,
    /// Worst-case encoded size (checked on adversarial inputs).
    pub expansion: ExpansionBound,
    /// `decode_chunk(encode_chunk(x)) == x` for every `x`. Every shipped
    /// component claims this; the field exists so the mutation harness can
    /// express a component whose claim is a lie.
    pub exact_inverse: bool,
    /// Name of a *different* registered component `B` such that
    /// `B.encode_chunk(self.encode_chunk(x)) == x` — an identity
    /// composition the campaign could prune. No shipped pair satisfies
    /// this; the plumbing is exercised by synthetic test components.
    pub inverse_of: Option<&'static str>,
    /// Encoder shape for commutation analysis.
    pub commute: CommuteClass,
    /// For a [`CommuteClass::PointwiseWordMap`]: the per-word function
    /// maps the all-zero word to the all-zero word (`φ(0) = 0`). With
    /// `exact_inverse` this makes the map a zero-*fixing* bijection: it
    /// preserves the zero/nonzero pattern at any granularity the word
    /// size divides. Meaningless (and `false`) for other shapes.
    pub fixes_zero: bool,
    /// `Some((base, post))`: this encoder is *extensionally equal* to the
    /// composition `post.encode ∘ base.encode` of two other registered
    /// components (DIFFMS_w = TCMS_w ∘ DIFF_w, DIFFNB_w = TCNB_w ∘
    /// DIFF_w). The rewriter de-fuses such components so algebraic rules
    /// can see through the fusion; the checker validates the claim
    /// byte-for-byte on the adversarial corpus.
    pub fused_of: Option<(&'static str, &'static str)>,
    /// `encode(encode(x)) == encode(x)` for every `x`. No shipped
    /// component is idempotent; like `inverse_of` this is plumbing for
    /// synthetic components and the mutation harness.
    pub idempotent: bool,
    /// `Some(n)`: the encoder is the *identity* on every input shorter
    /// than `n` bytes (too short to contain one complete word/tuple/
    /// delta pair), with kernel statistics still accumulated. Lets the
    /// rewriter absorb provable no-ops when the input-shape lattice
    /// bounds every chunk below `n`.
    pub noop_below: Option<usize>,
    /// What the encoded size is a function of (reducers only; every
    /// size-preserving component is trivially `Opaque` here).
    pub size_determinant: SizeDeterminant,
}

impl Contract {
    /// Contract for a size-preserving component of the given shape.
    pub const fn preserving(kind: ComponentKind, word_size: usize, commute: CommuteClass) -> Self {
        Self {
            kind,
            word_size,
            size: SizeClass::Preserving,
            expansion: ExpansionBound::exact(),
            exact_inverse: true,
            inverse_of: None,
            commute: CommuteClass::Opaque,
            fixes_zero: false,
            fused_of: None,
            idempotent: false,
            noop_below: None,
            size_determinant: SizeDeterminant::Opaque,
        }
        .with_commute(commute)
    }

    /// Contract for a reducer with the given worst-case expansion bound.
    pub const fn reducer(word_size: usize, expansion: ExpansionBound) -> Self {
        Self {
            kind: ComponentKind::Reducer,
            word_size,
            size: SizeClass::Reducing,
            expansion,
            exact_inverse: true,
            inverse_of: None,
            commute: CommuteClass::Opaque,
            fixes_zero: false,
            fused_of: None,
            idempotent: false,
            noop_below: None,
            size_determinant: SizeDeterminant::Opaque,
        }
    }

    /// Conservative contract inferred from `kind`/`word_size` alone — the
    /// default for ad-hoc [`crate::Component`] implementations (test
    /// doubles, fault injectors) that never declared anything. Claims no
    /// algebraic structure and, for reducers, a deliberately loose
    /// expansion bound.
    pub fn inferred(kind: ComponentKind, word_size: usize) -> Self {
        match kind {
            ComponentKind::Reducer => Self::reducer(word_size, ExpansionBound::affine(8, 1, 256)),
            _ => Self::preserving(kind, word_size, CommuteClass::Opaque),
        }
    }

    const fn with_commute(mut self, commute: CommuteClass) -> Self {
        self.commute = commute;
        self
    }

    /// Declare that the pointwise per-word function fixes zero
    /// (`φ(0) = 0`). See [`Contract::fixes_zero`].
    pub const fn with_fixes_zero(mut self) -> Self {
        self.fixes_zero = true;
        self
    }

    /// Declare extensional equality with `post.encode ∘ base.encode`.
    /// See [`Contract::fused_of`].
    pub const fn with_fused_of(mut self, base: &'static str, post: &'static str) -> Self {
        self.fused_of = Some((base, post));
        self
    }

    /// Declare `encode ∘ encode == encode`. See [`Contract::idempotent`].
    pub const fn with_idempotent(mut self) -> Self {
        self.idempotent = true;
        self
    }

    /// Declare the encoder is the identity on inputs shorter than `n`
    /// bytes. See [`Contract::noop_below`].
    pub const fn with_noop_below(mut self, n: usize) -> Self {
        self.noop_below = Some(n);
        self
    }

    /// Declare what the encoded size is a function of. See
    /// [`Contract::size_determinant`].
    pub const fn with_size_determinant(mut self, d: SizeDeterminant) -> Self {
        self.size_determinant = d;
        self
    }

    /// Does the encoder of `self` provably commute with the encoder of
    /// `other` — i.e. is `other.encode(self.encode(x)) ==
    /// self.encode(other.encode(x))` for every chunk `x`, with identical
    /// accumulated kernel statistics?
    ///
    /// The one decidable case in the shipped library: a pointwise map on
    /// `w`-byte words against a `W`-byte-field permutation with `w | W`.
    /// The permutation then maps complete `w`-words to complete `w`-words
    /// (its permuted region is a multiple of `W`, hence of `w`, and its
    /// tail region is untouched by the permutation and mapped identically
    /// by the pointwise component in either order), and both components'
    /// kernel statistics depend only on the input length, which neither
    /// changes.
    pub fn commutes_with(&self, other: &Contract) -> bool {
        use CommuteClass::{PointwiseWordMap, WordPermutation};
        // Commutation is only meaningful between size-preserving stages;
        // a reducer would change the length the other stage sees.
        if self.size != SizeClass::Preserving || other.size != SizeClass::Preserving {
            return false;
        }
        match (self.commute, other.commute) {
            (PointwiseWordMap, WordPermutation) => other.word_size.is_multiple_of(self.word_size),
            (WordPermutation, PointwiseWordMap) => self.word_size.is_multiple_of(other.word_size),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_bound_math() {
        let b = ExpansionBound::affine(7, 1, 16);
        assert_eq!(b.max_bytes(0), 16);
        assert_eq!(b.max_bytes(100), 716);
        let frac = ExpansionBound::affine(5, 4, 64);
        assert_eq!(frac.max_bytes(10), 13 + 64); // ceil(50/4) = 13
        assert_eq!(ExpansionBound::exact().max_bytes(123), 123);
    }

    #[test]
    fn pointwise_commutes_with_coarser_permutation() {
        let m1 = Contract::preserving(ComponentKind::Mutator, 1, CommuteClass::PointwiseWordMap);
        let m4 = Contract::preserving(ComponentKind::Mutator, 4, CommuteClass::PointwiseWordMap);
        let t2 = Contract::preserving(ComponentKind::Shuffler, 2, CommuteClass::WordPermutation);
        let t4 = Contract::preserving(ComponentKind::Shuffler, 4, CommuteClass::WordPermutation);
        assert!(m1.commutes_with(&t2));
        assert!(t2.commutes_with(&m1)); // symmetric
        assert!(m4.commutes_with(&t4));
        assert!(!m4.commutes_with(&t2)); // 4 does not divide 2
    }

    #[test]
    fn opaque_never_commutes() {
        let bit = Contract::preserving(ComponentKind::Shuffler, 4, CommuteClass::Opaque);
        let m4 = Contract::preserving(ComponentKind::Mutator, 4, CommuteClass::PointwiseWordMap);
        assert!(!bit.commutes_with(&m4));
        assert!(!m4.commutes_with(&bit));
        // Two pointwise maps do not commute in general (f∘g ≠ g∘f).
        assert!(!m4.commutes_with(&m4));
    }

    #[test]
    fn reducers_never_commute() {
        let r = Contract::reducer(4, ExpansionBound::affine(2, 1, 64));
        let m = Contract::preserving(ComponentKind::Mutator, 4, CommuteClass::PointwiseWordMap);
        assert!(!r.commutes_with(&m));
        assert_eq!(r.size, SizeClass::Reducing);
        assert!(r.exact_inverse);
    }

    #[test]
    fn absint_facts_default_off_and_build_const() {
        const C: Contract =
            Contract::preserving(ComponentKind::Mutator, 4, CommuteClass::PointwiseWordMap)
                .with_fixes_zero()
                .with_noop_below(4);
        let c: Contract = C;
        assert!(c.fixes_zero);
        assert_eq!(c.noop_below, Some(4));
        assert!(!c.idempotent);
        assert_eq!(c.fused_of, None);
        assert_eq!(c.size_determinant, SizeDeterminant::Opaque);

        const R: Contract = Contract::reducer(2, ExpansionBound::affine(2, 1, 64))
            .with_size_determinant(SizeDeterminant::ZeroPattern);
        let r: Contract = R;
        assert_eq!(r.size_determinant, SizeDeterminant::ZeroPattern);
        assert!(!r.fixes_zero);

        const F: Contract = Contract::preserving(ComponentKind::Predictor, 8, CommuteClass::Opaque)
            .with_fused_of("DIFF_8", "TCMS_8");
        assert_eq!(F.fused_of, Some(("DIFF_8", "TCMS_8")));
    }

    #[test]
    fn inferred_contracts_are_conservative() {
        let c = Contract::inferred(ComponentKind::Predictor, 8);
        assert_eq!(c.commute, CommuteClass::Opaque);
        assert_eq!(c.size, SizeClass::Preserving);
        let r = Contract::inferred(ComponentKind::Reducer, 1);
        assert_eq!(r.size, SizeClass::Reducing);
        assert!(r.expansion.max_bytes(100) >= 100);
    }
}
