//! Kernel execution statistics.
//!
//! While a component transforms a chunk it records what the equivalent GPU
//! kernel would have done: how many words it touched, how much arithmetic
//! each thread performed, its global/shared memory traffic, and how often
//! it synchronized (warp shuffles, `__syncthreads`, atomics, scan steps).
//! `gpu-sim` converts these counters into simulated kernel time for a given
//! (GPU, compiler, optimization level) — this is the substitution that
//! stands in for the paper's physical measurements.

/// Counters describing one kernel execution (or an aggregate of many).
///
/// All counters are totals across the whole (simulated) grid, not
/// per-thread values; `gpu-sim` divides by the configured parallelism.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Words processed (word size is a property of the component).
    pub words: u64,
    /// Total arithmetic/logical operations across all threads.
    pub thread_ops: u64,
    /// Bytes read from (simulated) global memory.
    pub global_reads: u64,
    /// Bytes written to (simulated) global memory.
    pub global_writes: u64,
    /// Bytes moved through (simulated) shared memory.
    pub shared_traffic: u64,
    /// Warp shuffle operations (`__shfl_*`), counted per participating lane.
    pub warp_shuffles: u64,
    /// Warp-scope synchronizations (`__syncwarp`).
    pub warp_syncs: u64,
    /// Block-scope synchronizations (`__syncthreads`).
    pub block_syncs: u64,
    /// Atomic read-modify-write operations.
    pub atomic_ops: u64,
    /// Log-depth steps of intra-chunk prefix scans / reductions.
    pub scan_steps: u64,
    /// Branches whose outcome diverges within a warp.
    pub divergent_branches: u64,
}

impl KernelStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate another counter set into this one (saturating; the
    /// counters are 64-bit so saturation is unreachable in practice but
    /// keeps aggregation panic-free under adversarial inputs).
    pub fn merge(&mut self, other: &KernelStats) {
        self.words = self.words.saturating_add(other.words);
        self.thread_ops = self.thread_ops.saturating_add(other.thread_ops);
        self.global_reads = self.global_reads.saturating_add(other.global_reads);
        self.global_writes = self.global_writes.saturating_add(other.global_writes);
        self.shared_traffic = self.shared_traffic.saturating_add(other.shared_traffic);
        self.warp_shuffles = self.warp_shuffles.saturating_add(other.warp_shuffles);
        self.warp_syncs = self.warp_syncs.saturating_add(other.warp_syncs);
        self.block_syncs = self.block_syncs.saturating_add(other.block_syncs);
        self.atomic_ops = self.atomic_ops.saturating_add(other.atomic_ops);
        self.scan_steps = self.scan_steps.saturating_add(other.scan_steps);
        self.divergent_branches = self
            .divergent_branches
            .saturating_add(other.divergent_branches);
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Scale every counter by `factor` (rounding to nearest).
    ///
    /// Kernel counters are extensive quantities — proportional to the
    /// amount of data processed — so a measurement taken on a reduced
    /// input extrapolates to the full-size input by scaling. The study
    /// harness uses this to evaluate the cost model at the paper's
    /// operating point while only transforming scaled-down data.
    pub fn scaled(&self, factor: f64) -> KernelStats {
        let f = |v: u64| (v as f64 * factor).round() as u64;
        KernelStats {
            words: f(self.words),
            thread_ops: f(self.thread_ops),
            global_reads: f(self.global_reads),
            global_writes: f(self.global_writes),
            shared_traffic: f(self.shared_traffic),
            warp_shuffles: f(self.warp_shuffles),
            warp_syncs: f(self.warp_syncs),
            block_syncs: f(self.block_syncs),
            atomic_ops: f(self.atomic_ops),
            scan_steps: f(self.scan_steps),
            divergent_branches: f(self.divergent_branches),
        }
    }
}

/// Per-stage aggregate over every chunk of an encode or decode run.
#[derive(Debug, Default, Clone)]
pub struct StageStats {
    /// Component name (e.g. `"RLE_4"`).
    pub component: String,
    /// Kernel counters summed over all chunks where the stage ran.
    pub kernel: KernelStats,
    /// Chunks on which the stage was applied.
    pub chunks_applied: u64,
    /// Chunks on which the stage was skipped (copy-on-expand, or an earlier
    /// reducer left nothing for it to do).
    pub chunks_skipped: u64,
    /// Total bytes entering the stage (applied chunks only).
    pub bytes_in: u64,
    /// Total bytes leaving the stage (applied chunks only).
    pub bytes_out: u64,
}

/// Aggregate statistics for one whole-pipeline encode or decode run.
#[derive(Debug, Default, Clone)]
pub struct PipelineStats {
    /// One entry per pipeline stage, in stage order.
    pub stages: Vec<StageStats>,
    /// Number of chunks processed.
    pub chunks: u64,
    /// Uncompressed bytes.
    pub uncompressed_bytes: u64,
    /// Compressed bytes (payload + per-chunk metadata, excluding the fixed
    /// archive header).
    pub compressed_bytes: u64,
}

impl PipelineStats {
    /// Compression ratio (uncompressed / compressed). Returns 0.0 for an
    /// empty input.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            self.uncompressed_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = KernelStats {
            words: 1,
            thread_ops: 2,
            global_reads: 3,
            global_writes: 4,
            shared_traffic: 5,
            warp_shuffles: 6,
            warp_syncs: 7,
            block_syncs: 8,
            atomic_ops: 9,
            scan_steps: 10,
            divergent_branches: 11,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.words, 2);
        assert_eq!(a.thread_ops, 4);
        assert_eq!(a.global_reads, 6);
        assert_eq!(a.global_writes, 8);
        assert_eq!(a.shared_traffic, 10);
        assert_eq!(a.warp_shuffles, 12);
        assert_eq!(a.warp_syncs, 14);
        assert_eq!(a.block_syncs, 16);
        assert_eq!(a.atomic_ops, 18);
        assert_eq!(a.scan_steps, 20);
        assert_eq!(a.divergent_branches, 22);
    }

    #[test]
    fn merge_saturates() {
        let mut a = KernelStats {
            words: u64::MAX,
            ..Default::default()
        };
        let b = KernelStats {
            words: 10,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.words, u64::MAX);
    }

    #[test]
    fn scaled_multiplies_counters() {
        let s = KernelStats {
            words: 10,
            thread_ops: 100,
            ..Default::default()
        };
        let t = s.scaled(2.5);
        assert_eq!(t.words, 25);
        assert_eq!(t.thread_ops, 250);
        assert_eq!(t.global_reads, 0);
    }

    #[test]
    fn zero_detection() {
        assert!(KernelStats::new().is_zero());
        let s = KernelStats {
            atomic_ops: 1,
            ..Default::default()
        };
        assert!(!s.is_zero());
    }

    #[test]
    fn ratio_handles_empty() {
        let p = PipelineStats::default();
        assert_eq!(p.ratio(), 0.0);
        let p = PipelineStats {
            uncompressed_bytes: 100,
            compressed_bytes: 50,
            ..Default::default()
        };
        assert!((p.ratio() - 2.0).abs() < 1e-12);
    }
}
