//! Pipelines: ordered chains of components.
//!
//! A compression pipeline applies its stages in order during encoding and
//! the inverse transformations in reverse order during decoding (paper
//! Fig. 1). The study instantiates three-stage pipelines whose final stage
//! must be a reducer (placing a non-reducer last is useless; §5).

use std::fmt;
use std::sync::Arc;

use crate::component::{Component, ComponentKind};
use crate::error::PipelineError;

/// An ordered chain of components.
#[derive(Clone)]
pub struct Pipeline {
    stages: Vec<Arc<dyn Component>>,
}

impl Pipeline {
    /// Build a pipeline from stages in application (encode) order.
    pub fn new(stages: Vec<Arc<dyn Component>>) -> Result<Self, PipelineError> {
        if stages.is_empty() {
            return Err(PipelineError::Empty);
        }
        Ok(Self { stages })
    }

    /// Build a study pipeline: exactly three stages with a reducer last.
    pub fn three_stage(
        s1: Arc<dyn Component>,
        s2: Arc<dyn Component>,
        s3: Arc<dyn Component>,
    ) -> Result<Self, PipelineError> {
        if s3.kind() != ComponentKind::Reducer {
            return Err(PipelineError::LastStageNotReducer(s3.name().to_string()));
        }
        Self::new(vec![s1, s2, s3])
    }

    /// Parse a whitespace-separated pipeline description such as
    /// `"BIT_4 DIFF_4 RZE_4"`, resolving names through `resolve`
    /// (typically `lc_components::registry::lookup`).
    pub fn parse<R>(text: &str, resolve: R) -> Result<Self, PipelineError>
    where
        R: Fn(&str) -> Option<Arc<dyn Component>>,
    {
        let mut stages = Vec::new();
        for name in text.split_whitespace() {
            let c =
                resolve(name).ok_or_else(|| PipelineError::UnknownComponent(name.to_string()))?;
            stages.push(c);
        }
        Self::new(stages)
    }

    /// The stages, in encode order.
    pub fn stages(&self) -> &[Arc<dyn Component>] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages (never true for a constructed
    /// pipeline; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Canonical space-separated description, e.g. `"BIT_4 DIFF_4 RZE_4"`.
    pub fn describe(&self) -> String {
        self.stages
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Whether every stage has the same word size (used by the paper's
    /// word-size comparison, §6.2, which omits mixed-word-size pipelines).
    pub fn uniform_word_size(&self) -> Option<usize> {
        let w = self.stages[0].word_size();
        self.stages.iter().all(|s| s.word_size() == w).then_some(w)
    }
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pipeline({})", self.describe())
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Minimal in-crate components for framework tests (the real library
    //! lives in `lc-components`; these keep lc-core's tests dependency-free).

    use super::*;
    use crate::component::{Complexity, SpanClass, WorkClass};
    use crate::error::DecodeError;
    use crate::stats::KernelStats;

    /// Identity "mutator": adds 1 to every byte (wrapping).
    pub struct AddOne;

    impl Component for AddOne {
        fn name(&self) -> &'static str {
            "ADD1_1"
        }
        fn kind(&self) -> ComponentKind {
            ComponentKind::Mutator
        }
        fn word_size(&self) -> usize {
            1
        }
        fn complexity(&self) -> Complexity {
            Complexity::new(
                WorkClass::N,
                SpanClass::Const,
                WorkClass::N,
                SpanClass::Const,
            )
        }
        fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
            stats.words += input.len() as u64;
            out.extend(input.iter().map(|b| b.wrapping_add(1)));
        }
        fn decode_chunk(
            &self,
            input: &[u8],
            out: &mut Vec<u8>,
            stats: &mut KernelStats,
        ) -> Result<(), DecodeError> {
            stats.words += input.len() as u64;
            out.extend(input.iter().map(|b| b.wrapping_sub(1)));
            Ok(())
        }
    }

    /// Toy reducer: drops trailing zero bytes, prefixing the kept length.
    /// Compresses exactly when the chunk ends in ≥ 5 zero bytes.
    pub struct DropTrailingZeros;

    impl Component for DropTrailingZeros {
        fn name(&self) -> &'static str {
            "DTZ_1"
        }
        fn kind(&self) -> ComponentKind {
            ComponentKind::Reducer
        }
        fn word_size(&self) -> usize {
            1
        }
        fn complexity(&self) -> Complexity {
            Complexity::new(
                WorkClass::N,
                SpanClass::LogN,
                WorkClass::N,
                SpanClass::Const,
            )
        }
        fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats) {
            stats.words += input.len() as u64;
            let kept = input.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
            out.extend_from_slice(&(kept as u32).to_le_bytes());
            out.extend_from_slice(&(input.len() as u32).to_le_bytes());
            out.extend_from_slice(&input[..kept]);
        }
        fn decode_chunk(
            &self,
            input: &[u8],
            out: &mut Vec<u8>,
            stats: &mut KernelStats,
        ) -> Result<(), DecodeError> {
            if input.len() < 8 {
                return Err(DecodeError::Truncated {
                    context: "DTZ header",
                });
            }
            let kept = u32::from_le_bytes(input[0..4].try_into().unwrap()) as usize;
            let total = u32::from_le_bytes(input[4..8].try_into().unwrap()) as usize;
            if input.len() != 8 + kept || kept > total {
                return Err(DecodeError::Corrupt {
                    context: "DTZ lengths",
                });
            }
            stats.words += total as u64;
            out.extend_from_slice(&input[8..]);
            out.resize(out.len() + (total - kept), 0);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::{AddOne, DropTrailingZeros};
    use super::*;

    fn resolver(name: &str) -> Option<Arc<dyn Component>> {
        match name {
            "ADD1_1" => Some(Arc::new(AddOne)),
            "DTZ_1" => Some(Arc::new(DropTrailingZeros)),
            _ => None,
        }
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert_eq!(Pipeline::new(vec![]).unwrap_err(), PipelineError::Empty);
    }

    #[test]
    fn three_stage_requires_reducer_last() {
        let err = Pipeline::three_stage(Arc::new(AddOne), Arc::new(AddOne), Arc::new(AddOne))
            .unwrap_err();
        assert_eq!(err, PipelineError::LastStageNotReducer("ADD1_1".into()));
        assert!(Pipeline::three_stage(
            Arc::new(AddOne),
            Arc::new(AddOne),
            Arc::new(DropTrailingZeros)
        )
        .is_ok());
    }

    #[test]
    fn parse_and_describe_roundtrip() {
        let p = Pipeline::parse("ADD1_1 DTZ_1", resolver).unwrap();
        assert_eq!(p.describe(), "ADD1_1 DTZ_1");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn parse_unknown_component() {
        let err = Pipeline::parse("ADD1_1 NOPE_2", resolver).unwrap_err();
        assert_eq!(err, PipelineError::UnknownComponent("NOPE_2".into()));
    }

    #[test]
    fn parse_empty_text() {
        assert_eq!(
            Pipeline::parse("  ", resolver).unwrap_err(),
            PipelineError::Empty
        );
    }

    #[test]
    fn uniform_word_size_detection() {
        let p = Pipeline::parse("ADD1_1 DTZ_1", resolver).unwrap();
        assert_eq!(p.uniform_word_size(), Some(1));
    }
}
