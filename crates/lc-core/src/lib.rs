//! Core of the LC framework reproduction.
//!
//! LC (Azami et al.) synthesizes lossless GPU compressors — *pipelines* —
//! by chaining data transformations called *components*. An input file is
//! split into 16 kB chunks that are (de)compressed independently and in
//! parallel; each chunk flows through every pipeline stage, and any stage
//! whose output would not be smaller than its input is skipped for that
//! chunk (the original bytes are forwarded and a per-chunk stage mask
//! records the skip), so the decoder can avoid that stage's work entirely.
//!
//! This crate defines:
//!
//! * [`component::Component`] — the common interface every one of the 62
//!   transformations implements (the library itself lives in
//!   `lc-components`);
//! * [`stats::KernelStats`] — the per-kernel execution statistics each
//!   component reports while it runs, consumed by the `gpu-sim` cost model;
//! * [`pipeline::Pipeline`] — an ordered chain of components;
//! * [`archive`] — the chunked compressed format plus parallel encode and
//!   decode drivers, whose output placement uses the decoupled look-back
//!   scan from `lc-parallel` exactly as the GPU encoder does;
//! * [`verify`] — round-trip checking helpers used across the test suite.

pub mod archive;
pub mod checksum;
pub mod chunk;
pub mod component;
pub mod contract;
pub mod error;
pub mod pipeline;
pub mod scratch;
pub mod stats;
pub mod stream;
pub mod verify;

pub use archive::{decode, decode_with_stats, encode, encode_with_stats, Archive, EncodeResult};
pub use chunk::CHUNK_SIZE;
pub use component::{Complexity, Component, ComponentKind, KernelVariant, SpanClass, WorkClass};
pub use contract::{CommuteClass, Contract, ExpansionBound, SizeClass, SizeDeterminant};
pub use error::{DecodeError, PipelineError};
pub use pipeline::Pipeline;
pub use scratch::{decode_stage, decode_stage_batch, encode_stage, encode_stage_batch, Scratch};
pub use stats::{KernelStats, PipelineStats, StageStats};
