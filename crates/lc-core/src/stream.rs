//! Streaming encode/decode over `std::io` readers and writers.
//!
//! The in-memory [`crate::archive`] format keeps its whole chunk table in
//! the header, which requires knowing the chunk count up front. For
//! file-to-file use with bounded memory this module provides a *streamed*
//! variant: the input is processed in windows of
//! [`StreamEncoder::WINDOW_CHUNKS`] chunks, each window compressed in
//! parallel (same pipeline semantics, same per-chunk copy-on-expand) and
//! written as one self-contained batch.
//!
//! ```text
//! magic  b"LCRS", version u8
//! stage count u8, per stage: name_len u8 + name
//! batches:
//!   u32 chunk_count          0 terminates the stream
//!   per chunk: u8 mask, u32 stored_len
//!   payloads
//! u64 total uncompressed length  (trailer)
//! u32 CRC-32 of the input        (trailer, integrity check)
//! ```
//!
//! Every chunk is 16 kB except the final chunk of the stream.

use std::io::{Read, Write};
use std::sync::Arc;

use lc_parallel::{DisjointSlice, Pool};

use crate::chunk::CHUNK_SIZE;
use crate::component::{Component, ComponentKind};
use crate::error::DecodeError;
use crate::pipeline::Pipeline;

/// Streaming-format magic bytes.
pub const STREAM_MAGIC: [u8; 4] = *b"LCRS";
/// Streaming-format version (2 added the CRC-32 trailer field).
pub const STREAM_VERSION: u8 = 2;

/// Streaming encoder state.
pub struct StreamEncoder<'p> {
    pipeline: &'p Pipeline,
    pool: Pool,
}

impl<'p> StreamEncoder<'p> {
    /// Chunks per parallel window (4 MiB of input).
    pub const WINDOW_CHUNKS: usize = 256;

    /// Create an encoder for `pipeline` using `pool`.
    pub fn new(pipeline: &'p Pipeline, pool: Pool) -> Self {
        assert!(
            pipeline.len() <= crate::archive::MAX_STAGES,
            "pipeline too deep for the chunk mask"
        );
        Self { pipeline, pool }
    }

    /// Compress everything from `input` into `output`. Returns
    /// `(uncompressed, compressed)` byte counts.
    pub fn encode<R: Read, W: Write>(
        &self,
        input: &mut R,
        output: &mut W,
    ) -> std::io::Result<(u64, u64)> {
        let mut header = Vec::new();
        header.extend_from_slice(&STREAM_MAGIC);
        header.push(STREAM_VERSION);
        header.push(self.pipeline.len() as u8);
        for s in self.pipeline.stages() {
            header.push(s.name().len() as u8);
            header.extend_from_slice(s.name().as_bytes());
        }
        output.write_all(&header)?;
        let mut written = header.len() as u64;
        let mut total_in = 0u64;

        let window_bytes = Self::WINDOW_CHUNKS * CHUNK_SIZE;
        let mut buf = vec![0u8; window_bytes];
        let mut crc = crate::checksum::Crc32::new();
        loop {
            let filled = read_full(input, &mut buf)?;
            if filled == 0 {
                break;
            }
            total_in += filled as u64;
            crc.update(&buf[..filled]);
            written += self.encode_window(&buf[..filled], output)?;
            if filled < window_bytes {
                break; // EOF inside this window
            }
        }
        // Terminator batch + trailer (length + CRC-32 of the input).
        output.write_all(&0u32.to_le_bytes())?;
        output.write_all(&total_in.to_le_bytes())?;
        output.write_all(&crc.finish().to_le_bytes())?;
        written += 16;
        Ok((total_in, written))
    }

    fn encode_window<W: Write>(&self, window: &[u8], output: &mut W) -> std::io::Result<u64> {
        let n_chunks = window.len().div_ceil(CHUNK_SIZE);
        let stages = self.pipeline.stages();
        let mut results: Vec<Option<(Vec<u8>, u8)>> = Vec::new();
        results.resize_with(n_chunks, || None);
        {
            let slots = DisjointSlice::new(&mut results);
            self.pool.run(n_chunks, |i| {
                let start = i * CHUNK_SIZE;
                let end = (start + CHUNK_SIZE).min(window.len());
                let outcome = encode_chunk_through(stages, &window[start..end]);
                // SAFETY: each index claimed exactly once by `run`.
                unsafe { *slots.get_mut(i) = Some(outcome) };
            });
        }
        let mut batch = Vec::with_capacity(window.len() / 2 + n_chunks * 5 + 4);
        batch.extend_from_slice(&(n_chunks as u32).to_le_bytes());
        for r in &results {
            let (data, mask) = r.as_ref().expect("chunk encoded"); // invariant: the pool fills every slot
            batch.push(*mask);
            batch.extend_from_slice(&(data.len() as u32).to_le_bytes());
        }
        for r in &results {
            batch.extend_from_slice(&r.as_ref().unwrap().0); // invariant: checked Some above
        }
        output.write_all(&batch)?;
        Ok(batch.len() as u64)
    }
}

fn encode_chunk_through(stages: &[Arc<dyn Component>], chunk: &[u8]) -> (Vec<u8>, u8) {
    let mut cur = chunk.to_vec();
    let mut next = Vec::with_capacity(chunk.len() + chunk.len() / 4 + 64);
    let mut mask = 0u8;
    let mut stats = crate::stats::KernelStats::new();
    for (s, comp) in stages.iter().enumerate() {
        next.clear();
        comp.encode_chunk(&cur, &mut next, &mut stats);
        let applied = match comp.kind() {
            ComponentKind::Reducer => next.len() < cur.len(),
            _ => true,
        };
        if applied {
            mask |= 1 << s;
            std::mem::swap(&mut cur, &mut next);
        }
    }
    (cur, mask)
}

fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    Ok(filled)
}

/// Decode a stream produced by [`StreamEncoder`], resolving component
/// names through `resolve`. Returns the number of bytes written.
pub fn decode_stream<R, W, F>(
    input: &mut R,
    output: &mut W,
    resolve: F,
    pool: &Pool,
) -> Result<u64, StreamError>
where
    R: Read,
    W: Write,
    F: Fn(&str) -> Option<Arc<dyn Component>>,
{
    let mut magic = [0u8; 4];
    read_exact(input, &mut magic, "magic")?;
    if magic != STREAM_MAGIC {
        return Err(StreamError::Decode(DecodeError::BadMagic));
    }
    let version = read_u8(input, "version")?;
    if version != STREAM_VERSION {
        return Err(StreamError::Decode(DecodeError::BadVersion(version)));
    }
    let n_stages = read_u8(input, "stage count")? as usize;
    if n_stages == 0 || n_stages > crate::archive::MAX_STAGES {
        return Err(StreamError::Decode(DecodeError::Corrupt {
            context: "stage count",
        }));
    }
    let mut stages: Vec<Arc<dyn Component>> = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let len = read_u8(input, "name length")? as usize;
        let mut name = vec![0u8; len];
        read_exact(input, &mut name, "stage name")?;
        let name = String::from_utf8(name).map_err(|_| {
            StreamError::Decode(DecodeError::Corrupt {
                context: "name utf8",
            })
        })?;
        let c = resolve(&name)
            .ok_or_else(|| StreamError::Decode(DecodeError::UnknownComponent(name.clone())))?;
        stages.push(c);
    }

    let mut total_out = 0u64;
    let mut crc = crate::checksum::Crc32::new();
    loop {
        let n_chunks = read_u32(input, "batch chunk count")? as usize;
        if n_chunks == 0 {
            break;
        }
        if n_chunks > StreamEncoder::WINDOW_CHUNKS {
            return Err(StreamError::Decode(DecodeError::Corrupt {
                context: "batch size",
            }));
        }
        let mut masks = Vec::with_capacity(n_chunks);
        let mut sizes = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            masks.push(read_u8(input, "chunk mask")?);
            let len = read_u32(input, "chunk length")? as usize;
            if len > CHUNK_SIZE * 2 {
                return Err(StreamError::Decode(DecodeError::Corrupt {
                    context: "chunk length",
                }));
            }
            sizes.push(len);
        }
        let mut payload = vec![0u8; sizes.iter().sum()];
        read_exact(input, &mut payload, "batch payload")?;
        // Parallel decode into per-chunk buffers, then write in order.
        let mut offsets = Vec::with_capacity(n_chunks);
        let mut pos = 0usize;
        for &s in &sizes {
            offsets.push(pos);
            pos += s;
        }
        let mut decoded: Vec<Option<Result<Vec<u8>, DecodeError>>> = Vec::new();
        decoded.resize_with(n_chunks, || None);
        {
            let slots = DisjointSlice::new(&mut decoded);
            let stages = &stages;
            let payload = &payload;
            let offsets = &offsets;
            let sizes = &sizes;
            let masks = &masks;
            pool.run(n_chunks, |i| {
                let data = &payload[offsets[i]..offsets[i] + sizes[i]];
                let res = decode_chunk_through(stages, masks[i], data);
                // SAFETY: each index claimed exactly once.
                unsafe { *slots.get_mut(i) = Some(res) };
            });
        }
        for d in decoded {
            let chunk = d.expect("decoded").map_err(StreamError::Decode)?; // invariant: the pool fills every slot
            total_out += chunk.len() as u64;
            crc.update(&chunk);
            output.write_all(&chunk)?;
        }
    }
    let declared = read_u64(input, "trailer length")?;
    if declared != total_out {
        return Err(StreamError::Decode(DecodeError::LengthMismatch {
            expected: declared,
            actual: total_out,
        }));
    }
    let declared_crc = read_u32(input, "trailer checksum")?;
    let actual_crc = crc.finish();
    if declared_crc != actual_crc {
        return Err(StreamError::Decode(DecodeError::ChecksumMismatch {
            expected: declared_crc,
            actual: actual_crc,
        }));
    }
    Ok(total_out)
}

fn decode_chunk_through(
    stages: &[Arc<dyn Component>],
    mask: u8,
    data: &[u8],
) -> Result<Vec<u8>, DecodeError> {
    let mut cur = data.to_vec();
    let mut next = Vec::with_capacity(CHUNK_SIZE);
    let mut stats = crate::stats::KernelStats::new();
    for (s, comp) in stages.iter().enumerate().rev() {
        if mask & (1 << s) == 0 {
            continue;
        }
        next.clear();
        comp.decode_chunk(&cur, &mut next, &mut stats)?;
        std::mem::swap(&mut cur, &mut next);
    }
    Ok(cur)
}

fn read_exact<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), StreamError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StreamError::Decode(DecodeError::Truncated { context })
        } else {
            StreamError::Io(e)
        }
    })
}

fn read_u8<R: Read>(r: &mut R, context: &'static str) -> Result<u8, StreamError> {
    let mut b = [0u8; 1];
    read_exact(r, &mut b, context)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R, context: &'static str) -> Result<u32, StreamError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, context)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R, context: &'static str) -> Result<u64, StreamError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, context)?;
    Ok(u64::from_le_bytes(b))
}

/// Errors from streaming (de)compression: either transport I/O or a
/// malformed stream.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying reader/writer failure.
    Io(std::io::Error),
    /// Malformed stream contents.
    Decode(DecodeError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "i/o error: {e}"),
            StreamError::Decode(e) => write!(f, "stream error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::test_support::{AddOne, DropTrailingZeros};

    fn resolver(name: &str) -> Option<Arc<dyn Component>> {
        match name {
            "ADD1_1" => Some(Arc::new(AddOne)),
            "DTZ_1" => Some(Arc::new(DropTrailingZeros)),
            _ => None,
        }
    }

    fn pipeline() -> Pipeline {
        Pipeline::parse("ADD1_1 DTZ_1", resolver).unwrap()
    }

    fn roundtrip(data: &[u8]) -> u64 {
        let pool = Pool::new(4);
        let p = pipeline();
        let enc = StreamEncoder::new(&p, pool);
        let mut compressed = Vec::new();
        let (read, written) = enc.encode(&mut &data[..], &mut compressed).unwrap();
        assert_eq!(read, data.len() as u64);
        assert_eq!(written, compressed.len() as u64);
        let mut out = Vec::new();
        let n = decode_stream(&mut &compressed[..], &mut out, resolver, &pool).unwrap();
        assert_eq!(out, data);
        n
    }

    #[test]
    fn stream_roundtrip_empty() {
        assert_eq!(roundtrip(&[]), 0);
    }

    #[test]
    fn stream_roundtrip_single_byte() {
        roundtrip(&[7]);
    }

    #[test]
    fn stream_roundtrip_multiple_windows() {
        // > WINDOW_CHUNKS chunks forces several batches.
        let len = (StreamEncoder::WINDOW_CHUNKS + 3) * CHUNK_SIZE + 17;
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn stream_roundtrip_exact_window() {
        let len = StreamEncoder::WINDOW_CHUNKS * CHUNK_SIZE;
        let data: Vec<u8> = (0..len).map(|i| (i % 13) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn stream_truncation_is_an_error() {
        let data: Vec<u8> = (0..CHUNK_SIZE * 2).map(|i| (i % 7) as u8).collect();
        let pool = Pool::new(2);
        let p = pipeline();
        let enc = StreamEncoder::new(&p, pool);
        let mut compressed = Vec::new();
        enc.encode(&mut &data[..], &mut compressed).unwrap();
        for cut in [0, 3, 5, 10, compressed.len() / 2, compressed.len() - 1] {
            let mut out = Vec::new();
            assert!(
                decode_stream(&mut &compressed[..cut], &mut out, resolver, &pool).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn stream_bad_trailer_detected() {
        let data = vec![5u8; CHUNK_SIZE];
        let pool = Pool::new(2);
        let p = pipeline();
        let enc = StreamEncoder::new(&p, pool);
        let mut compressed = Vec::new();
        enc.encode(&mut &data[..], &mut compressed).unwrap();
        let n = compressed.len();
        // Corrupt the CRC (last 4 bytes).
        compressed[n - 1] ^= 0xFF;
        let mut out = Vec::new();
        let err = decode_stream(&mut &compressed[..], &mut out, resolver, &pool).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Decode(DecodeError::ChecksumMismatch { .. })
        ));
        // Corrupt the declared length instead.
        compressed[n - 1] ^= 0xFF; // restore crc
        compressed[n - 6] ^= 0xFF; // inside the u64 length
        let mut out = Vec::new();
        let err = decode_stream(&mut &compressed[..], &mut out, resolver, &pool).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Decode(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn stream_agrees_with_in_memory_archive_payloads() {
        // Both formats must produce identical per-chunk payloads (same
        // pipeline semantics); only the framing differs.
        let data: Vec<u8> = (0..CHUNK_SIZE * 3 + 99).map(|i| (i % 17) as u8).collect();
        let pool = Pool::new(2);
        let p = pipeline();
        let a = crate::archive::encode(&p, &data, &pool);
        let enc = StreamEncoder::new(&p, pool);
        let mut s = Vec::new();
        enc.encode(&mut &data[..], &mut s).unwrap();
        // Compare total payload volume (headers differ).
        let header = crate::archive::parse_header(&a).unwrap();
        let archive_payload = a.len() - header.payload_offset;
        // Stream: header(6+names) + batch framing(4) + per chunk 5 bytes +
        // payload + terminator(4) + trailer(8 length + 4 crc)
        let names_len: usize = pipeline().stages().iter().map(|c| 1 + c.name().len()).sum();
        let stream_payload = s.len() - (6 + names_len) - 4 - 4 * 5 - 4 - 12;
        assert_eq!(archive_payload, stream_payload);
    }
}
