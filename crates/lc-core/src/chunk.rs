//! Chunk geometry.
//!
//! LC operates on fixed 16 kB chunks: each chunk is assigned to one
//! 512-thread block on the GPU (here: one pool task), and all intra-chunk
//! state fits in shared memory. The last chunk of a file may be short.

/// Chunk size in bytes (16 kB, matching LC).
pub const CHUNK_SIZE: usize = 16 * 1024;

/// Number of chunks needed for `len` input bytes. Zero-length input has
/// zero chunks.
pub fn chunk_count(len: usize) -> usize {
    len.div_ceil(CHUNK_SIZE)
}

/// Byte range of chunk `i` within an input of `len` bytes.
///
/// # Panics
///
/// Panics if `i >= chunk_count(len)`.
pub fn chunk_range(i: usize, len: usize) -> std::ops::Range<usize> {
    let start = i * CHUNK_SIZE;
    assert!(start < len, "chunk index {i} out of range for {len} bytes");
    start..(start + CHUNK_SIZE).min(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_zero() {
        assert_eq!(chunk_count(0), 0);
    }

    #[test]
    fn count_exact_multiple() {
        assert_eq!(chunk_count(CHUNK_SIZE), 1);
        assert_eq!(chunk_count(4 * CHUNK_SIZE), 4);
    }

    #[test]
    fn count_with_tail() {
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(CHUNK_SIZE + 1), 2);
        assert_eq!(chunk_count(3 * CHUNK_SIZE - 1), 3);
    }

    #[test]
    fn ranges_tile_the_input() {
        let len = 5 * CHUNK_SIZE + 123;
        let n = chunk_count(len);
        let mut covered = 0;
        for i in 0..n {
            let r = chunk_range(i, len);
            assert_eq!(r.start, covered);
            covered = r.end;
            if i + 1 < n {
                assert_eq!(r.len(), CHUNK_SIZE);
            }
        }
        assert_eq!(covered, len);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_out_of_bounds_panics() {
        chunk_range(1, CHUNK_SIZE);
    }
}
