//! CRC-32 (IEEE 802.3) integrity checksums.
//!
//! Bit-flip fault injection shows that a corrupted archive can decode
//! "successfully" into different bytes (e.g. a flipped value inside an
//! RLE literal region is indistinguishable from data). Version 2 of the
//! archive format therefore records a CRC-32 of the original input; the
//! decoder verifies it and turns silent corruption into a
//! [`crate::DecodeError::ChecksumMismatch`].
//!
//! Implemented from scratch (reflected polynomial `0xEDB8_8320`) — no
//! dependency needed for a page of table code. The hot path is
//! **slice-by-8**: eight 256-entry tables let [`Crc32::update`] fold
//! eight input bytes per step instead of one, cutting the
//! byte-at-a-time loop's serial dependency chain from 8 table lookups
//! per 8 bytes *in sequence* to 8 *independent* lookups XORed together.
//! Archive v3 checksums every chunk on both the encode and decode paths
//! (plus the whole stream once per direction), so this is hot: it runs
//! over every byte the archive touches, twice.
//!
//! The scalar loop is kept as [`Crc32::update_scalar`]; a differential
//! test asserts the two produce identical digests on randomized inputs
//! at every length and alignment.

/// Eight lazily built 256-entry CRC tables.
///
/// `t[0]` is the classic byte-at-a-time table; `t[k][i]` extends the
/// lookup to a byte `k` positions earlier in the 8-byte word
/// (`t[k][i] = (t[k-1][i] >> 8) ^ t[0][t[k-1][i] & 0xFF]`).
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes: slice-by-8 over the 8-byte-aligned body, scalar
    /// over the tail. Digest-identical to [`Crc32::update_scalar`] at
    /// every split point, so streaming callers may mix chunk sizes
    /// freely.
    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut state = self.state;
        let mut words = data.chunks_exact(8);
        for w in words.by_ref() {
            let lo = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) ^ state;
            let hi = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
            state = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in words.remainder() {
            state = t[0][((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
        }
        self.state = state;
    }

    /// Absorb bytes one at a time — the reference implementation the
    /// slice-by-8 path is differentially tested against.
    pub fn update_scalar(&mut self, data: &[u8]) {
        let t = &tables()[0];
        for &b in data {
            self.state = t[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Final digest.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// CRC-32 of chunked data processed in parallel-friendly pieces: CRCs
/// cannot be merged cheaply without carry-less multiplication, so the
/// archive checksums the *original* byte stream sequentially — slice-by-8
/// at multiple GB/s, this is far from the bottleneck.
pub fn crc32_chunks<'a>(chunks: impl Iterator<Item = &'a [u8]>) -> u32 {
    let mut c = Crc32::new();
    for chunk in chunks {
        c.update(chunk);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let mut c = Crc32::new();
        for part in data.chunks(97) {
            c.update(part);
        }
        assert_eq!(c.finish(), crc32(&data));
        assert_eq!(crc32_chunks(data.chunks(333)), crc32(&data));
    }

    /// xorshift64*: deterministic pseudo-random bytes for the
    /// differential test, no RNG dependency needed.
    fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn slice_by_8_matches_scalar_on_random_inputs() {
        // Every length 0..64 exercises all head/tail split shapes; the
        // longer sizes exercise a body of many 8-byte words. Offsets
        // shift the slice start so unaligned bodies are covered too.
        let lens: Vec<usize> = (0..64usize).chain([255, 1024, 16 * 1024 + 7]).collect();
        for (s, &len) in lens.iter().enumerate() {
            let data = random_bytes(0x9E37_79B9_7F4A_7C15 ^ s as u64, len + 3);
            for offset in 0..3.min(len + 1) {
                let slice = &data[offset..offset + len];
                let mut fast = Crc32::new();
                fast.update(slice);
                let mut slow = Crc32::new();
                slow.update_scalar(slice);
                assert_eq!(
                    fast.finish(),
                    slow.finish(),
                    "digest mismatch at len={len} offset={offset}"
                );
            }
        }
    }

    #[test]
    fn slice_by_8_matches_scalar_across_stream_splits() {
        let data = random_bytes(42, 4096);
        for split in [0, 1, 7, 8, 9, 63, 1000, 4096] {
            let mut fast = Crc32::new();
            fast.update(&data[..split]);
            fast.update(&data[split..]);
            let mut slow = Crc32::new();
            slow.update_scalar(&data);
            assert_eq!(fast.finish(), slow.finish(), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..4096).map(|i| (i * 7 % 256) as u8).collect();
        let reference = crc32(&data);
        for pos in (0..data.len()).step_by(127) {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[pos] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "missed flip at {pos}.{bit}");
            }
        }
    }
}
