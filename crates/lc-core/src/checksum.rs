//! CRC-32 (IEEE 802.3) integrity checksums.
//!
//! Bit-flip fault injection shows that a corrupted archive can decode
//! "successfully" into different bytes (e.g. a flipped value inside an
//! RLE literal region is indistinguishable from data). Version 2 of the
//! archive format therefore records a CRC-32 of the original input; the
//! decoder verifies it and turns silent corruption into a
//! [`crate::DecodeError::ChecksumMismatch`].
//!
//! Implemented from scratch (table-driven, reflected polynomial
//! `0xEDB88320`) — no dependency needed for 30 lines of table code.

/// Lazily built 256-entry CRC table.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Final digest.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

/// CRC-32 of chunked data processed in parallel-friendly pieces: CRCs
/// cannot be merged cheaply without carry-less multiplication, so the
/// archive checksums the *original* byte stream sequentially — at
/// ~1 GB/s table-driven this is far from the bottleneck.
pub fn crc32_chunks<'a>(chunks: impl Iterator<Item = &'a [u8]>) -> u32 {
    let mut c = Crc32::new();
    for chunk in chunks {
        c.update(chunk);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let mut c = Crc32::new();
        for part in data.chunks(97) {
            c.update(part);
        }
        assert_eq!(c.finish(), crc32(&data));
        assert_eq!(crc32_chunks(data.chunks(333)), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..4096).map(|i| (i * 7 % 256) as u8).collect();
        let reference = crc32(&data);
        for pos in (0..data.len()).step_by(127) {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[pos] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "missed flip at {pos}.{bit}");
            }
        }
    }
}
