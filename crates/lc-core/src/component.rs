//! The common component interface.
//!
//! Every LC transformation — mutator, shuffler, predictor, or reducer — is
//! given a block of input data (one chunk) and transforms it into a block
//! of output data that feeds the next stage (paper §1, Fig. 1). Only
//! reducers may change the data size.

use crate::contract::Contract;
use crate::error::DecodeError;
use crate::stats::KernelStats;

/// The four component categories of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentKind {
    /// Computationally transforms each value in place (DBEFS, DBESF, TCMS,
    /// TCNB). Never changes the size.
    Mutator,
    /// Rearranges values without computing on them (BIT, TUPL). Never
    /// changes the size.
    Shuffler,
    /// Replaces values with prediction residuals (DIFF, DIFFMS, DIFFNB).
    /// Never changes the size.
    Predictor,
    /// Exploits redundancy to shrink the data (CLOG, HCLOG, RARE, RAZE,
    /// RLE, RRE, RZE). The only kind that can compress.
    Reducer,
}

impl ComponentKind {
    /// All four kinds, in the paper's Table 1 column order.
    pub const ALL: [ComponentKind; 4] = [
        ComponentKind::Mutator,
        ComponentKind::Shuffler,
        ComponentKind::Predictor,
        ComponentKind::Reducer,
    ];

    /// Lower-case label used in figures ("mutator", ...).
    pub fn label(&self) -> &'static str {
        match self {
            ComponentKind::Mutator => "mutator",
            ComponentKind::Shuffler => "shuffler",
            ComponentKind::Predictor => "predictor",
            ComponentKind::Reducer => "reducer",
        }
    }
}

/// Asymptotic work of one direction of a component (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkClass {
    /// Θ(n) in the number of words.
    N,
    /// Θ(n log w) — only BIT.
    NLogW,
}

/// Asymptotic span (critical path) of one direction (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanClass {
    /// Θ(1).
    Const,
    /// Θ(log w) — only BIT.
    LogW,
    /// Θ(log n) — components built on intra-chunk scans.
    LogN,
}

/// Work/span complexities of a component's encoder and decoder,
/// mirroring paper Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Complexity {
    /// Encoder work.
    pub enc_work: WorkClass,
    /// Encoder span.
    pub enc_span: SpanClass,
    /// Decoder work.
    pub dec_work: WorkClass,
    /// Decoder span.
    pub dec_span: SpanClass,
}

impl Complexity {
    /// Convenience constructor.
    pub const fn new(
        enc_work: WorkClass,
        enc_span: SpanClass,
        dec_work: WorkClass,
        dec_span: SpanClass,
    ) -> Self {
        Self {
            enc_work,
            enc_span,
            dec_work,
            dec_span,
        }
    }
}

/// Which code path a component's inner loops dispatch to at runtime.
///
/// `Scalar` covers both the naive reference loops and the
/// autovectorization-shaped portable kernels; `Sse2`/`Avx2` mean an
/// explicit `std::arch` kernel was selected by runtime CPUID detection.
/// The ordering is by capability, so `min`/`max` pick the weaker/stronger
/// tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelVariant {
    /// Portable Rust (reference loops or autovectorizable fallbacks).
    Scalar,
    /// Explicit 128-bit `std::arch` kernel (baseline on x86-64).
    Sse2,
    /// Explicit 256-bit `std::arch` kernel (runtime-detected).
    Avx2,
}

impl KernelVariant {
    /// Label used in telemetry counter names and `lc report`.
    pub fn label(&self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Sse2 => "sse2",
            KernelVariant::Avx2 => "avx2",
        }
    }
}

/// A data transformation with a common chunk-in/chunk-out interface.
///
/// Implementations must be pure (no interior mutability observable across
/// calls) and exactly invertible: for every input chunk,
/// `decode_chunk(encode_chunk(x)) == x`.
///
/// `encode_chunk`/`decode_chunk` append to `out` without clearing it, so a
/// caller can prepend its own framing; the framework always passes an empty
/// buffer.
pub trait Component: Send + Sync {
    /// Canonical name, e.g. `"DIFFMS_4"` or `"TUPL2_1"`.
    fn name(&self) -> &'static str;

    /// Which of the four categories this component belongs to.
    fn kind(&self) -> ComponentKind;

    /// Word granularity in bytes (the `i` suffix): 1, 2, 4, or 8.
    fn word_size(&self) -> usize;

    /// Tuple size `k` for TUPL components; `None` for everything else.
    fn tuple_size(&self) -> Option<usize> {
        None
    }

    /// Work/span complexities (paper Table 2).
    fn complexity(&self) -> Complexity;

    /// Machine-readable contract (see [`crate::contract`]). The default is
    /// the conservative inference from `kind()`/`word_size()` — correct
    /// for any well-behaved component but claiming no algebraic structure;
    /// library components override it with precise claims, every one of
    /// which `lc-analyze` checks against the implementation.
    fn contract(&self) -> Contract {
        Contract::inferred(self.kind(), self.word_size())
    }

    /// Transform one chunk for compression. Appends the transformed bytes
    /// to `out` and accumulates kernel counters into `stats`.
    fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, stats: &mut KernelStats);

    /// Invert [`Component::encode_chunk`]. Appends exactly the original
    /// bytes to `out`.
    ///
    /// Returns an error when `input` is not a valid encoding (corrupt
    /// archive); implementations must never panic on malformed input.
    fn decode_chunk(
        &self,
        input: &[u8],
        out: &mut Vec<u8>,
        stats: &mut KernelStats,
    ) -> Result<(), DecodeError>;

    /// Which kernel variant this component's encode/decode inner loops
    /// dispatch to on this machine. The default — components without
    /// explicit `std::arch` kernels — is [`KernelVariant::Scalar`].
    ///
    /// Cost-attribution callers record this per stage so a silent
    /// regression to the fallback path (wrong CPU, `LC_KERNELS=scalar`
    /// leaking into production) is visible in `lc report`.
    fn kernel_variant(&self) -> KernelVariant {
        KernelVariant::Scalar
    }

    /// Transform a batch of chunks for compression: element-wise
    /// [`Component::encode_chunk`] over `inputs[i]` → `outs[i]`.
    ///
    /// Outputs keep per-chunk append semantics (each `outs[i]` is appended
    /// to, never cleared) so copy-on-expand decisions stay per chunk, and
    /// `stats` accumulates exactly the sum of the per-chunk counters — a
    /// batch call must be indistinguishable from `inputs.len()` single
    /// calls in both bytes and op statistics. The default delegates
    /// chunk-by-chunk; implementations may override to amortize dispatch
    /// or share scratch state across the batch.
    ///
    /// Panics (debug) when `inputs` and `outs` lengths differ.
    fn encode_batch(&self, inputs: &[&[u8]], outs: &mut [Vec<u8>], stats: &mut KernelStats) {
        debug_assert_eq!(inputs.len(), outs.len(), "batch arity mismatch");
        for (input, out) in inputs.iter().zip(outs.iter_mut()) {
            self.encode_chunk(input, out, stats);
        }
    }

    /// Invert [`Component::encode_batch`]: element-wise
    /// [`Component::decode_chunk`] over `inputs[i]` → `outs[i]`.
    ///
    /// Stops at the first corrupt chunk and returns its error; chunks
    /// before it are fully decoded, chunks after it are untouched. Same
    /// batch-equals-sum-of-singles stats contract as `encode_batch`.
    fn decode_batch(
        &self,
        inputs: &[&[u8]],
        outs: &mut [Vec<u8>],
        stats: &mut KernelStats,
    ) -> Result<(), DecodeError> {
        debug_assert_eq!(inputs.len(), outs.len(), "batch arity mismatch");
        for (input, out) in inputs.iter().zip(outs.iter_mut()) {
            self.decode_chunk(input, out, stats)?;
        }
        Ok(())
    }
}

/// Family identifier: a component name with its word-size suffix stripped
/// (e.g. `"RLE_4"` → `"RLE"`, `"TUPL2_1"` → `"TUPL"`).
///
/// The paper's per-component figures (Figs. 8–13) group by family.
pub fn family_of(name: &str) -> &str {
    let base = name.split('_').next().unwrap_or(name);
    if let Some(stripped) = base.strip_prefix("TUPL") {
        if stripped.chars().all(|c| c.is_ascii_digit()) {
            return "TUPL";
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels() {
        assert_eq!(ComponentKind::Mutator.label(), "mutator");
        assert_eq!(ComponentKind::Reducer.label(), "reducer");
        assert_eq!(ComponentKind::ALL.len(), 4);
    }

    #[test]
    fn family_strips_word_size() {
        assert_eq!(family_of("RLE_4"), "RLE");
        assert_eq!(family_of("DBEFS_8"), "DBEFS");
        assert_eq!(family_of("BIT_1"), "BIT");
    }

    #[test]
    fn family_merges_tuple_sizes() {
        assert_eq!(family_of("TUPL2_1"), "TUPL");
        assert_eq!(family_of("TUPL8_4"), "TUPL");
    }

    #[test]
    fn family_of_bare_name() {
        assert_eq!(family_of("RLE"), "RLE");
    }
}
