//! Reusable stage buffers and stage-granular (de)compression entry
//! points.
//!
//! The chunk pipeline is a ping-pong: stage `s` reads the previous
//! stage's output and writes a fresh buffer. Naively that is two `Vec`
//! allocations per chunk (plus a defensive copy of the input), times
//! hundreds of thousands of chunk×pipeline executions in a campaign
//! sweep. A [`Scratch`] arena is the allocation-free alternative: one
//! pair of buffers owned by a pool worker and reused for every chunk
//! that worker claims — the in-memory analogue of a GPU thread block
//! reusing its shared-memory staging area across grid-stride
//! iterations.
//!
//! Ownership rules (see DESIGN.md §11):
//!
//! * a `Scratch` belongs to exactly one worker; it is never shared;
//! * stage inputs may alias `a` while the stage writes `b` (or vice
//!   versa), never the same buffer — the free functions below take
//!   input and output as separate parameters so the borrow checker
//!   enforces this;
//! * contents are only valid until the next stage call; callers that
//!   need the final bytes copy them out (exact-size, once per chunk).
//!
//! [`encode_stage`] and [`decode_stage`] are the single authoritative
//! implementation of LC's copy-on-expand rule; the archive driver and
//! the study runner both call them, so the "skip a reducer that failed
//! to shrink" decision cannot drift between the two.

use crate::component::{Component, ComponentKind};
use crate::error::DecodeError;
use crate::stats::KernelStats;

/// A pair of reusable pipeline buffers owned by one worker.
///
/// Fields are public so drivers can ping-pong between them with
/// disjoint borrows (`&scratch.a` as input while `&mut scratch.b` is
/// the output). Capacity is retained across chunks; a worker's arena
/// reaches steady state after its first chunk and allocates nothing
/// thereafter (unless a stage genuinely expands past prior capacity).
#[derive(Debug, Default)]
pub struct Scratch {
    /// First ping-pong buffer.
    pub a: Vec<u8>,
    /// Second ping-pong buffer.
    pub b: Vec<u8>,
}

impl Scratch {
    /// Fresh arena with empty buffers (they grow to chunk size on first
    /// use and then stay).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently reserved by both buffers.
    pub fn capacity(&self) -> usize {
        self.a.capacity() + self.b.capacity()
    }
}

/// Run one encode stage: clear `out`, transform `input` into it, and
/// decide whether the stage *applies* under LC's copy-on-expand rule.
///
/// Returns `true` when the stage output should replace the chunk bytes
/// (always, for size-preserving components) and `false` when a reducer
/// failed to strictly shrink the chunk — in that case `out` contents
/// are garbage and the caller forwards `input` unchanged, leaving the
/// chunk's mask bit clear so the decoder skips the stage entirely.
pub fn encode_stage(
    comp: &dyn Component,
    input: &[u8],
    out: &mut Vec<u8>,
    stats: &mut KernelStats,
) -> bool {
    out.clear();
    comp.encode_batch(
        std::slice::from_ref(&input),
        std::slice::from_mut(out),
        stats,
    );
    stage_applies(comp, input.len(), out.len())
}

/// LC's copy-on-expand rule for one chunk of one encode stage.
fn stage_applies(comp: &dyn Component, in_len: usize, out_len: usize) -> bool {
    match comp.kind() {
        // A reducer only "wins" if it strictly shrinks the chunk;
        // otherwise LC forwards the original bytes (copy-on-expand).
        ComponentKind::Reducer => out_len < in_len,
        // Size-preserving components always apply.
        _ => {
            debug_assert_eq!(out_len, in_len, "{} changed size", comp.name());
            true
        }
    }
}

/// Run one encode stage over a whole batch of chunks in one
/// [`Component::encode_batch`] call, then apply the copy-on-expand rule
/// per chunk.
///
/// Each `outs[i]` is cleared and receives chunk `i`'s stage output;
/// `applied[i]` in the returned vector says whether that output replaces
/// the chunk (when `false` the caller forwards `inputs[i]` unchanged and
/// `outs[i]` contents are garbage). Because outputs stay per-chunk, a
/// discarded (skipped) chunk contributes its encode cost exactly once —
/// the batch boundary adds no double counting relative to
/// `inputs.len()` separate [`encode_stage`] calls, a property the
/// equivalence tests in `lc-study` pin down to bitwise-equal
/// [`KernelStats`].
///
/// Panics (debug) when `inputs` and `outs` lengths differ.
pub fn encode_stage_batch(
    comp: &dyn Component,
    inputs: &[&[u8]],
    outs: &mut [Vec<u8>],
    stats: &mut KernelStats,
) -> Vec<bool> {
    debug_assert_eq!(inputs.len(), outs.len(), "batch arity mismatch");
    for out in outs.iter_mut() {
        out.clear();
    }
    comp.encode_batch(inputs, outs, stats);
    inputs
        .iter()
        .zip(outs.iter())
        .map(|(input, out)| stage_applies(comp, input.len(), out.len()))
        .collect()
}

/// Run one decode stage: clear `out` and invert `input` into it.
///
/// The caller is responsible for only invoking this for stages whose
/// mask bit is set (skipped stages have nothing to undo).
pub fn decode_stage(
    comp: &dyn Component,
    input: &[u8],
    out: &mut Vec<u8>,
    stats: &mut KernelStats,
) -> Result<(), DecodeError> {
    out.clear();
    comp.decode_batch(
        std::slice::from_ref(&input),
        std::slice::from_mut(out),
        stats,
    )
}

/// Invert one stage over a whole batch of chunks in one
/// [`Component::decode_batch`] call.
///
/// The caller passes only chunks whose mask bit is set (skipped stages
/// have nothing to undo). Each `outs[i]` is cleared first. On a corrupt
/// chunk the error is returned immediately; earlier chunks are decoded,
/// later ones untouched.
pub fn decode_stage_batch(
    comp: &dyn Component,
    inputs: &[&[u8]],
    outs: &mut [Vec<u8>],
    stats: &mut KernelStats,
) -> Result<(), DecodeError> {
    debug_assert_eq!(inputs.len(), outs.len(), "batch arity mismatch");
    for out in outs.iter_mut() {
        out.clear();
    }
    comp.decode_batch(inputs, outs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::test_support::{AddOne, DropTrailingZeros};

    #[test]
    fn encode_stage_applies_mutators_unconditionally() {
        let mut scratch = Scratch::new();
        let mut ks = KernelStats::default();
        let input = vec![1u8, 2, 3, 0xFF];
        let applied = encode_stage(&AddOne, &input, &mut scratch.a, &mut ks);
        assert!(applied);
        assert_eq!(scratch.a, vec![2, 3, 4, 0]);
    }

    #[test]
    fn encode_stage_skips_non_shrinking_reducer() {
        let mut scratch = Scratch::new();
        let mut ks = KernelStats::default();
        // No trailing zeros: DTZ adds a header and expands, so it must
        // report "not applied".
        let input: Vec<u8> = (1..=64).collect();
        assert!(!encode_stage(
            &DropTrailingZeros,
            &input,
            &mut scratch.a,
            &mut ks
        ));
        // Trailing zeros: DTZ shrinks and applies.
        let mut zeros = vec![7u8; 16];
        zeros.extend(std::iter::repeat_n(0u8, 48));
        assert!(encode_stage(
            &DropTrailingZeros,
            &zeros,
            &mut scratch.a,
            &mut ks
        ));
        assert!(scratch.a.len() < zeros.len());
    }

    #[test]
    fn stage_roundtrip_through_both_buffers() {
        let mut scratch = Scratch::new();
        let mut ks = KernelStats::default();
        let input = vec![10u8, 20, 30];
        assert!(encode_stage(&AddOne, &input, &mut scratch.a, &mut ks));
        decode_stage(&AddOne, &scratch.a, &mut scratch.b, &mut ks).unwrap();
        assert_eq!(scratch.b, input);
    }

    #[test]
    fn batch_stage_matches_singles_including_skips() {
        // One shrinking chunk, one expanding chunk: the batch call must
        // report the same per-chunk apply decisions, the same bytes, and
        // the same accumulated stats as two single-chunk calls.
        let mut zeros = vec![7u8; 16];
        zeros.extend(std::iter::repeat_n(0u8, 48));
        let dense: Vec<u8> = (1..=64).collect();
        let chunks: [&[u8]; 2] = [&zeros, &dense];

        let mut single_outs = [Vec::new(), Vec::new()];
        let mut single_stats = KernelStats::default();
        let single_applied: Vec<bool> = chunks
            .iter()
            .zip(single_outs.iter_mut())
            .map(|(c, out)| encode_stage(&DropTrailingZeros, c, out, &mut single_stats))
            .collect();

        let mut batch_outs = vec![Vec::new(), Vec::new()];
        let mut batch_stats = KernelStats::default();
        let batch_applied = encode_stage_batch(
            &DropTrailingZeros,
            &chunks,
            &mut batch_outs,
            &mut batch_stats,
        );

        assert_eq!(batch_applied, single_applied);
        assert_eq!(batch_applied, vec![true, false]);
        assert_eq!(batch_outs[0], single_outs[0]);
        assert_eq!(batch_stats, single_stats);

        // Decode the applied chunk back through the batch entry point.
        let enc = batch_outs[0].clone();
        let dec_in: [&[u8]; 1] = [&enc];
        let mut dec_outs = vec![Vec::new()];
        decode_stage_batch(&DropTrailingZeros, &dec_in, &mut dec_outs, &mut batch_stats).unwrap();
        assert_eq!(dec_outs[0], zeros);
    }

    #[test]
    fn buffers_retain_capacity_across_chunks() {
        let mut scratch = Scratch::new();
        let mut ks = KernelStats::default();
        let big = vec![3u8; 16 * 1024];
        encode_stage(&AddOne, &big, &mut scratch.a, &mut ks);
        let cap = scratch.capacity();
        assert!(cap >= 16 * 1024);
        // A smaller chunk must not shrink the arena.
        encode_stage(&AddOne, &[1, 2, 3], &mut scratch.a, &mut ks);
        assert_eq!(scratch.capacity(), cap);
    }
}
