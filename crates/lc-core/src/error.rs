//! Error types for pipeline construction and archive decoding.

use std::fmt;

/// Errors raised while building or parsing a pipeline description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A component name did not resolve against the registry.
    UnknownComponent(String),
    /// A pipeline was declared with no stages.
    Empty,
    /// A three-stage study pipeline whose final stage is not a reducer
    /// (the paper restricts stage 3 to reducers; §5).
    LastStageNotReducer(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnknownComponent(name) => {
                write!(f, "unknown component: {name:?}")
            }
            PipelineError::Empty => write!(f, "pipeline has no stages"),
            PipelineError::LastStageNotReducer(name) => {
                write!(f, "final stage {name:?} is not a reducer")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Errors raised while decoding an archive or a single component payload.
///
/// Decoders must return these (never panic) on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The archive does not start with the expected magic bytes.
    BadMagic,
    /// The archive declares an unsupported format version.
    BadVersion(u8),
    /// The byte stream ended before a declared field.
    Truncated {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// A structurally invalid payload.
    Corrupt {
        /// Human-readable description of the inconsistency.
        context: &'static str,
    },
    /// The archive references a component the decoder does not know.
    UnknownComponent(String),
    /// Decoded output length differs from the length the archive declared.
    LengthMismatch {
        /// Expected number of bytes.
        expected: u64,
        /// Actually produced number of bytes.
        actual: u64,
    },
    /// Decoded output does not match the archive's recorded CRC-32 —
    /// silent payload corruption that produced plausible-but-wrong bytes.
    ChecksumMismatch {
        /// CRC-32 recorded at encode time.
        expected: u32,
        /// CRC-32 of what was actually decoded.
        actual: u32,
    },
    /// One chunk's decoded bytes do not match its per-chunk CRC-32
    /// (archive format v3). Identifies the damaged chunk, which is what
    /// [`crate::archive::decode_salvage`] exploits to recover the rest.
    ChunkChecksumMismatch {
        /// Index of the failing chunk.
        chunk: u32,
        /// CRC-32 recorded at encode time.
        expected: u32,
        /// CRC-32 of what was actually decoded.
        actual: u32,
    },
    /// The archive declares a decoded size above the caller's limit
    /// (decompression-bomb guard; the output buffer is never allocated).
    TooLarge {
        /// Size the archive header declares.
        declared: u64,
        /// Limit the caller imposed.
        limit: u64,
    },
    /// The caller's [`lc_parallel::CancelToken`] tripped (deadline or
    /// shutdown) before the decode completed. Not a statement about the
    /// archive: the same bytes decode fine with more time.
    Cancelled,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not an LC archive (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported archive version {v}"),
            DecodeError::Truncated { context } => {
                write!(f, "truncated input while reading {context}")
            }
            DecodeError::Corrupt { context } => write!(f, "corrupt payload: {context}"),
            DecodeError::UnknownComponent(name) => write!(f, "unknown component {name:?}"),
            DecodeError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "decoded length {actual} differs from declared {expected}"
                )
            }
            DecodeError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: decoded {actual:#010x}, archive declared {expected:#010x}"
                )
            }
            DecodeError::ChunkChecksumMismatch {
                chunk,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "chunk {chunk} checksum mismatch: decoded {actual:#010x}, archive declared {expected:#010x}"
                )
            }
            DecodeError::TooLarge { declared, limit } => {
                write!(
                    f,
                    "archive declares {declared} decoded bytes, above the {limit}-byte limit"
                )
            }
            DecodeError::Cancelled => write!(f, "decode cancelled before completion"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(
            PipelineError::UnknownComponent("FOO_4".into()).to_string(),
            "unknown component: \"FOO_4\""
        );
        assert_eq!(
            DecodeError::LengthMismatch {
                expected: 10,
                actual: 9
            }
            .to_string(),
            "decoded length 9 differs from declared 10"
        );
        assert_eq!(
            DecodeError::BadMagic.to_string(),
            "not an LC archive (bad magic)"
        );
        assert_eq!(
            DecodeError::ChunkChecksumMismatch {
                chunk: 3,
                expected: 0x11,
                actual: 0x22
            }
            .to_string(),
            "chunk 3 checksum mismatch: decoded 0x00000022, archive declared 0x00000011"
        );
        assert_eq!(
            DecodeError::TooLarge {
                declared: 1000,
                limit: 10
            }
            .to_string(),
            "archive declares 1000 decoded bytes, above the 10-byte limit"
        );
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<PipelineError>();
        assert_err::<DecodeError>();
    }
}
