//! Round-trip verification helpers.
//!
//! LC maintains correctness independently of the compiler and GPU used
//! (paper §7); this reproduction asserts the same property everywhere via
//! these helpers.

use std::sync::Arc;

use lc_parallel::Pool;

use crate::archive;
use crate::component::Component;
use crate::error::DecodeError;
use crate::pipeline::Pipeline;
use crate::stats::KernelStats;

/// Round-trip `input` through a full pipeline encode/decode and assert the
/// output matches. Returns the compressed size on success.
pub fn roundtrip_pipeline<R>(
    pipeline: &Pipeline,
    input: &[u8],
    resolve: R,
    pool: &Pool,
) -> Result<usize, DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    let encoded = archive::encode(pipeline, input, pool);
    let decoded = archive::decode(&encoded, resolve, pool)?;
    if decoded != input {
        return Err(DecodeError::Corrupt {
            context: "round-trip mismatch",
        });
    }
    Ok(encoded.len())
}

/// Round-trip a single chunk through one component and assert the output
/// matches the input. Returns the encoded size.
///
/// # Panics
///
/// Panics (with a diagnostic) if the component is not invertible on this
/// input — this is a test helper.
pub fn roundtrip_component(component: &dyn Component, input: &[u8]) -> usize {
    let mut stats = KernelStats::new();
    let mut encoded = Vec::new();
    component.encode_chunk(input, &mut encoded, &mut stats);
    let mut decoded = Vec::new();
    component
        .decode_chunk(&encoded, &mut decoded, &mut stats)
        .unwrap_or_else(|e| panic!("{}: decode failed: {e}", component.name()));
    assert_eq!(
        decoded,
        input,
        "{}: round-trip mismatch on {} bytes",
        component.name(),
        input.len()
    );
    encoded.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::test_support::{AddOne, DropTrailingZeros};

    fn resolver(name: &str) -> Option<Arc<dyn Component>> {
        match name {
            "ADD1_1" => Some(Arc::new(AddOne)),
            "DTZ_1" => Some(Arc::new(DropTrailingZeros)),
            _ => None,
        }
    }

    #[test]
    fn pipeline_roundtrip_ok() {
        let p = Pipeline::parse("ADD1_1 DTZ_1", resolver).unwrap();
        let pool = Pool::new(2);
        let data: Vec<u8> = (0..40_000).map(|i| (i % 17) as u8).collect();
        let size = roundtrip_pipeline(&p, &data, resolver, &pool).unwrap();
        assert!(size > 0);
    }

    #[test]
    fn component_roundtrip_ok() {
        roundtrip_component(&AddOne, b"hello world");
        roundtrip_component(&DropTrailingZeros, b"data\0\0\0\0\0\0\0\0");
        roundtrip_component(&DropTrailingZeros, b"");
    }
}
