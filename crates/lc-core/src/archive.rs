//! Chunked archive format and the parallel encode/decode drivers.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  b"LCRP"                      4 bytes
//! version u8 (= 2)                    1 byte
//! stage count u8                      1 byte
//! per stage: name_len u8, name bytes
//! original length u64                 8 bytes
//! CRC-32 of the original input u32    4 bytes
//! chunk count u32                     4 bytes
//! per chunk: mask u8, stored_len u32  (mask bit s = stage s was applied)
//! payloads, concatenated in chunk order
//! ```
//!
//! The encoder processes chunks in parallel; each chunk's payload offset is
//! produced by the decoupled look-back scan from `lc-parallel`, mirroring
//! how the GPU encoder propagates cumulative compressed sizes between
//! thread blocks (paper §6.1). The decoder recomputes chunk start offsets
//! with a prefix scan over the chunk table — mirroring the GPU decoder's
//! block prefix sum — then decodes chunks in parallel into their fixed
//! output regions.
//!
//! Copy-on-expand: a reducer stage whose output for some chunk is not
//! strictly smaller than its input is skipped for that chunk — the input
//! bytes are forwarded unchanged and the chunk's mask bit stays clear, so
//! the decoder performs no work for that stage (paper §6.4; this is what
//! makes RLE_1/2/8 decode quickly on 4-byte float data while RLE_4 must
//! actually decompress). Non-reducers never change the size and are always
//! applied.

use std::sync::Arc;

use lc_parallel::{DisjointSlice, LookbackScan, Pool};

use crate::chunk::{chunk_count, chunk_range, CHUNK_SIZE};
use crate::component::{Component, ComponentKind};
use crate::error::DecodeError;
use crate::pipeline::Pipeline;
use crate::stats::{KernelStats, PipelineStats, StageStats};

/// Archive magic bytes.
pub const MAGIC: [u8; 4] = *b"LCRP";
/// Current format version (2 added the CRC-32 integrity field).
pub const VERSION: u8 = 2;
/// Maximum number of stages representable in the per-chunk mask.
pub const MAX_STAGES: usize = 8;

/// Parsed archive header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Archive {
    /// Stage component names in encode order.
    pub stage_names: Vec<String>,
    /// Uncompressed length in bytes.
    pub original_len: u64,
    /// CRC-32 of the original input (verified after decode).
    pub crc32: u32,
    /// Number of chunks.
    pub chunks: u32,
    /// Byte offset where the per-chunk table starts.
    pub table_offset: usize,
    /// Byte offset where payloads start.
    pub payload_offset: usize,
}

/// Result of [`encode_with_stats`].
#[derive(Debug, Clone)]
pub struct EncodeResult {
    /// The serialized archive.
    pub archive: Vec<u8>,
    /// Per-stage execution statistics.
    pub stats: PipelineStats,
}

struct ChunkOutcome {
    data: Vec<u8>,
    mask: u8,
    stage_records: Vec<StageRecord>,
}

#[derive(Clone, Copy, Default)]
struct StageRecord {
    kernel: KernelStats,
    applied: bool,
    bytes_in: u64,
    bytes_out: u64,
}

/// Encode `input` with `pipeline`, returning only the archive bytes.
///
/// The component library lives in the `lc-components` crate; any
/// [`Component`] implementation works:
///
/// ```
/// use std::sync::Arc;
/// use lc_core::{Component, ComponentKind, Complexity, DecodeError,
///               KernelStats, Pipeline, SpanClass, WorkClass};
/// use lc_parallel::Pool;
///
/// /// A toy mutator: XOR every byte with 0x5A.
/// struct Xor;
/// impl Component for Xor {
///     fn name(&self) -> &'static str { "XOR_1" }
///     fn kind(&self) -> ComponentKind { ComponentKind::Mutator }
///     fn word_size(&self) -> usize { 1 }
///     fn complexity(&self) -> Complexity {
///         Complexity::new(WorkClass::N, SpanClass::Const, WorkClass::N, SpanClass::Const)
///     }
///     fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, _: &mut KernelStats) {
///         out.extend(input.iter().map(|b| b ^ 0x5A));
///     }
///     fn decode_chunk(&self, input: &[u8], out: &mut Vec<u8>, _: &mut KernelStats)
///         -> Result<(), DecodeError>
///     {
///         out.extend(input.iter().map(|b| b ^ 0x5A));
///         Ok(())
///     }
/// }
///
/// let resolve = |name: &str| (name == "XOR_1").then(|| Arc::new(Xor) as Arc<dyn Component>);
/// let pipeline = Pipeline::parse("XOR_1", resolve).unwrap();
/// let pool = Pool::new(2);
/// let data = vec![42u8; 100_000];
/// let archive = lc_core::archive::encode(&pipeline, &data, &pool);
/// let back = lc_core::archive::decode(&archive, resolve, &pool).unwrap();
/// assert_eq!(back, data);
/// ```
pub fn encode(pipeline: &Pipeline, input: &[u8], pool: &Pool) -> Vec<u8> {
    encode_with_stats(pipeline, input, pool).archive
}

/// Encode `input` with `pipeline`, returning the archive and statistics.
///
/// # Panics
///
/// Panics if the pipeline has more than [`MAX_STAGES`] stages.
pub fn encode_with_stats(pipeline: &Pipeline, input: &[u8], pool: &Pool) -> EncodeResult {
    let stages = pipeline.stages();
    assert!(
        stages.len() <= MAX_STAGES,
        "pipeline has {} stages; archive mask supports at most {MAX_STAGES}",
        stages.len()
    );
    let n_chunks = chunk_count(input.len());

    // Phase 1: per-chunk stage execution (one pool task per chunk, like one
    // thread block per chunk on the GPU).
    let mut outcomes: Vec<Option<ChunkOutcome>> = Vec::new();
    outcomes.resize_with(n_chunks, || None);
    let scan = LookbackScan::new(n_chunks);
    let mut offsets = vec![0u64; n_chunks];
    {
        let outcome_slots = DisjointSlice::new(&mut outcomes);
        let offset_slots = DisjointSlice::new(&mut offsets);
        pool.run(n_chunks, |i| {
            let outcome = encode_one_chunk(stages, &input[chunk_range(i, input.len())]);
            // Publish this chunk's stored size; receive the cumulative size
            // of all prior chunks (decoupled look-back, as on the GPU).
            let offset = scan.publish(i, outcome.data.len() as u64);
            // SAFETY: `pool.run` claims each index exactly once.
            unsafe {
                *offset_slots.get_mut(i) = offset;
                *outcome_slots.get_mut(i) = Some(outcome);
            }
        });
    }
    let payload_total = if n_chunks == 0 { 0 } else { scan.total() } as usize;
    let outcomes: Vec<ChunkOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("chunk encoded"))
        .collect();

    // Phase 2: serialize header + chunk table, then parallel payload copy.
    let mut archive = Vec::with_capacity(64 + n_chunks * 5 + payload_total);
    archive.extend_from_slice(&MAGIC);
    archive.push(VERSION);
    archive.push(stages.len() as u8);
    for s in stages {
        let name = s.name().as_bytes();
        archive.push(name.len() as u8);
        archive.extend_from_slice(name);
    }
    archive.extend_from_slice(&(input.len() as u64).to_le_bytes());
    archive.extend_from_slice(&crate::checksum::crc32(input).to_le_bytes());
    archive.extend_from_slice(&(n_chunks as u32).to_le_bytes());
    for o in &outcomes {
        archive.push(o.mask);
        archive.extend_from_slice(&(o.data.len() as u32).to_le_bytes());
    }
    let payload_start = archive.len();
    archive.resize(payload_start + payload_total, 0);
    {
        let payload = &mut archive[payload_start..];
        let base = payload.as_mut_ptr() as usize;
        pool.run(n_chunks, |i| {
            let src = &outcomes[i].data;
            // SAFETY: the scan guarantees [offset, offset+len) ranges are
            // disjoint and within the payload region (total == scan.total()).
            unsafe {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr(),
                    (base as *mut u8).add(offsets[i] as usize),
                    src.len(),
                );
            }
        });
    }

    // Phase 3: fold per-chunk records into per-stage statistics.
    let mut stage_stats: Vec<StageStats> = stages
        .iter()
        .map(|s| StageStats {
            component: s.name().to_string(),
            ..Default::default()
        })
        .collect();
    for o in &outcomes {
        for (s, rec) in o.stage_records.iter().enumerate() {
            let st = &mut stage_stats[s];
            st.kernel.merge(&rec.kernel);
            if rec.applied {
                st.chunks_applied += 1;
                st.bytes_in += rec.bytes_in;
                st.bytes_out += rec.bytes_out;
            } else {
                st.chunks_skipped += 1;
            }
        }
    }
    let stats = PipelineStats {
        stages: stage_stats,
        chunks: n_chunks as u64,
        uncompressed_bytes: input.len() as u64,
        compressed_bytes: (payload_total + n_chunks * 5) as u64,
    };
    EncodeResult { archive, stats }
}

fn encode_one_chunk(stages: &[Arc<dyn Component>], chunk: &[u8]) -> ChunkOutcome {
    let mut cur: Vec<u8> = chunk.to_vec();
    let mut next: Vec<u8> = Vec::with_capacity(chunk.len() + chunk.len() / 4 + 64);
    let mut mask = 0u8;
    let mut stage_records = Vec::with_capacity(stages.len());
    for (s, comp) in stages.iter().enumerate() {
        let mut rec = StageRecord {
            bytes_in: cur.len() as u64,
            ..Default::default()
        };
        next.clear();
        comp.encode_chunk(&cur, &mut next, &mut rec.kernel);
        let applied = match comp.kind() {
            // A reducer only "wins" if it strictly shrinks the chunk;
            // otherwise LC forwards the original bytes (copy-on-expand).
            ComponentKind::Reducer => next.len() < cur.len(),
            // Size-preserving components always apply.
            _ => {
                debug_assert_eq!(next.len(), cur.len(), "{} changed size", comp.name());
                true
            }
        };
        rec.applied = applied;
        rec.bytes_out = if applied { next.len() as u64 } else { rec.bytes_in };
        stage_records.push(rec);
        if applied {
            mask |= 1 << s;
            std::mem::swap(&mut cur, &mut next);
        }
    }
    ChunkOutcome {
        data: cur,
        mask,
        stage_records,
    }
}

/// Parse just the header of an archive.
pub fn parse_header(bytes: &[u8]) -> Result<Archive, DecodeError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize, context: &'static str| -> Result<usize, DecodeError> {
        if *pos + n > bytes.len() {
            return Err(DecodeError::Truncated { context });
        }
        let at = *pos;
        *pos += n;
        Ok(at)
    };
    let at = take(&mut pos, 4, "magic")?;
    if bytes[at..at + 4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let at = take(&mut pos, 1, "version")?;
    if bytes[at] != VERSION {
        return Err(DecodeError::BadVersion(bytes[at]));
    }
    let at = take(&mut pos, 1, "stage count")?;
    let n_stages = bytes[at] as usize;
    if n_stages == 0 || n_stages > MAX_STAGES {
        return Err(DecodeError::Corrupt { context: "stage count" });
    }
    let mut stage_names = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let at = take(&mut pos, 1, "stage name length")?;
        let len = bytes[at] as usize;
        let at = take(&mut pos, len, "stage name")?;
        let name = std::str::from_utf8(&bytes[at..at + len])
            .map_err(|_| DecodeError::Corrupt { context: "stage name utf8" })?;
        stage_names.push(name.to_string());
    }
    let at = take(&mut pos, 8, "original length")?;
    let original_len = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let at = take(&mut pos, 4, "checksum")?;
    let crc32 = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    let at = take(&mut pos, 4, "chunk count")?;
    let chunks = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    if chunks as u64 != chunk_count(original_len as usize) as u64 {
        return Err(DecodeError::Corrupt { context: "chunk count vs length" });
    }
    let table_offset = pos;
    let at = take(&mut pos, chunks as usize * 5, "chunk table")?;
    let _ = at;
    Ok(Archive {
        stage_names,
        original_len,
        crc32,
        chunks,
        table_offset,
        payload_offset: pos,
    })
}

/// Decode an archive, resolving stage names through `resolve`.
pub fn decode<R>(bytes: &[u8], resolve: R, pool: &Pool) -> Result<Vec<u8>, DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    decode_with_stats(bytes, resolve, pool).map(|(out, _)| out)
}

/// Decode an archive, also returning per-stage statistics.
pub fn decode_with_stats<R>(
    bytes: &[u8],
    resolve: R,
    pool: &Pool,
) -> Result<(Vec<u8>, PipelineStats), DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    let header = parse_header(bytes)?;
    let stages: Vec<Arc<dyn Component>> = header
        .stage_names
        .iter()
        .map(|n| resolve(n).ok_or_else(|| DecodeError::UnknownComponent(n.clone())))
        .collect::<Result<_, _>>()?;

    let n_chunks = header.chunks as usize;
    let table = &bytes[header.table_offset..header.payload_offset];
    let mut masks = Vec::with_capacity(n_chunks);
    let mut sizes = Vec::with_capacity(n_chunks);
    for i in 0..n_chunks {
        masks.push(table[i * 5]);
        sizes.push(u32::from_le_bytes(table[i * 5 + 1..i * 5 + 5].try_into().unwrap()) as u64);
    }
    // Chunk payload start offsets: a prefix scan, as in the GPU decoder.
    let (offsets, payload_total) = lc_parallel::scan::parallel_exclusive_scan(pool, &sizes);
    let payload = &bytes[header.payload_offset..];
    if payload.len() != payload_total as usize {
        return Err(DecodeError::Corrupt { context: "payload size" });
    }

    let original_len = header.original_len as usize;
    let mut out = vec![0u8; original_len];
    let out_base = out.as_mut_ptr() as usize;

    // Per-chunk decode into disjoint output regions, collecting per-worker
    // stage stats that are merged afterwards.
    let stage_names: Vec<&str> = header.stage_names.iter().map(|s| s.as_str()).collect();
    let stages_ref = &stages;
    let masks_ref = &masks;
    let sizes_ref = &sizes;
    let offsets_ref = &offsets;
    type WorkerAcc = (Vec<StageRecord>, Option<DecodeError>);
    let (records, first_err) = pool.fold(
        n_chunks,
        || -> WorkerAcc { (vec![StageRecord::default(); stages_ref.len()], None) },
        |acc, i| {
            if acc.1.is_some() {
                return; // a chunk already failed; drain remaining work
            }
            let start = offsets_ref[i] as usize;
            let end = start + sizes_ref[i] as usize;
            if end > payload.len() {
                acc.1 = Some(DecodeError::Corrupt { context: "chunk extent" });
                return;
            }
            let region = chunk_range(i, original_len);
            match decode_one_chunk(
                stages_ref,
                masks_ref[i],
                &payload[start..end],
                region.len(),
                &mut acc.0,
            ) {
                Ok(decoded) => {
                    // SAFETY: chunk output regions tile `out` disjointly.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            decoded.as_ptr(),
                            (out_base as *mut u8).add(region.start),
                            decoded.len(),
                        );
                    }
                }
                Err(e) => acc.1 = Some(e),
            }
        },
        |mut a, b| {
            for (ra, rb) in a.0.iter_mut().zip(&b.0) {
                ra.kernel.merge(&rb.kernel);
                ra.bytes_in += rb.bytes_in;
                ra.bytes_out += rb.bytes_out;
                // `applied` is repurposed as a per-chunk counter below, so
                // fold chunk counts through bytes fields only.
            }
            if a.1.is_none() {
                a.1 = b.1;
            }
            a
        },
    );
    if let Some(e) = first_err {
        return Err(e);
    }

    let mut stage_stats: Vec<StageStats> = stage_names
        .iter()
        .map(|n| StageStats {
            component: n.to_string(),
            ..Default::default()
        })
        .collect();
    for (s, rec) in records.iter().enumerate() {
        stage_stats[s].kernel = rec.kernel;
        stage_stats[s].bytes_in = rec.bytes_in;
        stage_stats[s].bytes_out = rec.bytes_out;
    }
    for &mask in &masks {
        for (s, st) in stage_stats.iter_mut().enumerate() {
            if mask & (1 << s) != 0 {
                st.chunks_applied += 1;
            } else {
                st.chunks_skipped += 1;
            }
        }
    }
    // Integrity: the decoded stream must match the recorded CRC — this is
    // what turns "plausible but wrong bytes" from payload corruption into
    // a hard error.
    let actual = crate::checksum::crc32(&out);
    if actual != header.crc32 {
        return Err(DecodeError::ChecksumMismatch {
            expected: header.crc32,
            actual,
        });
    }
    let stats = PipelineStats {
        stages: stage_stats,
        chunks: n_chunks as u64,
        uncompressed_bytes: header.original_len,
        compressed_bytes: (payload_total as usize + n_chunks * 5) as u64,
    };
    Ok((out, stats))
}

fn decode_one_chunk(
    stages: &[Arc<dyn Component>],
    mask: u8,
    payload: &[u8],
    expected_len: usize,
    records: &mut [StageRecord],
) -> Result<Vec<u8>, DecodeError> {
    let mut cur = payload.to_vec();
    let mut next: Vec<u8> = Vec::with_capacity(CHUNK_SIZE);
    // Inverse transformations in reverse order (paper Fig. 1).
    for (s, comp) in stages.iter().enumerate().rev() {
        if mask & (1 << s) == 0 {
            continue; // stage skipped during encode: nothing to undo
        }
        let rec = &mut records[s];
        rec.bytes_in += cur.len() as u64;
        next.clear();
        comp.decode_chunk(&cur, &mut next, &mut rec.kernel)?;
        rec.bytes_out += next.len() as u64;
        std::mem::swap(&mut cur, &mut next);
    }
    if cur.len() != expected_len {
        return Err(DecodeError::LengthMismatch {
            expected: expected_len as u64,
            actual: cur.len() as u64,
        });
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::test_support::{AddOne, DropTrailingZeros};

    fn resolver(name: &str) -> Option<Arc<dyn Component>> {
        match name {
            "ADD1_1" => Some(Arc::new(AddOne)),
            "DTZ_1" => Some(Arc::new(DropTrailingZeros)),
            _ => None,
        }
    }

    fn pipeline() -> Pipeline {
        Pipeline::parse("ADD1_1 DTZ_1", resolver).unwrap()
    }

    fn roundtrip(input: &[u8]) {
        let pool = Pool::new(4);
        let archive = encode(&pipeline(), input, &pool);
        let out = decode(&archive, resolver, &pool).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_single_byte() {
        roundtrip(&[42]);
    }

    #[test]
    fn roundtrip_one_exact_chunk() {
        let data: Vec<u8> = (0..CHUNK_SIZE).map(|i| (i % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_many_chunks_with_tail() {
        let data: Vec<u8> = (0..CHUNK_SIZE * 7 + 333).map(|i| (i % 13) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn compressible_data_shrinks() {
        // AddOne maps 0xFF -> 0x00, so trailing 0xFF bytes become zeros that
        // DTZ drops.
        let mut data = vec![1u8; 1000];
        data.extend(vec![0xFFu8; CHUNK_SIZE - 1000]);
        let pool = Pool::new(2);
        let res = encode_with_stats(&pipeline(), &data, &pool);
        assert!(res.archive.len() < data.len());
        assert_eq!(res.stats.stages[1].chunks_applied, 1);
        let out = decode(&res.archive, resolver, &pool).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn incompressible_chunk_skips_reducer() {
        // No trailing zeros after AddOne: DTZ adds an 8-byte header and
        // expands, so the framework must skip it.
        let data: Vec<u8> = (0..CHUNK_SIZE).map(|i| (i % 200) as u8 + 1).collect();
        let pool = Pool::new(2);
        let res = encode_with_stats(&pipeline(), &data, &pool);
        assert_eq!(res.stats.stages[1].chunks_skipped, 1);
        assert_eq!(res.stats.stages[1].chunks_applied, 0);
        // Mutator still applied.
        assert_eq!(res.stats.stages[0].chunks_applied, 1);
        let out = decode(&res.archive, resolver, &pool).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn decode_stats_skip_means_zero_decode_work() {
        let data: Vec<u8> = (0..CHUNK_SIZE).map(|i| (i % 200) as u8 + 1).collect();
        let pool = Pool::new(2);
        let archive = encode(&pipeline(), &data, &pool);
        let (_, stats) = decode_with_stats(&archive, resolver, &pool).unwrap();
        assert_eq!(stats.stages[1].chunks_applied, 0);
        assert!(stats.stages[1].kernel.is_zero());
        assert!(!stats.stages[0].kernel.is_zero());
    }

    #[test]
    fn bad_magic_rejected() {
        let pool = Pool::new(1);
        let err = decode(b"NOPExxxx", resolver, &pool).unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
    }

    #[test]
    fn truncated_header_rejected() {
        let pool = Pool::new(1);
        let archive = encode(&pipeline(), &[1, 2, 3], &pool);
        for cut in 1..archive.len().min(24) {
            let err = decode(&archive[..cut], resolver, &pool);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn unknown_component_rejected() {
        let pool = Pool::new(1);
        let archive = encode(&pipeline(), &[1, 2, 3], &pool);
        let err = decode(&archive, |_| None::<Arc<dyn Component>>, &pool).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownComponent(_)));
    }

    #[test]
    fn corrupted_payload_is_an_error_not_a_panic() {
        let mut data = vec![1u8; 1000];
        data.extend(vec![0xFFu8; CHUNK_SIZE - 1000]);
        let pool = Pool::new(2);
        let mut archive = encode(&pipeline(), &data, &pool);
        let len = archive.len();
        archive[len - 20..len].fill(0xAB);
        // Structural damage errors early; value-only damage is caught by
        // the CRC. Either way: an error, never a panic or silent corruption.
        assert!(decode(&archive, resolver, &pool).is_err());
    }

    #[test]
    fn version_mismatch_rejected() {
        let pool = Pool::new(1);
        let mut archive = encode(&pipeline(), &[1, 2, 3], &pool);
        archive[4] = 99;
        assert_eq!(
            decode(&archive, resolver, &pool).unwrap_err(),
            DecodeError::BadVersion(99)
        );
    }

    #[test]
    fn header_parse_reports_fields() {
        let pool = Pool::new(1);
        let data = vec![7u8; CHUNK_SIZE + 5];
        let archive = encode(&pipeline(), &data, &pool);
        let h = parse_header(&archive).unwrap();
        assert_eq!(h.stage_names, vec!["ADD1_1", "DTZ_1"]);
        assert_eq!(h.original_len, data.len() as u64);
        assert_eq!(h.chunks, 2);
    }
}
