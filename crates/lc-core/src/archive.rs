//! Chunked archive format and the parallel encode/decode drivers.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  b"LCRP"                      4 bytes
//! version u8 (= 3)                    1 byte
//! stage count u8                      1 byte
//! per stage: name_len u8, name bytes
//! original length u64                 8 bytes
//! CRC-32 of the original input u32    4 bytes
//! chunk count u32                     4 bytes
//! per chunk (v3, 9 bytes): mask u8, stored_len u32, chunk CRC-32 u32
//!   (mask bit s = stage s was applied; the CRC covers the chunk's
//!    ORIGINAL uncompressed bytes, so it validates the recovered
//!    plaintext — catching payload damage and decoder bugs alike)
//! payloads, concatenated in chunk order
//! ```
//!
//! Version 2 archives (5-byte table entries without the per-chunk CRC)
//! are still decoded; the per-chunk integrity and salvage features
//! simply degrade to structural-only detection for them.
//!
//! The encoder processes chunks in parallel; each chunk's payload offset is
//! produced by the decoupled look-back scan from `lc-parallel`, mirroring
//! how the GPU encoder propagates cumulative compressed sizes between
//! thread blocks (paper §6.1). The decoder recomputes chunk start offsets
//! with a prefix scan over the chunk table — mirroring the GPU decoder's
//! block prefix sum — then decodes chunks in parallel into their fixed
//! output regions.
//!
//! Copy-on-expand: a reducer stage whose output for some chunk is not
//! strictly smaller than its input is skipped for that chunk — the input
//! bytes are forwarded unchanged and the chunk's mask bit stays clear, so
//! the decoder performs no work for that stage (paper §6.4; this is what
//! makes RLE_1/2/8 decode quickly on 4-byte float data while RLE_4 must
//! actually decompress). Non-reducers never change the size and are always
//! applied.
//!
//! Fault tolerance: [`decode`] is all-or-nothing — any damage is a hard
//! [`DecodeError`]. [`decode_salvage`] is the degraded-mode counterpart:
//! it decodes every chunk that still validates, zero-fills the regions of
//! chunks that do not, and reports per-chunk faults in a
//! [`SalvageReport`] instead of aborting. [`decode_bounded`] adds a
//! decompression-bomb guard in front of either path.

use std::sync::Arc;

use lc_parallel::{DisjointSlice, LookbackScan, Pool};
use lc_telemetry::{span, ArgValue, Span};

use crate::chunk::{chunk_count, chunk_range};
use crate::component::Component;
use crate::error::DecodeError;
use crate::pipeline::Pipeline;
use crate::scratch::Scratch;
use crate::stats::{KernelStats, PipelineStats, StageStats};

/// Archive magic bytes.
pub const MAGIC: [u8; 4] = *b"LCRP";
/// Current format version (2 added the whole-input CRC-32; 3 added a
/// per-chunk CRC-32 to the table, enabling chunk-granular salvage).
pub const VERSION: u8 = 3;
/// Oldest format version the decoder still accepts.
pub const MIN_VERSION: u8 = 2;
/// Maximum number of stages representable in the per-chunk mask.
pub const MAX_STAGES: usize = 8;
/// Bytes per chunk-table entry in format v2: mask u8 + stored_len u32.
pub const TABLE_ENTRY_V2: usize = 5;
/// Bytes per chunk-table entry in format v3: v2 fields + chunk CRC-32.
pub const TABLE_ENTRY_V3: usize = 9;

/// Parsed archive header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Archive {
    /// Format version this archive was serialized with (2 or 3).
    pub version: u8,
    /// Stage component names in encode order.
    pub stage_names: Vec<String>,
    /// Uncompressed length in bytes.
    pub original_len: u64,
    /// CRC-32 of the original input (verified after decode).
    pub crc32: u32,
    /// Number of chunks.
    pub chunks: u32,
    /// Byte offset where the per-chunk table starts.
    pub table_offset: usize,
    /// Byte offset where payloads start.
    pub payload_offset: usize,
}

impl Archive {
    /// Bytes per chunk-table entry for this archive's format version.
    pub fn entry_size(&self) -> usize {
        if self.version >= 3 {
            TABLE_ENTRY_V3
        } else {
            TABLE_ENTRY_V2
        }
    }
}

/// Outcome of one unrecoverable chunk in [`decode_salvage`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFault {
    /// Index of the chunk that could not be recovered.
    pub chunk: u32,
    /// Why it could not be recovered.
    pub error: DecodeError,
}

/// What [`decode_salvage`] managed to recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Chunks decoded and (for v3) validated against their per-chunk CRC.
    pub recovered: u32,
    /// Chunks whose output region was zero-filled instead.
    pub lost: u32,
    /// One entry per lost chunk, in chunk order.
    pub errors: Vec<ChunkFault>,
    /// Whether the assembled output matched the whole-archive CRC-32.
    /// Always `false` when chunks were lost; for v2 archives a `false`
    /// here with zero losses means value-level damage the 5-byte table
    /// cannot localize.
    pub archive_crc_ok: bool,
}

impl SalvageReport {
    /// True when every chunk decoded and the whole-archive CRC matched.
    pub fn is_clean(&self) -> bool {
        self.lost == 0 && self.archive_crc_ok
    }
}

/// Result of [`encode_with_stats`].
#[derive(Debug, Clone)]
pub struct EncodeResult {
    /// The serialized archive.
    pub archive: Vec<u8>,
    /// Per-stage execution statistics.
    pub stats: PipelineStats,
}

struct ChunkOutcome {
    data: Vec<u8>,
    mask: u8,
    /// CRC-32 of the chunk's original (uncompressed) bytes.
    crc: u32,
    stage_records: Vec<StageRecord>,
}

#[derive(Clone, Copy, Default)]
struct StageRecord {
    kernel: KernelStats,
    applied: bool,
    bytes_in: u64,
    bytes_out: u64,
}

/// Encode `input` with `pipeline`, returning only the archive bytes.
///
/// The component library lives in the `lc-components` crate; any
/// [`Component`] implementation works:
///
/// ```
/// use std::sync::Arc;
/// use lc_core::{Component, ComponentKind, Complexity, DecodeError,
///               KernelStats, Pipeline, SpanClass, WorkClass};
/// use lc_parallel::Pool;
///
/// /// A toy mutator: XOR every byte with 0x5A.
/// struct Xor;
/// impl Component for Xor {
///     fn name(&self) -> &'static str { "XOR_1" }
///     fn kind(&self) -> ComponentKind { ComponentKind::Mutator }
///     fn word_size(&self) -> usize { 1 }
///     fn complexity(&self) -> Complexity {
///         Complexity::new(WorkClass::N, SpanClass::Const, WorkClass::N, SpanClass::Const)
///     }
///     fn encode_chunk(&self, input: &[u8], out: &mut Vec<u8>, _: &mut KernelStats) {
///         out.extend(input.iter().map(|b| b ^ 0x5A));
///     }
///     fn decode_chunk(&self, input: &[u8], out: &mut Vec<u8>, _: &mut KernelStats)
///         -> Result<(), DecodeError>
///     {
///         out.extend(input.iter().map(|b| b ^ 0x5A));
///         Ok(())
///     }
/// }
///
/// let resolve = |name: &str| (name == "XOR_1").then(|| Arc::new(Xor) as Arc<dyn Component>);
/// let pipeline = Pipeline::parse("XOR_1", resolve).unwrap();
/// let pool = Pool::new(2);
/// let data = vec![42u8; 100_000];
/// let archive = lc_core::archive::encode(&pipeline, &data, &pool);
/// let back = lc_core::archive::decode(&archive, resolve, &pool).unwrap();
/// assert_eq!(back, data);
/// ```
pub fn encode(pipeline: &Pipeline, input: &[u8], pool: &Pool) -> Vec<u8> {
    encode_with_stats(pipeline, input, pool).archive
}

/// Encode `input` with `pipeline`, returning the archive and statistics.
///
/// # Panics
///
/// Panics if the pipeline has more than [`MAX_STAGES`] stages.
pub fn encode_with_stats(pipeline: &Pipeline, input: &[u8], pool: &Pool) -> EncodeResult {
    match encode_inner(pipeline, input, pool, None) {
        Some(r) => r,
        // invariant: with no cancel token the pool drains every chunk.
        None => unreachable!("uncancellable encode reported cancellation"),
    }
}

/// Like [`encode_with_stats`], but workers poll `cancel` at every chunk
/// claim and the encode stops at the next claim boundary once it trips.
/// Returns `None` when cancelled — there is no partial archive; the
/// caller (an `lc-serve` request whose deadline fired) reports
/// `deadline_exceeded` and drops the scratch work on the floor.
///
/// Cancellation is deadlock-safe with respect to the decoupled look-back
/// scan: workers only stop *between* claims, every claimed chunk still
/// publishes its scan entry, and `scan.total()` is consulted only on the
/// not-cancelled path where all chunks have published.
pub fn encode_cancellable(
    pipeline: &Pipeline,
    input: &[u8],
    pool: &Pool,
    cancel: &lc_parallel::CancelToken,
) -> Option<EncodeResult> {
    encode_inner(pipeline, input, pool, Some(cancel))
}

fn encode_inner(
    pipeline: &Pipeline,
    input: &[u8],
    pool: &Pool,
    cancel: Option<&lc_parallel::CancelToken>,
) -> Option<EncodeResult> {
    let stages = pipeline.stages();
    assert!(
        stages.len() <= MAX_STAGES,
        "pipeline has {} stages; archive mask supports at most {MAX_STAGES}",
        stages.len()
    );
    let n_chunks = chunk_count(input.len());
    // Hoisted once per encode: chunk/stage instrumentation below branches
    // on this bool, so a disabled-telemetry encode pays one relaxed load.
    let telemetry = lc_telemetry::active();
    let costs = if telemetry {
        stage_costs(stages, "encode")
    } else {
        Vec::new()
    };
    let costs = &costs;
    let mut enc_span = span!("archive.encode", bytes = input.len(), chunks = n_chunks);

    // Phase 1: per-chunk stage execution (one pool task per chunk, like one
    // thread block per chunk on the GPU).
    let mut outcomes: Vec<Option<ChunkOutcome>> = Vec::new();
    outcomes.resize_with(n_chunks, || None);
    let scan = LookbackScan::new(n_chunks);
    let mut offsets = vec![0u64; n_chunks];
    {
        let outcome_slots = DisjointSlice::new(&mut outcomes);
        let offset_slots = DisjointSlice::new(&mut offsets);
        // Each worker owns one Scratch arena for its whole claim stream:
        // stage buffers are allocated once per worker, not once per chunk.
        let encode_task = |scratch: &mut Scratch, i: usize| {
            let outcome = encode_one_chunk(
                stages,
                &input[chunk_range(i, input.len())],
                i,
                telemetry,
                costs,
                scratch,
            );
            // Publish this chunk's stored size; receive the cumulative size
            // of all prior chunks (decoupled look-back, as on the GPU).
            let offset = scan.publish(i, outcome.data.len() as u64);
            // SAFETY: the pool claims each index at most once.
            unsafe {
                *offset_slots.get_mut(i) = offset;
                *outcome_slots.get_mut(i) = Some(outcome);
            }
        };
        match cancel {
            Some(c) => pool.run_with_state_cancellable(n_chunks, c, Scratch::new, encode_task),
            None => pool.run_with_state(n_chunks, Scratch::new, encode_task),
        }
    }
    // The cancellation check must precede `scan.total()`: a cancelled run
    // leaves unclaimed chunks unpublished, and `total()` asserts that
    // every participant has published. The token is monotonic, so "not
    // cancelled here" proves every chunk was claimed and completed.
    if cancel.is_some_and(|c| c.is_cancelled()) {
        return None;
    }
    let payload_total = if n_chunks == 0 { 0 } else { scan.total() } as usize;
    let outcomes: Vec<ChunkOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("chunk encoded")) // invariant: phase 1 fills every slot
        .collect();

    // Phase 2: serialize header + chunk table, then parallel payload copy.
    let mut archive = Vec::with_capacity(64 + n_chunks * TABLE_ENTRY_V3 + payload_total);
    archive.extend_from_slice(&MAGIC);
    archive.push(VERSION);
    archive.push(stages.len() as u8);
    for s in stages {
        let name = s.name().as_bytes();
        archive.push(name.len() as u8);
        archive.extend_from_slice(name);
    }
    archive.extend_from_slice(&(input.len() as u64).to_le_bytes());
    archive.extend_from_slice(&crate::checksum::crc32(input).to_le_bytes());
    archive.extend_from_slice(&(n_chunks as u32).to_le_bytes());
    for o in &outcomes {
        archive.push(o.mask);
        archive.extend_from_slice(&(o.data.len() as u32).to_le_bytes());
        archive.extend_from_slice(&o.crc.to_le_bytes());
    }
    let payload_start = archive.len();
    archive.resize(payload_start + payload_total, 0);
    {
        let payload = &mut archive[payload_start..];
        let base = payload.as_mut_ptr() as usize;
        pool.run(n_chunks, |i| {
            let src = &outcomes[i].data;
            // SAFETY: the scan guarantees [offset, offset+len) ranges are
            // disjoint and within the payload region (total == scan.total()).
            unsafe {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr(),
                    (base as *mut u8).add(offsets[i] as usize),
                    src.len(),
                );
            }
        });
    }

    // Phase 3: fold per-chunk records into per-stage statistics.
    let mut stage_stats: Vec<StageStats> = stages
        .iter()
        .map(|s| StageStats {
            component: s.name().to_string(),
            ..Default::default()
        })
        .collect();
    for o in &outcomes {
        for (s, rec) in o.stage_records.iter().enumerate() {
            let st = &mut stage_stats[s];
            st.kernel.merge(&rec.kernel);
            if rec.applied {
                st.chunks_applied += 1;
                st.bytes_in += rec.bytes_in;
                st.bytes_out += rec.bytes_out;
            } else {
                st.chunks_skipped += 1;
            }
        }
    }
    let stats = PipelineStats {
        stages: stage_stats,
        chunks: n_chunks as u64,
        uncompressed_bytes: input.len() as u64,
        compressed_bytes: (payload_total + n_chunks * TABLE_ENTRY_V3) as u64,
    };
    if telemetry {
        enc_span.arg("archive_bytes", archive.len());
        lc_telemetry::counter("archive.encode.calls").add(1);
        lc_telemetry::counter("archive.encode.bytes_in").add(input.len() as u64);
        lc_telemetry::counter("archive.encode.bytes_out").add(archive.len() as u64);
        lc_telemetry::counter("archive.encode.chunks").add(n_chunks as u64);
    }
    Some(EncodeResult { archive, stats })
}

/// Which buffer currently holds the chunk bytes: the caller's input
/// slice (no copy was made) or one of the two arena buffers.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Live {
    Input,
    A,
    B,
}

impl Live {
    /// The arena buffer the *next* applied stage writes into: input
    /// feeds `a`, and the two arena buffers ping-pong.
    fn advance(self) -> Self {
        match self {
            Live::Input | Live::B => Live::A,
            Live::A => Live::B,
        }
    }
}

/// Pre-resolved per-component cost-attribution handles: one registry
/// lookup per archive call instead of per chunk×stage. `bytes` counts
/// every byte a component was fed; `ns` holds the distribution of its
/// per-chunk kernel time; `kernel` counts chunks under the SIMD tier
/// (`scalar`/`sse2`/`avx2`) the component's kernels dispatch to on this
/// machine. Together they are the
/// `component.<name>.<dir>.{bytes,ns,kernel.<variant>}` metrics that the
/// `lc report` cost-center table ranks.
struct StageCost {
    bytes: &'static lc_telemetry::Counter,
    ns: &'static lc_telemetry::Histogram,
    kernel: &'static lc_telemetry::Counter,
}

fn stage_costs(stages: &[Arc<dyn Component>], dir: &str) -> Vec<StageCost> {
    stages
        .iter()
        .map(|c| {
            let n = c.name();
            let k = c.kernel_variant().label();
            StageCost {
                bytes: lc_telemetry::counter(&format!("component.{n}.{dir}.bytes")),
                ns: lc_telemetry::histogram(&format!("component.{n}.{dir}.ns")),
                kernel: lc_telemetry::counter(&format!("component.{n}.{dir}.kernel.{k}")),
            }
        })
        .collect()
}

fn encode_one_chunk(
    stages: &[Arc<dyn Component>],
    chunk: &[u8],
    chunk_index: usize,
    telemetry: bool,
    costs: &[StageCost],
    scratch: &mut Scratch,
) -> ChunkOutcome {
    let crc = crate::checksum::crc32(chunk);
    let mut mask = 0u8;
    let mut stage_records = Vec::with_capacity(stages.len());
    // The first stage reads the caller's chunk slice directly — no
    // defensive copy; subsequent stages ping-pong between the arena
    // buffers. Disjoint field borrows keep input and output separate.
    let mut live = Live::Input;
    for (s, comp) in stages.iter().enumerate() {
        let bytes_in = match live {
            Live::Input => chunk.len(),
            Live::A => scratch.a.len(),
            Live::B => scratch.b.len(),
        };
        let mut rec = StageRecord {
            bytes_in: bytes_in as u64,
            ..Default::default()
        };
        let mut sp = if telemetry {
            let mut sp = Span::begin(
                "stage.encode",
                comp.name(),
                vec![
                    ("chunk", ArgValue::from(chunk_index)),
                    ("bytes_in", ArgValue::from(rec.bytes_in)),
                ],
            );
            sp.with_histogram();
            sp
        } else {
            Span::disabled()
        };
        let t0 = if telemetry { lc_telemetry::now_ns() } else { 0 };
        let applied = match live {
            Live::Input => {
                crate::scratch::encode_stage(comp.as_ref(), chunk, &mut scratch.a, &mut rec.kernel)
            }
            Live::A => crate::scratch::encode_stage(
                comp.as_ref(),
                &scratch.a,
                &mut scratch.b,
                &mut rec.kernel,
            ),
            Live::B => crate::scratch::encode_stage(
                comp.as_ref(),
                &scratch.b,
                &mut scratch.a,
                &mut rec.kernel,
            ),
        };
        if telemetry {
            // Attribute the kernel's cost to the component even when the
            // output was discarded (copy-on-expand): the work happened.
            costs[s].bytes.add(rec.bytes_in);
            costs[s]
                .ns
                .record(lc_telemetry::now_ns().saturating_sub(t0));
            costs[s].kernel.add(1);
        }
        rec.applied = applied;
        rec.bytes_out = if applied {
            let written = match live.advance() {
                Live::A => scratch.a.len(),
                _ => scratch.b.len(),
            };
            written as u64
        } else {
            rec.bytes_in
        };
        sp.arg("applied", applied);
        sp.arg("bytes_out", rec.bytes_out);
        drop(sp);
        stage_records.push(rec);
        if applied {
            mask |= 1 << s;
            live = live.advance();
        }
    }
    // One exact-size copy out of the arena (the arena itself is reused
    // for the worker's next chunk).
    let data = match live {
        Live::Input => chunk.to_vec(),
        Live::A => scratch.a.clone(),
        Live::B => scratch.b.clone(),
    };
    ChunkOutcome {
        data,
        mask,
        crc,
        stage_records,
    }
}

/// Read a little-endian u32 at `at`; caller must have bounds-checked.
fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
}

/// Read a little-endian u64 at `at`; caller must have bounds-checked.
fn le_u64(bytes: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// Parse just the header of an archive.
///
/// Accepts format versions [`MIN_VERSION`]..=[`VERSION`]. Every field
/// read is bounds-checked against untrusted input: malformed bytes yield
/// a [`DecodeError`], never a panic.
pub fn parse_header(bytes: &[u8]) -> Result<Archive, DecodeError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize, context: &'static str| -> Result<usize, DecodeError> {
        match pos.checked_add(n) {
            Some(end) if end <= bytes.len() => {
                let at = *pos;
                *pos = end;
                Ok(at)
            }
            _ => Err(DecodeError::Truncated { context }),
        }
    };
    let at = take(&mut pos, 4, "magic")?;
    if bytes[at..at + 4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let at = take(&mut pos, 1, "version")?;
    let version = bytes[at];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(DecodeError::BadVersion(version));
    }
    let at = take(&mut pos, 1, "stage count")?;
    let n_stages = bytes[at] as usize;
    if n_stages == 0 || n_stages > MAX_STAGES {
        return Err(DecodeError::Corrupt {
            context: "stage count",
        });
    }
    let mut stage_names = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        let at = take(&mut pos, 1, "stage name length")?;
        let len = bytes[at] as usize;
        let at = take(&mut pos, len, "stage name")?;
        let name = std::str::from_utf8(&bytes[at..at + len]).map_err(|_| DecodeError::Corrupt {
            context: "stage name utf8",
        })?;
        stage_names.push(name.to_string());
    }
    let at = take(&mut pos, 8, "original length")?;
    let original_len = le_u64(bytes, at);
    let at = take(&mut pos, 4, "checksum")?;
    let crc32 = le_u32(bytes, at);
    let at = take(&mut pos, 4, "chunk count")?;
    let chunks = le_u32(bytes, at);
    if chunks as u64 != chunk_count(original_len as usize) as u64 {
        return Err(DecodeError::Corrupt {
            context: "chunk count vs length",
        });
    }
    let entry_size = if version >= 3 {
        TABLE_ENTRY_V3
    } else {
        TABLE_ENTRY_V2
    };
    let table_len = (chunks as usize)
        .checked_mul(entry_size)
        .ok_or(DecodeError::Truncated {
            context: "chunk table",
        })?;
    let table_offset = pos;
    take(&mut pos, table_len, "chunk table")?;
    Ok(Archive {
        version,
        stage_names,
        original_len,
        crc32,
        chunks,
        table_offset,
        payload_offset: pos,
    })
}

/// The parsed per-chunk table of an archive.
struct ChunkTable {
    masks: Vec<u8>,
    /// Stored payload sizes, widened for the prefix scan.
    sizes: Vec<u64>,
    /// Per-chunk CRC-32 of the original bytes; `None` for v2 archives.
    crcs: Option<Vec<u32>>,
}

fn parse_chunk_table(bytes: &[u8], header: &Archive) -> ChunkTable {
    let n_chunks = header.chunks as usize;
    let es = header.entry_size();
    let table = &bytes[header.table_offset..header.payload_offset];
    let mut masks = Vec::with_capacity(n_chunks);
    let mut sizes = Vec::with_capacity(n_chunks);
    let mut crcs = if header.version >= 3 {
        Some(Vec::with_capacity(n_chunks))
    } else {
        None
    };
    for i in 0..n_chunks {
        masks.push(table[i * es]);
        sizes.push(le_u32(table, i * es + 1) as u64);
        if let Some(c) = crcs.as_mut() {
            c.push(le_u32(table, i * es + 5));
        }
    }
    ChunkTable { masks, sizes, crcs }
}

/// Decode an archive, resolving stage names through `resolve`.
pub fn decode<R>(bytes: &[u8], resolve: R, pool: &Pool) -> Result<Vec<u8>, DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    decode_with_stats(bytes, resolve, pool).map(|(out, _)| out)
}

/// Decode an archive, also returning per-stage statistics.
pub fn decode_with_stats<R>(
    bytes: &[u8],
    resolve: R,
    pool: &Pool,
) -> Result<(Vec<u8>, PipelineStats), DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    decode_inner(bytes, resolve, pool, None)
}

fn decode_inner<R>(
    bytes: &[u8],
    resolve: R,
    pool: &Pool,
    cancel: Option<&lc_parallel::CancelToken>,
) -> Result<(Vec<u8>, PipelineStats), DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    let header = parse_header(bytes)?;
    let stages: Vec<Arc<dyn Component>> = header
        .stage_names
        .iter()
        .map(|n| resolve(n).ok_or_else(|| DecodeError::UnknownComponent(n.clone())))
        .collect::<Result<_, _>>()?;

    let n_chunks = header.chunks as usize;
    let telemetry = lc_telemetry::active();
    let costs = if telemetry {
        stage_costs(&stages, "decode")
    } else {
        Vec::new()
    };
    let costs_ref = &costs;
    let mut dec_span = span!("archive.decode", bytes = bytes.len(), chunks = n_chunks);
    let ChunkTable { masks, sizes, crcs } = parse_chunk_table(bytes, &header);
    // Chunk payload start offsets: a prefix scan, as in the GPU decoder.
    let (offsets, payload_total) = lc_parallel::scan::parallel_exclusive_scan(pool, &sizes);
    let payload = &bytes[header.payload_offset..];
    if payload.len() != payload_total as usize {
        return Err(DecodeError::Corrupt {
            context: "payload size",
        });
    }

    let original_len = header.original_len as usize;
    let mut out = vec![0u8; original_len];
    let out_base = out.as_mut_ptr() as usize;

    // Per-chunk decode into disjoint output regions, collecting per-worker
    // stage stats that are merged afterwards. Each worker also owns a
    // Scratch arena: the decoded bytes are borrowed from it (or from the
    // payload itself for all-skipped chunks) and copied straight into the
    // output buffer — no per-chunk Vec is ever allocated.
    let stage_names: Vec<&str> = header.stage_names.iter().map(|s| s.as_str()).collect();
    let stages_ref = &stages;
    let masks_ref = &masks;
    let sizes_ref = &sizes;
    let offsets_ref = &offsets;
    let crcs_ref = crcs.as_deref();
    type WorkerAcc = (Vec<StageRecord>, Option<DecodeError>, Scratch);
    let (records, first_err, _) = pool.fold(
        n_chunks,
        || -> WorkerAcc {
            (
                vec![StageRecord::default(); stages_ref.len()],
                None,
                Scratch::new(),
            )
        },
        |acc, i| {
            if acc.1.is_some() {
                return; // a chunk already failed; drain remaining work
            }
            // Deadline/shutdown poll at the chunk boundary: already-claimed
            // chunks complete, remaining claims drain as Cancelled.
            if cancel.is_some_and(|c| c.is_cancelled()) {
                acc.1 = Some(DecodeError::Cancelled);
                return;
            }
            let start = offsets_ref[i] as usize;
            let end = start + sizes_ref[i] as usize;
            if end > payload.len() {
                acc.1 = Some(DecodeError::Corrupt {
                    context: "chunk extent",
                });
                return;
            }
            let region = chunk_range(i, original_len);
            match decode_chunk_into(
                stages_ref,
                masks_ref[i],
                &payload[start..end],
                region.len(),
                &mut acc.0,
                i,
                telemetry,
                costs_ref,
                &mut acc.2,
            ) {
                Ok(decoded) => {
                    // v3: validate the recovered plaintext against the
                    // per-chunk CRC before it reaches the output buffer.
                    if let Some(crcs) = crcs_ref {
                        let actual = crate::checksum::crc32(decoded);
                        if actual != crcs[i] {
                            acc.1 = Some(DecodeError::ChunkChecksumMismatch {
                                chunk: i as u32,
                                expected: crcs[i],
                                actual,
                            });
                            return;
                        }
                    }
                    // SAFETY: chunk output regions tile `out` disjointly.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            decoded.as_ptr(),
                            (out_base as *mut u8).add(region.start),
                            decoded.len(),
                        );
                    }
                }
                Err(e) => acc.1 = Some(e),
            }
        },
        |mut a, b| {
            for (ra, rb) in a.0.iter_mut().zip(&b.0) {
                ra.kernel.merge(&rb.kernel);
                ra.bytes_in += rb.bytes_in;
                ra.bytes_out += rb.bytes_out;
                // `applied` is repurposed as a per-chunk counter below, so
                // fold chunk counts through bytes fields only.
            }
            if a.1.is_none() {
                a.1 = b.1;
            }
            a
        },
    );
    if let Some(e) = first_err {
        return Err(e);
    }

    let mut stage_stats: Vec<StageStats> = stage_names
        .iter()
        .map(|n| StageStats {
            component: n.to_string(),
            ..Default::default()
        })
        .collect();
    for (s, rec) in records.iter().enumerate() {
        stage_stats[s].kernel = rec.kernel;
        stage_stats[s].bytes_in = rec.bytes_in;
        stage_stats[s].bytes_out = rec.bytes_out;
    }
    for &mask in &masks {
        for (s, st) in stage_stats.iter_mut().enumerate() {
            if mask & (1 << s) != 0 {
                st.chunks_applied += 1;
            } else {
                st.chunks_skipped += 1;
            }
        }
    }
    // A deadline that fires after the last chunk but before the whole-file
    // integrity pass still counts: the CRC walk over `out` is real work.
    if cancel.is_some_and(|c| c.is_cancelled()) {
        return Err(DecodeError::Cancelled);
    }
    // Integrity: the decoded stream must match the recorded CRC — this is
    // what turns "plausible but wrong bytes" from payload corruption into
    // a hard error.
    let actual = crate::checksum::crc32(&out);
    if actual != header.crc32 {
        return Err(DecodeError::ChecksumMismatch {
            expected: header.crc32,
            actual,
        });
    }
    let stats = PipelineStats {
        stages: stage_stats,
        chunks: n_chunks as u64,
        uncompressed_bytes: header.original_len,
        compressed_bytes: (payload_total as usize + n_chunks * header.entry_size()) as u64,
    };
    if telemetry {
        dec_span.arg("decoded_bytes", out.len());
        lc_telemetry::counter("archive.decode.calls").add(1);
        lc_telemetry::counter("archive.decode.bytes_in").add(bytes.len() as u64);
        lc_telemetry::counter("archive.decode.bytes_out").add(out.len() as u64);
        lc_telemetry::counter("archive.decode.chunks").add(n_chunks as u64);
    }
    Ok((out, stats))
}

/// Like [`decode`], but refuse archives declaring more than
/// `max_decoded_bytes` of output before allocating anything.
///
/// This is the decompression-bomb guard: a hostile archive can declare an
/// arbitrary `original_len`, and plain [`decode`] would allocate it.
pub fn decode_bounded<R>(
    bytes: &[u8],
    resolve: R,
    pool: &Pool,
    max_decoded_bytes: u64,
) -> Result<Vec<u8>, DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    let header = parse_header(bytes)?;
    if header.original_len > max_decoded_bytes {
        return Err(DecodeError::TooLarge {
            declared: header.original_len,
            limit: max_decoded_bytes,
        });
    }
    decode(bytes, resolve, pool)
}

/// [`decode_bounded`] plus cooperative cancellation: workers poll
/// `cancel` at every chunk boundary (and once more before the whole-file
/// CRC pass) and the decode fails with [`DecodeError::Cancelled`] once
/// it trips. This is the `lc-serve` unpack path — the bomb guard and the
/// request deadline compose.
pub fn decode_bounded_cancellable<R>(
    bytes: &[u8],
    resolve: R,
    pool: &Pool,
    max_decoded_bytes: u64,
    cancel: &lc_parallel::CancelToken,
) -> Result<Vec<u8>, DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    let header = parse_header(bytes)?;
    if header.original_len > max_decoded_bytes {
        return Err(DecodeError::TooLarge {
            declared: header.original_len,
            limit: max_decoded_bytes,
        });
    }
    decode_inner(bytes, resolve, pool, Some(cancel)).map(|(out, _)| out)
}

/// Best-effort decode of a damaged archive.
///
/// Where [`decode`] aborts on the first fault, this decodes every chunk
/// independently and degrades per chunk:
///
/// * a chunk whose payload extent lies (partly) beyond the available
///   bytes — mid-stream truncation — is lost as `Truncated`;
/// * a chunk whose decoder returns an error is lost with that error;
/// * a chunk whose decoder **panics** is caught and lost as `Corrupt`
///   (decoders must not panic, but salvage is exactly the place to
///   survive the ones that do);
/// * a v3 chunk whose decoded bytes miss their per-chunk CRC is lost as
///   `ChunkChecksumMismatch`.
///
/// Lost chunks' output regions are zero-filled, so the returned buffer
/// always has the declared length with recovered chunks at their exact
/// offsets. Hard errors remain only for damage that makes per-chunk
/// recovery meaningless: unusable header or chunk table, or an unknown
/// component.
///
/// For v2 archives (no per-chunk CRC) only structural faults are
/// detectable per chunk; value-level damage shows up solely as
/// `archive_crc_ok == false` in the report.
pub fn decode_salvage<R>(
    bytes: &[u8],
    resolve: R,
    pool: &Pool,
) -> Result<(Vec<u8>, SalvageReport), DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    let header = parse_header(bytes)?;
    let stages: Vec<Arc<dyn Component>> = header
        .stage_names
        .iter()
        .map(|n| resolve(n).ok_or_else(|| DecodeError::UnknownComponent(n.clone())))
        .collect::<Result<_, _>>()?;

    let n_chunks = header.chunks as usize;
    let ChunkTable { masks, sizes, crcs } = parse_chunk_table(bytes, &header);
    let (offsets, _) = lc_parallel::scan::parallel_exclusive_scan(pool, &sizes);
    let payload = &bytes[header.payload_offset..];

    let original_len = header.original_len as usize;
    let stages_ref = &stages;
    let crcs_ref = crcs.as_deref();
    let telemetry = lc_telemetry::active();
    let costs = if telemetry {
        stage_costs(&stages, "decode")
    } else {
        Vec::new()
    };
    let costs_ref = &costs;
    let _salvage_span = span!(
        "archive.decode_salvage",
        bytes = bytes.len(),
        chunks = n_chunks
    );

    // Decode all chunks independently; panics are fenced per chunk so one
    // poisoned payload cannot take down its siblings.
    let results: Vec<Result<Vec<u8>, DecodeError>> = pool.map(n_chunks, |i| {
        let start = offsets[i] as usize;
        let end = start.saturating_add(sizes[i] as usize);
        if end > payload.len() {
            return Err(DecodeError::Truncated {
                context: "chunk payload",
            });
        }
        let region = chunk_range(i, original_len);
        let mut records = vec![StageRecord::default(); stages_ref.len()];
        // Salvage is the cold path: a per-chunk arena (and an owned copy
        // of the recovered bytes) is fine here — isolation matters more
        // than allocation traffic.
        let decoded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut scratch = Scratch::new();
            decode_chunk_into(
                stages_ref,
                masks[i],
                &payload[start..end],
                region.len(),
                &mut records,
                i,
                telemetry,
                costs_ref,
                &mut scratch,
            )
            .map(|d| d.to_vec())
        }))
        .unwrap_or(Err(DecodeError::Corrupt {
            context: "decoder panicked",
        }))?;
        if let Some(crcs) = crcs_ref {
            let actual = crate::checksum::crc32(&decoded);
            if actual != crcs[i] {
                return Err(DecodeError::ChunkChecksumMismatch {
                    chunk: i as u32,
                    expected: crcs[i],
                    actual,
                });
            }
        }
        Ok(decoded)
    });

    // Assemble: recovered chunks at their exact offsets, losses zeroed.
    let mut out = vec![0u8; original_len];
    let mut errors = Vec::new();
    let mut recovered = 0u32;
    for (i, res) in results.into_iter().enumerate() {
        match res {
            Ok(decoded) => {
                let region = chunk_range(i, original_len);
                out[region].copy_from_slice(&decoded);
                recovered += 1;
            }
            Err(error) => errors.push(ChunkFault {
                chunk: i as u32,
                error,
            }),
        }
    }
    let lost = errors.len() as u32;
    let archive_crc_ok = crate::checksum::crc32(&out) == header.crc32;
    Ok((
        out,
        SalvageReport {
            recovered,
            lost,
            errors,
            archive_crc_ok,
        },
    ))
}

/// [`decode_salvage`] behind the same size guard as [`decode_bounded`].
pub fn decode_salvage_bounded<R>(
    bytes: &[u8],
    resolve: R,
    pool: &Pool,
    max_decoded_bytes: u64,
) -> Result<(Vec<u8>, SalvageReport), DecodeError>
where
    R: Fn(&str) -> Option<Arc<dyn Component>>,
{
    let header = parse_header(bytes)?;
    if header.original_len > max_decoded_bytes {
        return Err(DecodeError::TooLarge {
            declared: header.original_len,
            limit: max_decoded_bytes,
        });
    }
    decode_salvage(bytes, resolve, pool)
}

/// Decode one chunk into the worker's arena, returning a borrowed view
/// of the recovered bytes.
///
/// The first inverse stage reads the stored payload slice directly (no
/// defensive copy); subsequent stages ping-pong between the arena
/// buffers. For a chunk whose mask is empty — every stage skipped by
/// copy-on-expand — the returned slice *is* `payload`: decode of such a
/// chunk touches no buffer at all and the caller copies the stored
/// bytes straight into the output region.
#[allow(clippy::too_many_arguments)]
fn decode_chunk_into<'s>(
    stages: &[Arc<dyn Component>],
    mask: u8,
    payload: &'s [u8],
    expected_len: usize,
    records: &mut [StageRecord],
    chunk_index: usize,
    telemetry: bool,
    costs: &[StageCost],
    scratch: &'s mut Scratch,
) -> Result<&'s [u8], DecodeError> {
    let mut live = Live::Input;
    // Inverse transformations in reverse order (paper Fig. 1).
    for (s, comp) in stages.iter().enumerate().rev() {
        if mask & (1 << s) == 0 {
            // Stage skipped during encode (copy-on-expand): nothing to
            // undo. Record a zero-duration span so traces show the skip.
            if telemetry {
                let mut sp = Span::begin(
                    "stage.decode",
                    comp.name(),
                    vec![
                        ("chunk", ArgValue::from(chunk_index)),
                        ("skipped", ArgValue::from(true)),
                    ],
                );
                sp.with_histogram();
            }
            continue;
        }
        let rec = &mut records[s];
        let bytes_in = match live {
            Live::Input => payload.len(),
            Live::A => scratch.a.len(),
            Live::B => scratch.b.len(),
        };
        rec.bytes_in += bytes_in as u64;
        let mut sp = if telemetry {
            let mut sp = Span::begin(
                "stage.decode",
                comp.name(),
                vec![
                    ("chunk", ArgValue::from(chunk_index)),
                    ("bytes_in", ArgValue::from(bytes_in)),
                ],
            );
            sp.with_histogram();
            sp
        } else {
            Span::disabled()
        };
        let t0 = if telemetry { lc_telemetry::now_ns() } else { 0 };
        let stage_result = match live {
            Live::Input => crate::scratch::decode_stage(
                comp.as_ref(),
                payload,
                &mut scratch.a,
                &mut rec.kernel,
            ),
            Live::A => crate::scratch::decode_stage(
                comp.as_ref(),
                &scratch.a,
                &mut scratch.b,
                &mut rec.kernel,
            ),
            Live::B => crate::scratch::decode_stage(
                comp.as_ref(),
                &scratch.b,
                &mut scratch.a,
                &mut rec.kernel,
            ),
        };
        if telemetry {
            costs[s].bytes.add(bytes_in as u64);
            costs[s]
                .ns
                .record(lc_telemetry::now_ns().saturating_sub(t0));
            costs[s].kernel.add(1);
        }
        stage_result?;
        live = live.advance();
        let bytes_out = match live {
            Live::A => scratch.a.len(),
            _ => scratch.b.len(),
        };
        sp.arg("bytes_out", bytes_out);
        drop(sp);
        records[s].bytes_out += bytes_out as u64;
    }
    let cur: &[u8] = match live {
        Live::Input => payload,
        Live::A => &scratch.a,
        Live::B => &scratch.b,
    };
    if cur.len() != expected_len {
        return Err(DecodeError::LengthMismatch {
            expected: expected_len as u64,
            actual: cur.len() as u64,
        });
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::CHUNK_SIZE;
    use crate::pipeline::test_support::{AddOne, DropTrailingZeros};

    fn resolver(name: &str) -> Option<Arc<dyn Component>> {
        match name {
            "ADD1_1" => Some(Arc::new(AddOne)),
            "DTZ_1" => Some(Arc::new(DropTrailingZeros)),
            _ => None,
        }
    }

    fn pipeline() -> Pipeline {
        Pipeline::parse("ADD1_1 DTZ_1", resolver).unwrap()
    }

    fn roundtrip(input: &[u8]) {
        let pool = Pool::new(4);
        let archive = encode(&pipeline(), input, &pool);
        let out = decode(&archive, resolver, &pool).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&[]);
    }

    #[test]
    fn roundtrip_single_byte() {
        roundtrip(&[42]);
    }

    #[test]
    fn roundtrip_one_exact_chunk() {
        let data: Vec<u8> = (0..CHUNK_SIZE).map(|i| (i % 251) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_many_chunks_with_tail() {
        let data: Vec<u8> = (0..CHUNK_SIZE * 7 + 333).map(|i| (i % 13) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn compressible_data_shrinks() {
        // AddOne maps 0xFF -> 0x00, so trailing 0xFF bytes become zeros that
        // DTZ drops.
        let mut data = vec![1u8; 1000];
        data.extend(vec![0xFFu8; CHUNK_SIZE - 1000]);
        let pool = Pool::new(2);
        let res = encode_with_stats(&pipeline(), &data, &pool);
        assert!(res.archive.len() < data.len());
        assert_eq!(res.stats.stages[1].chunks_applied, 1);
        let out = decode(&res.archive, resolver, &pool).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn incompressible_chunk_skips_reducer() {
        // No trailing zeros after AddOne: DTZ adds an 8-byte header and
        // expands, so the framework must skip it.
        let data: Vec<u8> = (0..CHUNK_SIZE).map(|i| (i % 200) as u8 + 1).collect();
        let pool = Pool::new(2);
        let res = encode_with_stats(&pipeline(), &data, &pool);
        assert_eq!(res.stats.stages[1].chunks_skipped, 1);
        assert_eq!(res.stats.stages[1].chunks_applied, 0);
        // Mutator still applied.
        assert_eq!(res.stats.stages[0].chunks_applied, 1);
        let out = decode(&res.archive, resolver, &pool).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn decode_stats_skip_means_zero_decode_work() {
        let data: Vec<u8> = (0..CHUNK_SIZE).map(|i| (i % 200) as u8 + 1).collect();
        let pool = Pool::new(2);
        let archive = encode(&pipeline(), &data, &pool);
        let (_, stats) = decode_with_stats(&archive, resolver, &pool).unwrap();
        assert_eq!(stats.stages[1].chunks_applied, 0);
        assert!(stats.stages[1].kernel.is_zero());
        assert!(!stats.stages[0].kernel.is_zero());
    }

    #[test]
    fn bad_magic_rejected() {
        let pool = Pool::new(1);
        let err = decode(b"NOPExxxx", resolver, &pool).unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
    }

    #[test]
    fn truncated_header_rejected() {
        let pool = Pool::new(1);
        let archive = encode(&pipeline(), &[1, 2, 3], &pool);
        for cut in 1..archive.len().min(24) {
            let err = decode(&archive[..cut], resolver, &pool);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn unknown_component_rejected() {
        let pool = Pool::new(1);
        let archive = encode(&pipeline(), &[1, 2, 3], &pool);
        let err = decode(&archive, |_| None::<Arc<dyn Component>>, &pool).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownComponent(_)));
    }

    #[test]
    fn corrupted_payload_is_an_error_not_a_panic() {
        let mut data = vec![1u8; 1000];
        data.extend(vec![0xFFu8; CHUNK_SIZE - 1000]);
        let pool = Pool::new(2);
        let mut archive = encode(&pipeline(), &data, &pool);
        let len = archive.len();
        archive[len - 20..len].fill(0xAB);
        // Structural damage errors early; value-only damage is caught by
        // the CRC. Either way: an error, never a panic or silent corruption.
        assert!(decode(&archive, resolver, &pool).is_err());
    }

    #[test]
    fn version_mismatch_rejected() {
        let pool = Pool::new(1);
        let mut archive = encode(&pipeline(), &[1, 2, 3], &pool);
        archive[4] = 99;
        assert_eq!(
            decode(&archive, resolver, &pool).unwrap_err(),
            DecodeError::BadVersion(99)
        );
    }

    #[test]
    fn header_parse_reports_fields() {
        let pool = Pool::new(1);
        let data = vec![7u8; CHUNK_SIZE + 5];
        let archive = encode(&pipeline(), &data, &pool);
        let h = parse_header(&archive).unwrap();
        assert_eq!(h.version, VERSION);
        assert_eq!(h.entry_size(), TABLE_ENTRY_V3);
        assert_eq!(h.stage_names, vec!["ADD1_1", "DTZ_1"]);
        assert_eq!(h.original_len, data.len() as u64);
        assert_eq!(h.chunks, 2);
    }

    /// Incompressible multi-chunk input: DTZ skips every chunk, so each
    /// chunk's payload is exactly CHUNK_SIZE AddOne'd bytes — flipping a
    /// payload byte damages exactly one chunk, with no structural error.
    fn incompressible(chunks: usize) -> Vec<u8> {
        (0..CHUNK_SIZE * chunks)
            .map(|i| (i % 200) as u8 + 1)
            .collect()
    }

    /// Rewrite a v3 archive as v2 (drop per-chunk CRCs) to exercise the
    /// backward-compatibility path without a frozen binary fixture.
    fn downgrade_to_v2(archive: &[u8]) -> Vec<u8> {
        let h = parse_header(archive).unwrap();
        assert_eq!(h.version, 3);
        let mut v2 = Vec::with_capacity(archive.len());
        v2.extend_from_slice(&archive[..4]);
        v2.push(2);
        v2.extend_from_slice(&archive[5..h.table_offset]);
        for i in 0..h.chunks as usize {
            let at = h.table_offset + i * TABLE_ENTRY_V3;
            v2.extend_from_slice(&archive[at..at + TABLE_ENTRY_V2]);
        }
        v2.extend_from_slice(&archive[h.payload_offset..]);
        v2
    }

    #[test]
    fn v2_archives_still_decode() {
        let pool = Pool::new(4);
        let data = incompressible(3);
        let v2 = downgrade_to_v2(&encode(&pipeline(), &data, &pool));
        let h = parse_header(&v2).unwrap();
        assert_eq!(h.version, 2);
        assert_eq!(h.entry_size(), TABLE_ENTRY_V2);
        assert_eq!(decode(&v2, resolver, &pool).unwrap(), data);
    }

    #[test]
    fn chunk_crc_localizes_value_damage() {
        let pool = Pool::new(4);
        let data = incompressible(4);
        let mut archive = encode(&pipeline(), &data, &pool);
        let h = parse_header(&archive).unwrap();
        // Every chunk stored at full size (DTZ skipped): chunk 2's payload
        // starts 2*CHUNK_SIZE into the payload region.
        archive[h.payload_offset + 2 * CHUNK_SIZE + 100] ^= 0xFF;
        match decode(&archive, resolver, &pool).unwrap_err() {
            DecodeError::ChunkChecksumMismatch { chunk, .. } => assert_eq!(chunk, 2),
            other => panic!("expected ChunkChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn salvage_clean_archive_is_clean() {
        let pool = Pool::new(4);
        let data = incompressible(3);
        let archive = encode(&pipeline(), &data, &pool);
        let (out, report) = decode_salvage(&archive, resolver, &pool).unwrap();
        assert_eq!(out, data);
        assert!(report.is_clean());
        assert_eq!(report.recovered, 3);
        assert_eq!(report.lost, 0);
        assert!(report.errors.is_empty());
    }

    #[test]
    fn salvage_loses_exactly_the_damaged_chunks() {
        let pool = Pool::new(4);
        let data = incompressible(5);
        let mut archive = encode(&pipeline(), &data, &pool);
        let h = parse_header(&archive).unwrap();
        for damaged in [1usize, 3] {
            archive[h.payload_offset + damaged * CHUNK_SIZE + 7] ^= 0x55;
        }
        let (out, report) = decode_salvage(&archive, resolver, &pool).unwrap();
        assert_eq!(report.recovered, 3);
        assert_eq!(report.lost, 2);
        assert!(!report.archive_crc_ok);
        assert_eq!(
            report.errors.iter().map(|f| f.chunk).collect::<Vec<_>>(),
            vec![1, 3]
        );
        for i in 0..5 {
            let r = chunk_range(i, data.len());
            if i == 1 || i == 3 {
                assert!(out[r].iter().all(|&b| b == 0), "chunk {i} zero-filled");
            } else {
                assert_eq!(out[r.clone()], data[r], "chunk {i} recovered");
            }
        }
    }

    #[test]
    fn salvage_survives_mid_stream_truncation() {
        let pool = Pool::new(4);
        let data = incompressible(4);
        let archive = encode(&pipeline(), &data, &pool);
        let h = parse_header(&archive).unwrap();
        // Cut inside chunk 2's payload: chunks 0 and 1 stay whole, chunk 2
        // is partial, chunk 3 is gone.
        let cut = &archive[..h.payload_offset + 2 * CHUNK_SIZE + 10];
        let (out, report) = decode_salvage(cut, resolver, &pool).unwrap();
        assert_eq!(report.recovered, 2);
        assert_eq!(report.lost, 2);
        assert!(report
            .errors
            .iter()
            .all(|f| matches!(f.error, DecodeError::Truncated { .. })));
        assert_eq!(out[..2 * CHUNK_SIZE], data[..2 * CHUNK_SIZE]);
        assert!(out[2 * CHUNK_SIZE..].iter().all(|&b| b == 0));
    }

    #[test]
    fn salvage_v2_reports_value_damage_via_archive_crc_only() {
        let pool = Pool::new(4);
        let data = incompressible(3);
        let mut v2 = downgrade_to_v2(&encode(&pipeline(), &data, &pool));
        let h = parse_header(&v2).unwrap();
        v2[h.payload_offset + CHUNK_SIZE + 9] ^= 0x01;
        let (_, report) = decode_salvage(&v2, resolver, &pool).unwrap();
        // Without per-chunk CRCs the damaged chunk decodes "successfully";
        // only the whole-archive CRC betrays the corruption.
        assert_eq!(report.lost, 0);
        assert!(!report.archive_crc_ok);
        assert!(!report.is_clean());
    }

    #[test]
    fn bounded_decode_rejects_bombs_before_allocating() {
        let pool = Pool::new(2);
        let data = incompressible(2);
        let archive = encode(&pipeline(), &data, &pool);
        let err = decode_bounded(&archive, resolver, &pool, data.len() as u64 - 1).unwrap_err();
        assert_eq!(
            err,
            DecodeError::TooLarge {
                declared: data.len() as u64,
                limit: data.len() as u64 - 1,
            }
        );
        assert_eq!(
            decode_bounded(&archive, resolver, &pool, data.len() as u64).unwrap(),
            data
        );
        let err = decode_salvage_bounded(&archive, resolver, &pool, 16).unwrap_err();
        assert!(matches!(err, DecodeError::TooLarge { .. }));
    }
}
