//! Compiler code-generation model.
//!
//! The paper's central findings are *relative multipliers* between the
//! three compilers on shared operations:
//!
//! 1. NVCC and HIPCC targeting NVIDIA GPUs generate near-identical code —
//!    HIPCC simply invokes NVCC with the HIP headers (§3.1), and the
//!    measured distributions coincide (§6.1).
//! 2. Clang encodes consistently slower but decodes consistently faster
//!    than NVCC/HIPCC, and the paper localizes the difference in
//!    pipeline-independent *framework* operations: the encoder's decoupled
//!    look-back and the decoder's block prefix sum (§6.1).
//! 3. Going from `-O1` to `-O3` barely moves NVCC/HIPCC; Clang's encoders
//!    get slightly *slower* at `-O3` on NVIDIA while its decoders gain
//!    < 10% (§6.5) — so optimization level alone does not explain (2);
//!    the model therefore also carries opt-independent register-allocation
//!    effects.
//!
//! Every constant below encodes one of these observations and is
//! calibrated only against the *qualitative* shape of the paper's figures
//! (who is faster, roughly by how much) — not against absolute numbers,
//! which depend on the authors' hardware.

use crate::specs::Vendor;

/// The three compilers of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerId {
    /// NVIDIA's proprietary CUDA compiler.
    Nvcc,
    /// Open-source LLVM Clang compiling CUDA (née gpucc).
    Clang,
    /// AMD's HIP compiler (invokes NVCC on NVIDIA targets).
    Hipcc,
}

impl CompilerId {
    /// All compilers, figure legend order.
    pub const ALL: [CompilerId; 3] = [CompilerId::Nvcc, CompilerId::Clang, CompilerId::Hipcc];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CompilerId::Nvcc => "NVCC",
            CompilerId::Clang => "Clang",
            CompilerId::Hipcc => "HIPCC",
        }
    }

    /// Which compilers can target a vendor: CUDA compilers (NVCC, Clang)
    /// are NVIDIA-only; HIPCC targets both (§3.1).
    pub fn supports(&self, vendor: Vendor) -> bool {
        match self {
            CompilerId::Nvcc | CompilerId::Clang => vendor == Vendor::Nvidia,
            CompilerId::Hipcc => true,
        }
    }

    /// The compilers available on a platform, in legend order.
    pub fn for_vendor(vendor: Vendor) -> Vec<CompilerId> {
        Self::ALL
            .iter()
            .copied()
            .filter(|c| c.supports(vendor))
            .collect()
    }
}

/// Optimization level of the build (§6.5 compares `-O1` vs `-O3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// `-O1`.
    O1,
    /// `-O3` (used by all results outside §6.5).
    O3,
}

/// Cost multipliers a compiler's generated code exhibits, relative to
/// NVCC `-O3` on the same hardware (1.0 = identical; > 1.0 = slower).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodegenProfile {
    /// Component ALU time (register allocation quality, scheduling).
    pub compute: f64,
    /// Achieved fraction of peak memory bandwidth.
    pub memory_efficiency: f64,
    /// Warp shuffle / warp-sync time.
    pub shuffle: f64,
    /// Encoder-side decoupled look-back time (framework, §6.1).
    pub lookback: f64,
    /// Decoder-side block prefix-sum time (framework, §6.1).
    pub block_scan: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_us: f64,
}

/// The calibrated profile for a (compiler, opt level, vendor) combination.
///
/// # Panics
///
/// Panics if the compiler does not support the vendor (NVCC/Clang on AMD).
pub fn profile(compiler: CompilerId, opt: OptLevel, vendor: Vendor) -> CodegenProfile {
    assert!(
        compiler.supports(vendor),
        "{} cannot target {:?} GPUs",
        compiler.label(),
        vendor
    );
    match (compiler, vendor) {
        // NVCC: the baseline. -O1 costs a few percent of ALU quality but
        // nothing else (§6.5: "negligible speedups").
        (CompilerId::Nvcc, Vendor::Nvidia) => match opt {
            OptLevel::O3 => CodegenProfile {
                compute: 1.0,
                memory_efficiency: 0.65,
                shuffle: 1.0,
                lookback: 1.0,
                block_scan: 1.0,
                launch_us: 4.0,
            },
            OptLevel::O1 => CodegenProfile {
                compute: 1.04,
                memory_efficiency: 0.65,
                shuffle: 1.0,
                lookback: 1.02,
                block_scan: 1.02,
                launch_us: 4.0,
            },
        },
        // HIPCC on NVIDIA invokes NVCC; only the HIP header shims differ,
        // a sub-percent effect (§6.1: "distributions are always close").
        (CompilerId::Hipcc, Vendor::Nvidia) => {
            let mut p = profile(CompilerId::Nvcc, opt, vendor);
            p.compute *= 1.006;
            p.launch_us += 0.3;
            p
        }
        // Clang on NVIDIA: slightly weaker component codegen (register
        // allocation; §6.5 conclusion), a much slower decoupled look-back
        // (consistently slower encode, §6.1) and a faster block scan
        // (consistently faster decode, §6.1). -O3 *hurts* its encoder
        // (§6.5 Fig. 14) and helps its decoder by < 10% (Fig. 15).
        (CompilerId::Clang, Vendor::Nvidia) => match opt {
            OptLevel::O3 => CodegenProfile {
                compute: 1.02,
                memory_efficiency: 0.65,
                shuffle: 0.97,
                lookback: 1.45,
                block_scan: 0.72,
                launch_us: 3.5,
            },
            // Clang's -O1/-O3 delta is concentrated in the framework
            // operations (the paper localizes the compiler split there,
            // §6.1/§6.5): -O3 regresses the look-back and improves the
            // block scan; component codegen barely moves.
            OptLevel::O1 => CodegenProfile {
                compute: 1.02,
                memory_efficiency: 0.65,
                shuffle: 0.97,
                lookback: 1.22,   // -O3 regresses the look-back (Fig. 14)
                block_scan: 0.78, // -O3 gains < 10% on decode (Fig. 15)
                launch_us: 3.5,
            },
        },
        // HIPCC on AMD: its own baseline; -O1 ≈ -O3 (§6.5: "quite stable").
        (CompilerId::Hipcc, Vendor::Amd) => match opt {
            OptLevel::O3 => CodegenProfile {
                compute: 1.0,
                memory_efficiency: 0.60,
                shuffle: 1.05,
                lookback: 1.08,
                block_scan: 1.0,
                launch_us: 6.0,
            },
            OptLevel::O1 => CodegenProfile {
                compute: 1.02,
                memory_efficiency: 0.60,
                shuffle: 1.05,
                lookback: 1.09,
                block_scan: 1.01,
                launch_us: 6.0,
            },
        },
        _ => unreachable!("supports() check above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_compilers_are_nvidia_only() {
        assert!(CompilerId::Nvcc.supports(Vendor::Nvidia));
        assert!(!CompilerId::Nvcc.supports(Vendor::Amd));
        assert!(!CompilerId::Clang.supports(Vendor::Amd));
        assert!(CompilerId::Hipcc.supports(Vendor::Amd));
        assert!(CompilerId::Hipcc.supports(Vendor::Nvidia));
    }

    #[test]
    fn platform_compiler_sets() {
        assert_eq!(
            CompilerId::for_vendor(Vendor::Nvidia),
            vec![CompilerId::Nvcc, CompilerId::Clang, CompilerId::Hipcc]
        );
        assert_eq!(CompilerId::for_vendor(Vendor::Amd), vec![CompilerId::Hipcc]);
    }

    #[test]
    #[should_panic(expected = "cannot target")]
    fn nvcc_on_amd_panics() {
        profile(CompilerId::Nvcc, OptLevel::O3, Vendor::Amd);
    }

    #[test]
    fn nvcc_and_hipcc_nearly_identical_on_nvidia() {
        let n = profile(CompilerId::Nvcc, OptLevel::O3, Vendor::Nvidia);
        let h = profile(CompilerId::Hipcc, OptLevel::O3, Vendor::Nvidia);
        assert!((h.compute / n.compute - 1.0).abs() < 0.01);
        assert_eq!(h.lookback, n.lookback);
        assert_eq!(h.block_scan, n.block_scan);
    }

    #[test]
    fn clang_slower_lookback_faster_block_scan() {
        let n = profile(CompilerId::Nvcc, OptLevel::O3, Vendor::Nvidia);
        let c = profile(CompilerId::Clang, OptLevel::O3, Vendor::Nvidia);
        assert!(c.lookback > n.lookback * 1.2, "encode framework slower");
        assert!(c.block_scan < n.block_scan * 0.9, "decode framework faster");
    }

    #[test]
    fn clang_o3_regresses_encode_and_improves_decode() {
        let o1 = profile(CompilerId::Clang, OptLevel::O1, Vendor::Nvidia);
        let o3 = profile(CompilerId::Clang, OptLevel::O3, Vendor::Nvidia);
        assert!(o3.lookback > o1.lookback, "Fig. 14: -O3 encode slowdown");
        assert!(o3.block_scan < o1.block_scan, "Fig. 15: -O3 decode speedup");
        // Decode framework gain is < 10% (Fig. 15).
        assert!(o1.block_scan / o3.block_scan < 1.12);
    }

    #[test]
    fn amd_opt_levels_are_stable() {
        let o1 = profile(CompilerId::Hipcc, OptLevel::O1, Vendor::Amd);
        let o3 = profile(CompilerId::Hipcc, OptLevel::O3, Vendor::Amd);
        assert!((o1.compute / o3.compute - 1.0).abs() < 0.03);
        assert!((o1.lookback / o3.lookback - 1.0).abs() < 0.02);
    }
}
