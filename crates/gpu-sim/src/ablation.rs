//! Model ablations: variants of the cost model with one mechanism
//! disabled, used to show *which* modeling choice produces which paper
//! phenomenon (and by the `ablation` bench to quantify it).
//!
//! | variant              | disables                         | paper phenomenon it should break |
//! |----------------------|----------------------------------|----------------------------------|
//! | `NoRoofline`         | the `max(compute, DRAM)` ceiling | decode's upward skew (§6.1)      |
//! | `NoFramework`        | look-back / block-scan terms     | the Clang encode/decode split (§6.1) |
//! | `NoDivergence`       | divergence penalty               | part of RLE/RRE's data dependence |
//! | `NoLatency`          | sync/scan serialized latency     | predictors' slow decode (§6.3)   |
//! | `Full`               | nothing (the real model)         | —                                |

use lc_core::KernelStats;

use crate::cost::{framework_time, memory_time, stage_time, Direction, SimConfig};

/// Which mechanism to knock out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The complete model (reference).
    Full,
    /// Additive instead of roofline combination with DRAM time.
    NoRoofline,
    /// Zero framework (look-back / block scan / launch) cost.
    NoFramework,
    /// Divergent branches cost nothing.
    NoDivergence,
    /// Syncs and scan steps cost nothing.
    NoLatency,
}

impl Variant {
    /// All variants, reference first.
    pub const ALL: [Variant; 5] = [
        Variant::Full,
        Variant::NoRoofline,
        Variant::NoFramework,
        Variant::NoDivergence,
        Variant::NoLatency,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Full => "full",
            Variant::NoRoofline => "no-roofline",
            Variant::NoFramework => "no-framework",
            Variant::NoDivergence => "no-divergence",
            Variant::NoLatency => "no-latency",
        }
    }
}

fn strip(stats: &KernelStats, variant: Variant) -> KernelStats {
    let mut s = *stats;
    match variant {
        Variant::NoDivergence => s.divergent_branches = 0,
        Variant::NoLatency => {
            s.block_syncs = 0;
            s.warp_syncs = 0;
            s.scan_steps = 0;
        }
        _ => {}
    }
    s
}

/// Pipeline time under a model variant (same signature as
/// [`crate::pipeline_time`] plus the variant).
pub fn pipeline_time_ablated(
    cfg: &SimConfig,
    direction: Direction,
    stage_kernels: &[KernelStats],
    chunks: u64,
    uncompressed: u64,
    compressed: u64,
    variant: Variant,
) -> f64 {
    let stages: f64 = stage_kernels
        .iter()
        .map(|s| stage_time(cfg, &strip(s, variant), chunks))
        .sum();
    let mem = memory_time(cfg, uncompressed + compressed);
    let fw = if variant == Variant::NoFramework {
        0.0
    } else {
        framework_time(cfg, direction, chunks)
    };
    match variant {
        Variant::NoRoofline => stages + mem + fw,
        _ => stages.max(mem) + fw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompilerId, OptLevel};
    use crate::specs::RTX_4090;

    fn stats() -> KernelStats {
        KernelStats {
            words: 4096 * 64,
            thread_ops: 4096 * 64 * 4,
            global_reads: 16384 * 64,
            global_writes: 16384 * 64,
            shared_traffic: 32768 * 64,
            warp_shuffles: 4096 * 8,
            warp_syncs: 64 * 16,
            block_syncs: 64 * 4,
            atomic_ops: 64,
            scan_steps: 64 * 13,
            divergent_branches: 64 * 500,
        }
    }

    fn cfg(c: CompilerId) -> SimConfig {
        SimConfig::new(&RTX_4090, c, OptLevel::O3)
    }

    #[test]
    fn full_matches_public_pipeline_time() {
        let s = [stats(); 3];
        let a = pipeline_time_ablated(
            &cfg(CompilerId::Nvcc),
            Direction::Encode,
            &s,
            64,
            64 * 16384,
            64 * 9000,
            Variant::Full,
        );
        let b = crate::pipeline_time(
            &cfg(CompilerId::Nvcc),
            Direction::Encode,
            &s,
            64,
            64 * 16384,
            64 * 9000,
        );
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn each_ablation_is_no_slower_than_full() {
        let s = [stats(); 3];
        let full = pipeline_time_ablated(
            &cfg(CompilerId::Nvcc),
            Direction::Encode,
            &s,
            64,
            64 * 16384,
            64 * 9000,
            Variant::Full,
        );
        for v in [
            Variant::NoFramework,
            Variant::NoDivergence,
            Variant::NoLatency,
        ] {
            let t = pipeline_time_ablated(
                &cfg(CompilerId::Nvcc),
                Direction::Encode,
                &s,
                64,
                64 * 16384,
                64 * 9000,
                v,
            );
            assert!(t <= full, "{}: {t} > {full}", v.label());
        }
        // NoRoofline is additive and therefore never faster.
        let add = pipeline_time_ablated(
            &cfg(CompilerId::Nvcc),
            Direction::Encode,
            &s,
            64,
            64 * 16384,
            64 * 9000,
            Variant::NoRoofline,
        );
        assert!(add >= full);
    }

    #[test]
    fn no_framework_erases_the_compiler_split() {
        // The paper's Clang/NVCC encode split lives in the framework terms;
        // with them removed only the small compute multiplier remains.
        // Use a light, mutator-like kernel so the framework share is
        // representative of the fast end of the distribution.
        let light = KernelStats {
            words: 4096 * 64,
            thread_ops: 4096 * 64 * 2,
            global_reads: 16384 * 64,
            global_writes: 16384 * 64,
            shared_traffic: 32768 * 64,
            ..Default::default()
        };
        let s = [light; 3];
        let t = |c, v| {
            pipeline_time_ablated(&cfg(c), Direction::Encode, &s, 64, 64 * 16384, 64 * 9000, v)
        };
        let split_full = t(CompilerId::Clang, Variant::Full) / t(CompilerId::Nvcc, Variant::Full);
        let split_ablated =
            t(CompilerId::Clang, Variant::NoFramework) / t(CompilerId::Nvcc, Variant::NoFramework);
        assert!(
            split_full > 1.01,
            "full model shows the split: {split_full}"
        );
        assert!(
            split_ablated - 1.0 < (split_full - 1.0) * 0.7,
            "ablating the framework shrinks the split: {split_ablated} vs {split_full}"
        );
    }

    #[test]
    fn no_divergence_helps_divergent_kernels_most() {
        let divergent = [stats(); 3];
        let mut smooth_stats = stats();
        smooth_stats.divergent_branches = 0;
        let smooth = [smooth_stats; 3];
        let t = |s: &[KernelStats], v| {
            pipeline_time_ablated(
                &cfg(CompilerId::Nvcc),
                Direction::Encode,
                s,
                64,
                64 * 16384,
                64 * 9000,
                v,
            )
        };
        let gain_divergent = t(&divergent, Variant::Full) / t(&divergent, Variant::NoDivergence);
        let gain_smooth = t(&smooth, Variant::Full) / t(&smooth, Variant::NoDivergence);
        assert!(
            gain_divergent > gain_smooth,
            "{gain_divergent} vs {gain_smooth}"
        );
    }
}
