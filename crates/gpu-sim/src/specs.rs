//! GPU specifications: paper Tables 4 and 5, plus two documented
//! additions the cost model needs (memory bandwidth and ALU lanes per SM,
//! taken from the vendors' public spec sheets — the paper's tables omit
//! them because the paper measures real hardware).

/// GPU vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// NVIDIA: streaming multiprocessors, warp size 32, compute capability.
    Nvidia,
    /// AMD: compute units, warp size 32 or 64, gfx target processor.
    Amd,
}

/// One GPU model.
///
/// NVIDIA's SMs ≈ AMD's CUs and NVIDIA's compute capability ≈ AMD's target
/// processor (paper §5), so both vendors share this struct.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"RTX 4090"`.
    pub name: &'static str,
    /// Vendor.
    pub vendor: Vendor,
    /// Boost clock in MHz (paper Tables 4/5).
    pub clock_mhz: u32,
    /// SMs (NVIDIA) or CUs (AMD).
    pub sms: u32,
    /// Maximum resident threads per SM/CU.
    pub max_threads_per_sm: u32,
    /// Warp/wavefront size in threads.
    pub warp_size: u32,
    /// Device memory in GB.
    pub memory_gb: u32,
    /// Compute capability (NVIDIA) or target processor (AMD).
    pub arch: &'static str,
    /// Peak memory bandwidth in GB/s. Documented addition (public specs):
    /// needed for the roofline memory term.
    pub mem_bandwidth_gbs: f64,
    /// FP32/INT32 ALU lanes per SM/CU. Documented addition (public specs):
    /// converts instruction counts to cycles.
    pub alu_per_sm: u32,
}

impl GpuSpec {
    /// Threads per LC block (one 16 kB chunk per 512-thread block; §5).
    pub const THREADS_PER_BLOCK: u32 = 512;

    /// Blocks resident at once: `SMs × (max_threads_per_SM / 512)`
    /// (paper §5 occupancy discussion).
    pub fn blocks_in_flight(&self) -> u32 {
        self.sms * (self.max_threads_per_sm / Self::THREADS_PER_BLOCK)
    }

    /// Bytes of input needed to fully occupy the GPU (paper §5: 6 MB for
    /// the RTX 4090, 9.375 MB for the MI100).
    pub fn full_occupancy_bytes(&self) -> u64 {
        u64::from(self.blocks_in_flight()) * 16 * 1024
    }

    /// Warps per 512-thread block (16 at warp 32, 8 at warp 64).
    pub fn warps_per_block(&self) -> u32 {
        Self::THREADS_PER_BLOCK / self.warp_size
    }

    /// Clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz as f64 * 1e6
    }
}

/// Paper Table 4, column 1.
pub const TITAN_V: GpuSpec = GpuSpec {
    name: "TITAN V",
    vendor: Vendor::Nvidia,
    clock_mhz: 1075,
    sms: 24,
    max_threads_per_sm: 2048,
    warp_size: 32,
    memory_gb: 12,
    arch: "7.0",
    mem_bandwidth_gbs: 652.8,
    alu_per_sm: 64,
};

/// Paper Table 4, column 2.
pub const RTX_3080_TI: GpuSpec = GpuSpec {
    name: "RTX 3080 Ti",
    vendor: Vendor::Nvidia,
    clock_mhz: 1755,
    sms: 80,
    max_threads_per_sm: 1536,
    warp_size: 32,
    memory_gb: 12,
    arch: "8.6",
    mem_bandwidth_gbs: 912.1,
    alu_per_sm: 128,
};

/// Paper Table 4, column 3.
pub const RTX_4090: GpuSpec = GpuSpec {
    name: "RTX 4090",
    vendor: Vendor::Nvidia,
    clock_mhz: 2625,
    sms: 128,
    max_threads_per_sm: 1536,
    warp_size: 32,
    memory_gb: 24,
    arch: "8.9",
    mem_bandwidth_gbs: 1008.0,
    alu_per_sm: 128,
};

/// Paper Table 5, column 1 (warp size 64 — the 64-thread wavefront GPU).
pub const MI100: GpuSpec = GpuSpec {
    name: "MI100",
    vendor: Vendor::Amd,
    clock_mhz: 1502,
    sms: 120,
    max_threads_per_sm: 2560,
    warp_size: 64,
    memory_gb: 32,
    arch: "gfx908",
    mem_bandwidth_gbs: 1228.8,
    alu_per_sm: 64,
};

/// Paper Table 5, column 2 (RDNA3; warp size 32).
pub const RX_7900_XTX: GpuSpec = GpuSpec {
    name: "RX 7900 XTX",
    vendor: Vendor::Amd,
    clock_mhz: 2482,
    sms: 96,
    max_threads_per_sm: 1024,
    warp_size: 32,
    memory_gb: 24,
    arch: "gfx1100",
    mem_bandwidth_gbs: 960.0,
    alu_per_sm: 128,
};

/// All five GPUs, NVIDIA generations first (paper figure order).
pub const ALL_GPUS: [&GpuSpec; 5] = [&TITAN_V, &RTX_3080_TI, &RTX_4090, &MI100, &RX_7900_XTX];

/// The fastest tested GPU per vendor (used by Figs. 4–13).
pub fn fastest(vendor: Vendor) -> &'static GpuSpec {
    match vendor {
        Vendor::Nvidia => &RTX_4090,
        Vendor::Amd => &RX_7900_XTX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_and_table5_values() {
        assert_eq!(TITAN_V.clock_mhz, 1075);
        assert_eq!(TITAN_V.sms, 24);
        assert_eq!(TITAN_V.max_threads_per_sm, 2048);
        assert_eq!(RTX_3080_TI.sms, 80);
        assert_eq!(RTX_3080_TI.arch, "8.6");
        assert_eq!(RTX_4090.sms, 128);
        assert_eq!(RTX_4090.clock_mhz, 2625);
        assert_eq!(MI100.warp_size, 64);
        assert_eq!(MI100.sms, 120);
        assert_eq!(MI100.arch, "gfx908");
        assert_eq!(RX_7900_XTX.warp_size, 32);
        assert_eq!(RX_7900_XTX.max_threads_per_sm, 1024);
    }

    #[test]
    fn occupancy_matches_paper_section5() {
        // §5: "it takes 6 MB of input data to fully occupy [the RTX 4090]"
        assert_eq!(RTX_4090.blocks_in_flight(), 128 * 3);
        assert_eq!(RTX_4090.full_occupancy_bytes(), 6 * 1024 * 1024);
        // "it takes 9.375 MB to fully occupy the AMD MI100"
        assert_eq!(
            MI100.full_occupancy_bytes(),
            (9.375 * 1024.0 * 1024.0) as u64
        );
    }

    #[test]
    fn warps_per_block_differ_by_warp_size() {
        assert_eq!(RTX_4090.warps_per_block(), 16);
        assert_eq!(MI100.warps_per_block(), 8);
    }

    #[test]
    fn five_gpus_two_vendors() {
        assert_eq!(ALL_GPUS.len(), 5);
        assert_eq!(
            ALL_GPUS
                .iter()
                .filter(|g| g.vendor == Vendor::Nvidia)
                .count(),
            3
        );
        assert_eq!(
            ALL_GPUS.iter().filter(|g| g.vendor == Vendor::Amd).count(),
            2
        );
    }

    #[test]
    fn fastest_per_vendor() {
        assert_eq!(fastest(Vendor::Nvidia).name, "RTX 4090");
        assert_eq!(fastest(Vendor::Amd).name, "RX 7900 XTX");
    }
}
