//! Analytical GPU + compiler performance model.
//!
//! This crate is the substitution for the paper's measurement substrate:
//! five physical GPUs (paper Tables 4/5) running binaries from NVCC,
//! Clang, and HIPCC at `-O1`/`-O3`. Components in `lc-components` report
//! what their GPU kernels *would do* ([`lc_core::KernelStats`]); this
//! crate converts those counters into simulated kernel time for any
//! (GPU, compiler, optimization level) combination.
//!
//! See DESIGN.md §"GPU + compiler model" for the substitution argument and
//! `compiler.rs` for the provenance of every calibration constant.

#![forbid(unsafe_code)]

pub mod ablation;
pub mod compiler;
pub mod cost;
pub mod event_sim;
pub mod numa;
pub mod specs;

pub use compiler::{profile, CodegenProfile, CompilerId, OptLevel};
pub use cost::{
    framework_time, memory_time, pipeline_time, stage_time, throughput_gbs, total_time, Direction,
    SimConfig,
};
pub use specs::{
    fastest, GpuSpec, Vendor, ALL_GPUS, MI100, RTX_3080_TI, RTX_4090, RX_7900_XTX, TITAN_V,
};

/// Every (GPU, compiler) platform combination the paper evaluates:
/// 3 NVIDIA GPUs × {NVCC, Clang, HIPCC} + 2 AMD GPUs × {HIPCC} = 11.
pub fn all_platforms(opt: OptLevel) -> Vec<SimConfig> {
    let mut v = Vec::new();
    for gpu in ALL_GPUS {
        for compiler in CompilerId::for_vendor(gpu.vendor) {
            v.push(SimConfig::new(gpu, compiler, opt));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_platform_combinations() {
        assert_eq!(all_platforms(OptLevel::O3).len(), 11);
        let nvidia = all_platforms(OptLevel::O3)
            .iter()
            .filter(|c| c.gpu.vendor == Vendor::Nvidia)
            .count();
        assert_eq!(nvidia, 9);
    }

    #[test]
    fn labels_are_informative() {
        let c = SimConfig::new(&RTX_4090, CompilerId::Clang, OptLevel::O1);
        assert_eq!(c.label(), "RTX 4090/Clang/-O1");
    }
}
