//! NUMA / multi-chip GPU extension (paper §7's forward-looking claim).
//!
//! The paper's conclusion predicts: *"We expect the relative findings to
//! hold for emerging technologies like NUMA-aware multi-socket GPUs or
//! multi-chip GPUs … This is because LC loads entire chunks of data into
//! shared memory before performing any computation. Since this load is
//! performed only once, NUMA latencies would not incur a significant
//! penalty."*
//!
//! This module makes that prediction executable: [`numa_spec`] builds a
//! multi-socket variant of any base GPU (sockets × SMs, aggregated
//! bandwidth discounted by the inter-socket traffic fraction), and
//! [`numa_pipeline_time`] charges the one-time chunk load crossing the
//! interconnect with probability `(sockets-1)/sockets` — the paper's
//! "load is performed only once" mechanism. The tests then assert the
//! §7 claim inside the model: compiler orderings and component rankings
//! are preserved, and the NUMA penalty stays small.

use lc_core::KernelStats;

use crate::cost::{framework_time, memory_time, stage_time, Direction, SimConfig};
use crate::specs::GpuSpec;

/// Parameters of a multi-socket (or multi-chip-module) build of a GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumaConfig {
    /// Number of sockets/chips (≥ 1; 1 = the monolithic baseline).
    pub sockets: u32,
    /// Inter-socket link bandwidth as a fraction of one socket's local
    /// DRAM bandwidth (e.g. 0.4 for an NVLink-class interconnect).
    pub link_bandwidth_fraction: f64,
}

impl NumaConfig {
    /// Monolithic baseline (no NUMA effects).
    pub fn monolithic() -> Self {
        Self {
            sockets: 1,
            link_bandwidth_fraction: 1.0,
        }
    }

    /// Fraction of chunk loads that cross the interconnect under uniform
    /// chunk placement: `(sockets − 1) / sockets`.
    pub fn remote_fraction(&self) -> f64 {
        (self.sockets as f64 - 1.0) / self.sockets as f64
    }
}

/// Build the spec of a `numa.sockets`-socket version of `base`: SMs and
/// memory scale with the socket count; aggregate bandwidth too (each
/// socket keeps its local channels).
pub fn numa_spec(base: &GpuSpec, numa: NumaConfig) -> GpuSpec {
    GpuSpec {
        // Leaked name keeps the &'static contract for a handful of
        // configurations built once per process.
        name: Box::leak(format!("{}x{} {}", numa.sockets, base.sms, base.name).into_boxed_str()),
        sms: base.sms * numa.sockets,
        memory_gb: base.memory_gb * numa.sockets,
        mem_bandwidth_gbs: base.mem_bandwidth_gbs * f64::from(numa.sockets),
        ..base.clone()
    }
}

/// Pipeline time on a NUMA build: the per-stage in-SM work is unchanged
/// (chunks live in shared memory, §7), while the one-time chunk load and
/// the final store pay the interconnect for the remote fraction of
/// traffic.
pub fn numa_pipeline_time(
    cfg: &SimConfig,
    numa: NumaConfig,
    direction: Direction,
    stage_kernels: &[KernelStats],
    chunks: u64,
    uncompressed: u64,
    compressed: u64,
) -> f64 {
    let stages: f64 = stage_kernels
        .iter()
        .map(|s| stage_time(cfg, s, chunks))
        .sum();
    let bytes = uncompressed + compressed;
    let local = memory_time(cfg, bytes);
    // Remote traffic is limited by the link: effective time for the remote
    // share scales by 1/link_fraction relative to local channels of one
    // socket — but only the one-time load/store crosses, never the
    // intra-chunk traffic (that is the §7 argument).
    let remote_share = numa.remote_fraction();
    let mem = if numa.sockets <= 1 {
        local
    } else {
        let remote_penalty = 1.0 / numa.link_bandwidth_fraction.max(1e-6);
        local * ((1.0 - remote_share) + remote_share * remote_penalty)
    };
    stages.max(mem) + framework_time(cfg, direction, chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompilerId, OptLevel};
    use crate::cost::throughput_gbs;
    use crate::specs::RTX_4090;

    fn stats(chunks: u64, heavy: bool) -> KernelStats {
        let words = chunks * 4096;
        KernelStats {
            words,
            thread_ops: words * if heavy { 10 } else { 3 },
            global_reads: chunks * 16384,
            global_writes: chunks * 16384,
            shared_traffic: chunks * 32768,
            scan_steps: if heavy { chunks * 26 } else { 0 },
            block_syncs: if heavy { chunks * 26 } else { 0 },
            divergent_branches: if heavy { chunks * 200 } else { 0 },
            ..Default::default()
        }
    }

    fn base_cfg(compiler: CompilerId) -> SimConfig {
        SimConfig::new(&RTX_4090, compiler, OptLevel::O3)
    }

    fn two_socket() -> NumaConfig {
        NumaConfig {
            sockets: 2,
            link_bandwidth_fraction: 0.4,
        }
    }

    #[test]
    fn monolithic_matches_plain_model() {
        let s = [stats(6400, true); 3];
        let cfg = base_cfg(CompilerId::Nvcc);
        let a = numa_pipeline_time(
            &cfg,
            NumaConfig::monolithic(),
            Direction::Encode,
            &s,
            6400,
            6400 * 16384,
            6400 * 9000,
        );
        let b = crate::pipeline_time(&cfg, Direction::Encode, &s, 6400, 6400 * 16384, 6400 * 9000);
        assert!((a - b).abs() / b < 1e-12);
    }

    #[test]
    fn remote_fraction_formula() {
        assert_eq!(NumaConfig::monolithic().remote_fraction(), 0.0);
        assert_eq!(two_socket().remote_fraction(), 0.5);
        let four = NumaConfig {
            sockets: 4,
            link_bandwidth_fraction: 0.4,
        };
        assert_eq!(four.remote_fraction(), 0.75);
    }

    #[test]
    fn numa_spec_scales_resources() {
        let spec = numa_spec(&RTX_4090, two_socket());
        assert_eq!(spec.sms, 256);
        assert_eq!(spec.memory_gb, 48);
        assert!(spec.name.contains("RTX 4090"));
        assert_eq!(spec.warp_size, RTX_4090.warp_size);
    }

    #[test]
    fn section7_claim_compiler_ordering_survives_numa() {
        // The paper's §7 prediction: the relative compiler findings hold
        // on NUMA GPUs because only the one-time load crosses sockets.
        let s = [stats(6400, true); 3];
        let numa = two_socket();
        let t = |c: CompilerId, d| {
            numa_pipeline_time(&base_cfg(c), numa, d, &s, 6400, 6400 * 16384, 6400 * 9000)
        };
        assert!(
            t(CompilerId::Clang, Direction::Encode) > t(CompilerId::Nvcc, Direction::Encode),
            "Clang still encodes slower under NUMA"
        );
        assert!(
            t(CompilerId::Clang, Direction::Decode) < t(CompilerId::Nvcc, Direction::Decode),
            "Clang still decodes faster under NUMA"
        );
    }

    #[test]
    fn section7_claim_component_ranking_survives_numa() {
        let cfg = base_cfg(CompilerId::Nvcc);
        let numa = two_socket();
        let light = [stats(6400, false); 3];
        let heavy = [stats(6400, true); 3];
        let t = |s: &[KernelStats]| {
            numa_pipeline_time(
                &cfg,
                numa,
                Direction::Encode,
                s,
                6400,
                6400 * 16384,
                6400 * 9000,
            )
        };
        assert!(
            t(&heavy) > t(&light),
            "heavy components stay slower under NUMA"
        );
    }

    #[test]
    fn numa_penalty_is_bounded_for_compute_bound_pipelines() {
        // §7: "NUMA latencies would not incur a significant penalty" —
        // true exactly when the pipeline is not memory-ceiling-bound,
        // because the in-SM work is socket-local.
        let cfg = base_cfg(CompilerId::Nvcc);
        let heavy = [stats(6400, true); 3];
        let mono = numa_pipeline_time(
            &cfg,
            NumaConfig::monolithic(),
            Direction::Encode,
            &heavy,
            6400,
            6400 * 16384,
            6400 * 9000,
        );
        let numa = numa_pipeline_time(
            &cfg,
            two_socket(),
            Direction::Encode,
            &heavy,
            6400,
            6400 * 16384,
            6400 * 9000,
        );
        let penalty = numa / mono;
        assert!(penalty < 1.10, "compute-bound NUMA penalty {penalty}");
    }

    #[test]
    fn memory_bound_pipelines_do_pay_the_link() {
        // The flip side: a pipeline pinned to the bandwidth ceiling sees
        // the interconnect, bounding the §7 claim's domain of validity.
        let cfg = base_cfg(CompilerId::Nvcc);
        let light = [stats(6400, false); 3];
        let mono = numa_pipeline_time(
            &cfg,
            NumaConfig::monolithic(),
            Direction::Decode,
            &light,
            6400,
            6400 * 16384,
            6400 * 16000,
        );
        let numa = numa_pipeline_time(
            &cfg,
            two_socket(),
            Direction::Decode,
            &light,
            6400,
            6400 * 16384,
            6400 * 16000,
        );
        let penalty = numa / mono;
        assert!(penalty > 1.2, "memory-bound NUMA penalty {penalty}");
    }

    #[test]
    fn throughput_helper_sanity() {
        let cfg = base_cfg(CompilerId::Nvcc);
        let s = [stats(6400, false); 3];
        let t = numa_pipeline_time(
            &cfg,
            two_socket(),
            Direction::Encode,
            &s,
            6400,
            6400 * 16384,
            6400 * 9000,
        );
        let tp = throughput_gbs(6400 * 16384, t);
        assert!(tp > 1.0 && tp < 5000.0, "{tp}");
    }
}
