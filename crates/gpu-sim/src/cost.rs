//! Analytical kernel cost model.
//!
//! One 16 kB chunk maps to one 512-thread block; the GPU schedules
//! `blocks_in_flight()` blocks at a time and drains the grid in waves
//! (paper §5). LC loads each chunk into shared memory once and runs all
//! pipeline stages there (paper §7), so the model charges:
//!
//! * **global memory** once per direction — the uncompressed side plus the
//!   compressed side of the archive;
//! * **per stage**: ALU time (with a divergence penalty), shared-memory
//!   traffic, warp shuffles, and serialized latency for `__syncthreads`
//!   and intra-chunk scan steps (multiplied by the number of waves);
//! * **framework**: kernel launch plus the inter-block synchronization
//!   that the paper identifies as the locus of the compiler differences —
//!   the encoder's decoupled look-back chain and the decoder's block
//!   prefix sum, both with a per-chunk serial term and a per-wave term.
//!
//! All constants live in [`tuning`] and are calibrated to reproduce the
//! *shape* of the paper's figures, not absolute numbers (the substitution
//! contract in DESIGN.md).

use lc_core::KernelStats;

use crate::compiler::{profile, CodegenProfile, CompilerId, OptLevel};
use crate::specs::GpuSpec;

/// Model constants. Units are cycles unless noted.
pub mod tuning {
    /// Effective cycles per recorded ALU op (dependency stalls, address
    /// arithmetic, imperfect ILP fold into this).
    pub const CYCLES_PER_OP: f64 = 40.0;
    /// Extra ops charged per divergent branch (a warp's masked lanes
    /// re-execute).
    pub const DIVERGENCE_OPS: f64 = 24.0;
    /// Cycles per warp-shuffle per lane.
    pub const SHUFFLE_CYCLES: f64 = 4.0;
    /// Achieved shared-memory bytes per SM per cycle (bank conflicts and
    /// ld/st issue limits fold into this; peak is 128).
    pub const SHARED_BYTES_PER_SM_CYCLE: f64 = 32.0;
    /// Serialized latency of one `__syncthreads`.
    pub const BLOCK_SYNC_CYCLES: f64 = 40.0;
    /// Serialized latency of one `__syncwarp`.
    pub const WARP_SYNC_CYCLES: f64 = 8.0;
    /// Serialized latency of one intra-chunk scan/reduction step
    /// (shared-memory round trip + sync for a 512-thread block).
    pub const SCAN_STEP_CYCLES: f64 = 600.0;
    /// Cycles per global atomic, serialized per SM.
    pub const ATOMIC_CYCLES: f64 = 20.0;
    /// Encoder: serial decoupled look-back chain cycles per chunk.
    pub const ENC_LOOKBACK_CHAIN_CYCLES: f64 = 60.0;
    /// Encoder: per-wave look-back polling/publication overhead.
    pub const ENC_LOOKBACK_WAVE_CYCLES: f64 = 400.0;
    /// Decoder: serial block-prefix-sum chain cycles per chunk.
    pub const DEC_SCAN_CHAIN_CYCLES: f64 = 45.0;
    /// Decoder: per-wave prefix-sum overhead.
    pub const DEC_SCAN_WAVE_CYCLES: f64 = 300.0;
}

/// Direction of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Compression.
    Encode,
    /// Decompression.
    Decode,
}

/// A (GPU, compiler, optimization level) execution context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Target GPU.
    pub gpu: &'static GpuSpec,
    /// Compiler that produced the executable.
    pub compiler: CompilerId,
    /// Optimization flag of the build.
    pub opt: OptLevel,
}

impl SimConfig {
    /// Create a config, validating that the compiler targets the GPU.
    ///
    /// ```
    /// use gpu_sim::{SimConfig, CompilerId, OptLevel, RTX_4090};
    /// let cfg = SimConfig::new(&RTX_4090, CompilerId::Clang, OptLevel::O3);
    /// assert_eq!(cfg.label(), "RTX 4090/Clang/-O3");
    /// ```
    ///
    /// ```should_panic
    /// use gpu_sim::{SimConfig, CompilerId, OptLevel, MI100};
    /// SimConfig::new(&MI100, CompilerId::Nvcc, OptLevel::O3); // NVCC is NVIDIA-only
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the compiler cannot target the GPU's vendor.
    pub fn new(gpu: &'static GpuSpec, compiler: CompilerId, opt: OptLevel) -> Self {
        assert!(
            compiler.supports(gpu.vendor),
            "{} cannot target {}",
            compiler.label(),
            gpu.name
        );
        Self { gpu, compiler, opt }
    }

    /// The calibrated codegen profile for this config.
    pub fn profile(&self) -> CodegenProfile {
        profile(self.compiler, self.opt, self.gpu.vendor)
    }

    /// Short label like `"RTX 4090/Clang/-O3"`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.gpu.name,
            self.compiler.label(),
            match self.opt {
                OptLevel::O1 => "-O1",
                OptLevel::O3 => "-O3",
            }
        )
    }
}

/// Fractional wave count: the per-wave latency terms scale with how many
/// times the grid refills the GPU. A partial wave costs proportionally
/// (its blocks' latencies overlap with nothing extra), so this is not
/// rounded up — which also makes per-chunk costs scale-invariant, a
/// property the reduced-scale campaign relies on.
fn waves(gpu: &GpuSpec, chunks: u64) -> f64 {
    if chunks == 0 {
        0.0
    } else {
        (chunks as f64 / f64::from(gpu.blocks_in_flight())).max(1.0)
    }
}

/// Fraction of the GPU's throughput resources a grid of `chunks` blocks
/// can use (1.0 when the GPU is fully occupied; paper §5 notes all tested
/// inputs fully occupy all tested GPUs, so this matters only for tiny
/// inputs and partial final waves).
fn occupancy(gpu: &GpuSpec, chunks: u64) -> f64 {
    if chunks == 0 {
        return 1.0;
    }
    let bif = f64::from(gpu.blocks_in_flight());
    let w = waves(gpu, chunks);
    (chunks as f64 / (w * bif)).min(1.0)
}

/// Time for one pipeline-stage kernel phase, excluding global memory
/// (charged once per direction by [`pipeline_time`]).
pub fn stage_time(cfg: &SimConfig, stats: &KernelStats, chunks: u64) -> f64 {
    if chunks == 0 {
        return 0.0;
    }
    let gpu = cfg.gpu;
    let p = cfg.profile();
    let clock = gpu.clock_hz();
    let lanes = f64::from(gpu.alu_per_sm) * f64::from(gpu.sms) * occupancy(gpu, chunks);
    let w = waves(gpu, chunks);

    // ALU with divergence penalty; warp-64 GPUs pay double per divergent
    // branch (twice as many masked lanes).
    let div_ops = stats.divergent_branches as f64
        * tuning::DIVERGENCE_OPS
        * (f64::from(gpu.warp_size) / 32.0);
    let t_compute =
        (stats.thread_ops as f64 + div_ops) * tuning::CYCLES_PER_OP * p.compute / lanes / clock;

    // Warp shuffles: log2(warp) steps were recorded per scan; a warp-64
    // machine runs one extra shuffle level but over half as many warps.
    let shuffle_scale = (f64::from(gpu.warp_size).log2() / 5.0).max(1.0);
    let t_shuffle = stats.warp_shuffles as f64 * tuning::SHUFFLE_CYCLES * shuffle_scale * p.shuffle
        / lanes
        / clock;

    // Shared-memory traffic (inter-stage data stays in shared memory).
    let shared_bw =
        tuning::SHARED_BYTES_PER_SM_CYCLE * f64::from(gpu.sms) * occupancy(gpu, chunks) * clock;
    let t_shared = stats.shared_traffic as f64 / shared_bw;

    // Serialized per-block latency, overlapped across a wave.
    let per_block = (stats.block_syncs as f64 * tuning::BLOCK_SYNC_CYCLES
        + stats.warp_syncs as f64 * tuning::WARP_SYNC_CYCLES
        + stats.scan_steps as f64 * tuning::SCAN_STEP_CYCLES)
        / chunks as f64;
    let t_latency = w * per_block / clock;

    let t_atomic = stats.atomic_ops as f64 * tuning::ATOMIC_CYCLES / f64::from(gpu.sms) / clock;

    t_compute + t_shuffle + t_shared + t_latency + t_atomic
}

/// Global-memory time for moving `bytes` through DRAM.
pub fn memory_time(cfg: &SimConfig, bytes: u64) -> f64 {
    let p = cfg.profile();
    bytes as f64 / (cfg.gpu.mem_bandwidth_gbs * 1e9 * p.memory_efficiency)
}

/// Framework overhead for one direction: kernel launch plus the
/// inter-block synchronization (encoder look-back / decoder block scan).
pub fn framework_time(cfg: &SimConfig, direction: Direction, chunks: u64) -> f64 {
    let p = cfg.profile();
    let clock = cfg.gpu.clock_hz();
    let w = waves(cfg.gpu, chunks);
    let launch = p.launch_us * 1e-6;
    match direction {
        Direction::Encode => {
            launch
                + (chunks as f64 * tuning::ENC_LOOKBACK_CHAIN_CYCLES
                    + w * tuning::ENC_LOOKBACK_WAVE_CYCLES)
                    * p.lookback
                    / clock
        }
        Direction::Decode => {
            launch
                + (chunks as f64 * tuning::DEC_SCAN_CHAIN_CYCLES + w * tuning::DEC_SCAN_WAVE_CYCLES)
                    * p.block_scan
                    / clock
        }
    }
}

/// Combine precomputed pieces into a total pipeline time: a roofline
/// `max` of in-SM work against DRAM traffic, plus the framework overhead.
///
/// The roofline matters for the figures' *shape*: cheap kernels (mutator
/// decoders, skipped reducers) pile up against the bandwidth ceiling,
/// which produces the dense top edge — the "skews towards higher
/// throughputs" — of the paper's decoding distributions (§6.1), while
/// work-heavy encoders spread out below it.
pub fn total_time(
    cfg: &SimConfig,
    direction: Direction,
    stage_seconds: f64,
    dram_bytes: u64,
    chunks: u64,
) -> f64 {
    stage_seconds.max(memory_time(cfg, dram_bytes)) + framework_time(cfg, direction, chunks)
}

/// Total simulated time for one pipeline run.
///
/// * `stage_kernels` — per-stage aggregated [`KernelStats`] for this
///   direction (encode stats when encoding, decode stats when decoding).
/// * `chunks` — number of 16 kB chunks.
/// * `uncompressed`/`compressed` — bytes on the two sides of the archive;
///   both cross DRAM exactly once per direction.
pub fn pipeline_time(
    cfg: &SimConfig,
    direction: Direction,
    stage_kernels: &[KernelStats],
    chunks: u64,
    uncompressed: u64,
    compressed: u64,
) -> f64 {
    let stages: f64 = stage_kernels
        .iter()
        .map(|s| stage_time(cfg, s, chunks))
        .sum();
    total_time(cfg, direction, stages, uncompressed + compressed, chunks)
}

/// Throughput in uncompressed GB/s for a run of `uncompressed` bytes
/// taking `seconds` (the paper's metric: uncompressed bytes processed per
/// second).
pub fn throughput_gbs(uncompressed: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        uncompressed as f64 / 1e9 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{MI100, RTX_3080_TI, RTX_4090, TITAN_V};

    fn cfg(compiler: CompilerId, opt: OptLevel) -> SimConfig {
        SimConfig::new(&RTX_4090, compiler, opt)
    }

    /// Typical per-chunk stats for a mid-weight component over `chunks`
    /// 16 kB chunks at word size 4.
    fn typical_stats(chunks: u64) -> KernelStats {
        let words = chunks * 4096;
        KernelStats {
            words,
            thread_ops: words * 3,
            global_reads: chunks * 16384,
            global_writes: chunks * 16384,
            shared_traffic: chunks * 32768,
            warp_shuffles: words / 8,
            warp_syncs: chunks * 16,
            block_syncs: chunks * 4,
            atomic_ops: chunks,
            scan_steps: chunks * 13,
            divergent_branches: chunks * 10,
        }
    }

    #[test]
    #[should_panic(expected = "cannot target")]
    fn clang_on_amd_rejected() {
        SimConfig::new(&MI100, CompilerId::Clang, OptLevel::O3);
    }

    #[test]
    fn zero_chunks_zero_stage_time() {
        let c = cfg(CompilerId::Nvcc, OptLevel::O3);
        assert_eq!(stage_time(&c, &KernelStats::new(), 0), 0.0);
    }

    #[test]
    fn more_work_takes_longer() {
        let c = cfg(CompilerId::Nvcc, OptLevel::O3);
        let t1 = stage_time(&c, &typical_stats(64), 64);
        let mut heavy = typical_stats(64);
        heavy.thread_ops *= 10;
        let t2 = stage_time(&c, &heavy, 64);
        assert!(t2 > t1);
    }

    #[test]
    fn throughput_scales_with_gpu_generation() {
        // The paper's Fig. 2 staircase: TITAN V < 3080 Ti < 4090 for the
        // same work.
        let chunks = 6400u64; // ~100 MB
        let bytes = chunks * 16384;
        let stats = [typical_stats(chunks); 3];
        let mut previous = 0.0;
        for gpu in [&TITAN_V, &RTX_3080_TI, &RTX_4090] {
            let c = SimConfig::new(gpu, CompilerId::Nvcc, OptLevel::O3);
            let t = pipeline_time(&c, Direction::Encode, &stats, chunks, bytes, bytes / 2);
            let tp = throughput_gbs(bytes, t);
            assert!(tp > previous, "{}: {tp} vs {previous}", gpu.name);
            previous = tp;
        }
    }

    #[test]
    fn simulated_throughputs_are_plausible() {
        // Sanity: a mid-weight 3-stage pipeline on the 4090 should land in
        // the tens-to-hundreds of GB/s, as in the paper's figures.
        let chunks = 6400u64;
        let bytes = chunks * 16384;
        let stats = [typical_stats(chunks); 3];
        let c = cfg(CompilerId::Nvcc, OptLevel::O3);
        let t = pipeline_time(&c, Direction::Encode, &stats, chunks, bytes, bytes / 2);
        let tp = throughput_gbs(bytes, t);
        assert!(tp > 20.0 && tp < 2000.0, "throughput {tp} GB/s");
    }

    #[test]
    fn clang_encodes_slower_decodes_faster_than_nvcc() {
        let chunks = 6400u64;
        let bytes = chunks * 16384;
        let stats = [typical_stats(chunks); 3];
        let enc = |comp| {
            pipeline_time(
                &cfg(comp, OptLevel::O3),
                Direction::Encode,
                &stats,
                chunks,
                bytes,
                bytes / 2,
            )
        };
        let dec = |comp| {
            pipeline_time(
                &cfg(comp, OptLevel::O3),
                Direction::Decode,
                &stats,
                chunks,
                bytes,
                bytes / 2,
            )
        };
        assert!(
            enc(CompilerId::Clang) > enc(CompilerId::Nvcc),
            "Clang encode slower"
        );
        assert!(
            dec(CompilerId::Clang) < dec(CompilerId::Nvcc),
            "Clang decode faster"
        );
        // NVCC ≈ HIPCC on NVIDIA (within 2%).
        let ratio = enc(CompilerId::Hipcc) / enc(CompilerId::Nvcc);
        assert!((ratio - 1.0).abs() < 0.02, "NVCC vs HIPCC ratio {ratio}");
    }

    #[test]
    fn clang_o3_encode_regression_o1_baseline() {
        // Fig. 14: Clang -O1 → -O3 encode speedup < 1 on NVIDIA.
        let chunks = 6400u64;
        let bytes = chunks * 16384;
        let stats = [typical_stats(chunks); 3];
        let t_o1 = pipeline_time(
            &cfg(CompilerId::Clang, OptLevel::O1),
            Direction::Encode,
            &stats,
            chunks,
            bytes,
            bytes / 2,
        );
        let t_o3 = pipeline_time(
            &cfg(CompilerId::Clang, OptLevel::O3),
            Direction::Encode,
            &stats,
            chunks,
            bytes,
            bytes / 2,
        );
        // Mixed effect: framework regresses, compute improves. Net must
        // not be a clear speedup.
        let speedup = t_o1 / t_o3;
        assert!(speedup < 1.05, "Clang O3 encode speedup {speedup}");
    }

    #[test]
    fn framework_time_scales_with_chunks() {
        let c = cfg(CompilerId::Nvcc, OptLevel::O3);
        let t1 = framework_time(&c, Direction::Encode, 100);
        let t2 = framework_time(&c, Direction::Encode, 10_000);
        assert!(t2 > t1 * 10.0, "chain term dominates for large grids");
    }

    #[test]
    fn warp64_changes_latency_profile() {
        // The MI100 (warp 64) pays more for divergence than a warp-32 GPU
        // of equal spec would; assert the divergence multiplier engages.
        let c64 = SimConfig::new(&MI100, CompilerId::Hipcc, OptLevel::O3);
        let mut divergent = typical_stats(64);
        divergent.divergent_branches *= 100;
        let smooth = {
            let mut s = typical_stats(64);
            s.divergent_branches = 0;
            s
        };
        let penalty64 = stage_time(&c64, &divergent, 64) / stage_time(&c64, &smooth, 64);
        assert!(penalty64 > 1.0);
    }

    #[test]
    fn throughput_zero_for_zero_time() {
        assert_eq!(throughput_gbs(100, 0.0), 0.0);
    }

    #[test]
    fn occupancy_partial_grid() {
        // 1 chunk on a 4090 (384 blocks in flight) → heavy underutilization.
        let c = cfg(CompilerId::Nvcc, OptLevel::O3);
        let t_small = stage_time(&c, &typical_stats(1), 1);
        let t_full = stage_time(&c, &typical_stats(384), 384);
        // Full grid processes 384× the work in far less than 384× the time.
        assert!(t_full < t_small * 96.0);
    }
}
