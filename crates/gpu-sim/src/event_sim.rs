//! Discrete-event GPU kernel simulator (validation backend).
//!
//! The analytical model in [`crate::cost`] collapses block scheduling into
//! a fractional wave count. This module simulates it instead: every chunk
//! is a block with its own cost, blocks occupy scheduling slots
//! (`blocks_in_flight()` of them, `max_threads_per_SM / 512` per SM), and
//! a block's finish time depends on its ALU work (sharing its SM's lanes
//! with co-resident blocks), its DRAM traffic (sharing the device
//! bandwidth with all active blocks), and its serialized latency.
//!
//! The event simulator exists to *validate* the analytical shortcut — the
//! `analytical_agreement` tests assert the two agree within tolerance on
//! homogeneous grids and that the event simulator correctly reproduces
//! effects the shortcut only approximates (partial waves, stragglers).
//! The campaign uses the analytical model (it is evaluated ~60 M times);
//! `simulate_kernel` is for spot checks and the `ablation` bench.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lc_core::KernelStats;

use crate::cost::{tuning, SimConfig};

/// Cost of one block (one 16 kB chunk), in device-independent units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    /// ALU cycles the block needs from its SM (already includes the
    /// cycles-per-op expansion and divergence penalty).
    pub alu_cycles: f64,
    /// Bytes the block moves through DRAM.
    pub mem_bytes: f64,
    /// Serialized latency cycles (syncs, scan steps) not overlappable
    /// within the block.
    pub latency_cycles: f64,
}

/// Split an aggregate [`KernelStats`] into `chunks` equal per-block costs
/// (the campaign's stats are aggregates; per-chunk heterogeneity can be
/// fed in directly by building the `Vec<BlockCost>` by hand).
pub fn per_block_costs(cfg: &SimConfig, stats: &KernelStats, chunks: u64) -> Vec<BlockCost> {
    assert!(chunks > 0, "need at least one block");
    let p = cfg.profile();
    let n = chunks as f64;
    let div_ops = stats.divergent_branches as f64
        * tuning::DIVERGENCE_OPS
        * (f64::from(cfg.gpu.warp_size) / 32.0);
    let shuffle_scale = (f64::from(cfg.gpu.warp_size).log2() / 5.0).max(1.0);
    // Shared-memory traffic runs at SHARED_BYTES_PER_SM_CYCLE per SM; fold
    // it into lane-cycles (the unit `simulate_kernel` divides by lanes) by
    // scaling with the SM's lane count.
    let shared_lane_cycles = stats.shared_traffic as f64 * f64::from(cfg.gpu.alu_per_sm)
        / tuning::SHARED_BYTES_PER_SM_CYCLE;
    let alu = (stats.thread_ops as f64 + div_ops) * tuning::CYCLES_PER_OP * p.compute
        + stats.warp_shuffles as f64 * tuning::SHUFFLE_CYCLES * shuffle_scale * p.shuffle
        + shared_lane_cycles;
    let latency = stats.block_syncs as f64 * tuning::BLOCK_SYNC_CYCLES
        + stats.warp_syncs as f64 * tuning::WARP_SYNC_CYCLES
        + stats.scan_steps as f64 * tuning::SCAN_STEP_CYCLES;
    let mem = (stats.global_reads + stats.global_writes) as f64;
    vec![
        BlockCost {
            alu_cycles: alu / n,
            mem_bytes: mem / n,
            latency_cycles: latency / n,
        };
        chunks as usize
    ]
}

/// Simulate one kernel: schedule `blocks` onto the GPU and return the
/// wall-clock seconds until the last block finishes.
///
/// Blocks are dispatched in order (as the hardware work distributor does)
/// into the first slot that frees up. Each block's duration is
/// `max(ALU share time, DRAM share time) + latency`, with the shares
/// computed from steady-state residency (blocks per SM and blocks in
/// flight), which matches the analytical model's assumptions while still
/// capturing wave boundaries and stragglers exactly.
pub fn simulate_kernel(cfg: &SimConfig, blocks: &[BlockCost]) -> f64 {
    if blocks.is_empty() {
        return 0.0;
    }
    let gpu = cfg.gpu;
    let p = cfg.profile();
    let clock = gpu.clock_hz();
    let blocks_per_sm =
        f64::from(gpu.max_threads_per_sm / crate::specs::GpuSpec::THREADS_PER_BLOCK);
    let slots = gpu.blocks_in_flight() as usize;
    let alu_per_block = f64::from(gpu.alu_per_sm) / blocks_per_sm; // lanes per resident block
    let bw = gpu.mem_bandwidth_gbs * 1e9 * p.memory_efficiency;
    let bw_per_block = bw / f64::from(gpu.blocks_in_flight());

    let duration = |b: &BlockCost| -> f64 {
        let t_alu = b.alu_cycles / alu_per_block / clock;
        let t_mem = b.mem_bytes / bw_per_block;
        t_alu.max(t_mem) + b.latency_cycles / clock
    };

    // Min-heap of slot-free times. f64 isn't Ord; times are finite and
    // non-NaN by construction, so order by bit pattern of the positive
    // float (monotone for non-negative finite values).
    let key = |t: f64| Reverse(t.max(0.0).to_bits());
    let mut heap: BinaryHeap<Reverse<u64>> =
        (0..slots.min(blocks.len())).map(|_| key(0.0)).collect();
    let mut makespan = 0.0f64;
    for b in blocks {
        let Reverse(bits) = heap.pop().expect("slots"); // invariant: heap holds one entry per slot
        let free_at = f64::from_bits(bits);
        let finish = free_at + duration(b);
        makespan = makespan.max(finish);
        heap.push(key(finish));
    }
    makespan
}

/// Convenience: simulate a kernel from aggregate stats (homogeneous
/// blocks) and return seconds.
pub fn simulate_from_stats(cfg: &SimConfig, stats: &KernelStats, chunks: u64) -> f64 {
    if chunks == 0 {
        return 0.0;
    }
    simulate_kernel(cfg, &per_block_costs(cfg, stats, chunks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompilerId, OptLevel};
    use crate::cost::stage_time;
    use crate::specs::RTX_4090;

    fn cfg() -> SimConfig {
        SimConfig::new(&RTX_4090, CompilerId::Nvcc, OptLevel::O3)
    }

    fn stats(chunks: u64) -> KernelStats {
        let words = chunks * 4096;
        KernelStats {
            words,
            thread_ops: words * 4,
            global_reads: chunks * 16384,
            global_writes: chunks * 16384,
            shared_traffic: chunks * 32768,
            warp_shuffles: words / 8,
            warp_syncs: chunks * 16,
            block_syncs: chunks * 4,
            atomic_ops: chunks,
            scan_steps: chunks * 13,
            divergent_branches: chunks * 10,
        }
    }

    #[test]
    fn empty_grid_is_free() {
        assert_eq!(simulate_from_stats(&cfg(), &KernelStats::new(), 0), 0.0);
        assert_eq!(simulate_kernel(&cfg(), &[]), 0.0);
    }

    #[test]
    fn one_extra_block_starts_a_second_wave() {
        // A homogeneous grid of exactly blocks_in_flight finishes in one
        // block duration; one more block doubles the makespan.
        let c = cfg();
        let bif = c.gpu.blocks_in_flight() as u64;
        let t_full = simulate_from_stats(&c, &stats(bif), bif);
        let t_plus1 = simulate_from_stats(&c, &stats(bif + 1), bif + 1);
        let ratio = t_plus1 / t_full;
        assert!((ratio - 2.0).abs() < 0.05, "wave boundary: ratio {ratio}");
    }

    #[test]
    fn makespan_scales_linearly_with_full_waves() {
        let c = cfg();
        let bif = c.gpu.blocks_in_flight() as u64;
        let t1 = simulate_from_stats(&c, &stats(bif), bif);
        let t4 = simulate_from_stats(&c, &stats(4 * bif), 4 * bif);
        let ratio = t4 / t1;
        assert!((ratio - 4.0).abs() < 0.05, "4 waves: ratio {ratio}");
    }

    #[test]
    fn analytical_agreement_on_large_homogeneous_grids() {
        // The analytical stage_time should agree with the event simulator
        // within modelling tolerance for fully-occupied grids. (They treat
        // the per-block latency term differently at wave granularity, so
        // agreement is approximate by design.)
        let c = cfg();
        for chunks in [2000u64, 6400, 20_000] {
            let s = stats(chunks);
            let analytical = stage_time(&c, &s, chunks)
                + crate::cost::memory_time(&c, s.global_reads + s.global_writes);
            let event = simulate_from_stats(&c, &s, chunks);
            let ratio = event / analytical;
            assert!(
                (0.5..2.0).contains(&ratio),
                "chunks {chunks}: event {event:.3e} vs analytical {analytical:.3e} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn stragglers_extend_the_makespan() {
        let c = cfg();
        let bif = c.gpu.blocks_in_flight() as usize;
        let uniform = per_block_costs(&c, &stats(bif as u64), bif as u64);
        let t_uniform = simulate_kernel(&c, &uniform);
        // Same total work, but one block carries 32x the ALU cycles.
        let mut skewed = uniform.clone();
        let extra = skewed[0].alu_cycles * 31.0;
        skewed[0].alu_cycles *= 32.0;
        for b in skewed.iter_mut().skip(1) {
            b.alu_cycles -= extra / (bif as f64 - 1.0);
        }
        let t_skewed = simulate_kernel(&c, &skewed);
        assert!(t_skewed > t_uniform * 1.5, "{t_skewed} vs {t_uniform}");
    }

    #[test]
    fn memory_bound_blocks_hit_the_bandwidth_ceiling() {
        let c = cfg();
        let mut s = stats(6400);
        s.thread_ops = 0;
        s.divergent_branches = 0;
        s.scan_steps = 0;
        s.block_syncs = 0;
        s.warp_syncs = 0;
        s.warp_shuffles = 0;
        s.shared_traffic = 0;
        let t = simulate_from_stats(&c, &s, 6400);
        let bytes = (s.global_reads + s.global_writes) as f64;
        let achieved = bytes / t / 1e9;
        let peak_eff = c.gpu.mem_bandwidth_gbs * c.profile().memory_efficiency;
        assert!(
            (achieved / peak_eff - 1.0).abs() < 0.05,
            "achieved {achieved} GB/s vs effective peak {peak_eff}"
        );
    }

    #[test]
    fn per_block_costs_divide_the_aggregate() {
        let c = cfg();
        let s = stats(100);
        let blocks = per_block_costs(&c, &s, 100);
        assert_eq!(blocks.len(), 100);
        let total_mem: f64 = blocks.iter().map(|b| b.mem_bytes).sum();
        assert!((total_mem - (s.global_reads + s.global_writes) as f64).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_chunk_costs_panic() {
        per_block_costs(&cfg(), &KernelStats::new(), 0);
    }
}
