//! Ablation benches for the cost-model design choices DESIGN.md calls
//! out: measure a fixed real pipeline under each model variant and report
//! the simulated time each mechanism contributes. (Criterion measures the
//! *evaluation* cost; the interesting output is the per-variant simulated
//! seconds printed once at startup.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gpu_sim::ablation::{pipeline_time_ablated, Variant};
use gpu_sim::{CompilerId, Direction, OptLevel, SimConfig, RTX_4090};
use lc_core::KernelStats;
use lc_data::{file_by_name, generate, Scale};
use lc_study::runner::{run_stage, ChunkedData};

fn real_pipeline_stats() -> (Vec<KernelStats>, Vec<KernelStats>, u64, u64, u64) {
    let sp = file_by_name("obs_temp").unwrap();
    let data = generate(sp, Scale::tiny());
    let paper_bytes = sp.paper_size_tenth_mb as u64 * 100_000;
    let factor = paper_bytes as f64 / data.len() as f64;
    let chunks = paper_bytes.div_ceil(16384);
    let mut chunked = ChunkedData::from_bytes(&data);
    let mut enc = Vec::new();
    let mut dec = Vec::new();
    let mut comp = 0u64;
    for name in ["DBEFS_4", "DIFF_4", "RLE_4"] {
        let c = lc_components::lookup(name).unwrap();
        let o = run_stage(c.as_ref(), &chunked, false);
        enc.push(o.enc.scaled(factor));
        dec.push(o.dec.scaled(factor));
        comp = (o.output.total_bytes() as f64 * factor) as u64 + 5 * chunks;
        chunked = o.output;
    }
    (enc, dec, chunks, paper_bytes, comp)
}

fn bench_ablation(c: &mut Criterion) {
    let (enc, dec, chunks, unc, comp) = real_pipeline_stats();
    let cfg = SimConfig::new(&RTX_4090, CompilerId::Clang, OptLevel::O3);

    // Print the simulated effect of each mechanism once (the actual
    // ablation result; Criterion then measures evaluation speed).
    println!(
        "ablation (DBEFS_4 DIFF_4 RLE_4 on obs_temp, {}):",
        cfg.label()
    );
    for v in Variant::ALL {
        let te = pipeline_time_ablated(&cfg, Direction::Encode, &enc, chunks, unc, comp, v);
        let td = pipeline_time_ablated(&cfg, Direction::Decode, &dec, chunks, unc, comp, v);
        println!(
            "  {:14} encode {:8.1} GB/s   decode {:8.1} GB/s",
            v.label(),
            gpu_sim::throughput_gbs(unc, te),
            gpu_sim::throughput_gbs(unc, td),
        );
    }

    let mut g = c.benchmark_group("ablation_eval");
    for v in Variant::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(v.label()), &v, |b, &v| {
            b.iter(|| {
                black_box(pipeline_time_ablated(
                    &cfg,
                    Direction::Encode,
                    black_box(&enc),
                    chunks,
                    unc,
                    comp,
                    v,
                ))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
