//! Per-component kernel throughput on one 16 kB chunk — the Rust-side
//! equivalent of the paper's per-component characterization (Tables 1/2,
//! Figs. 8–13 kernels). Criterion reports bytes/second per component and
//! direction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lc_core::KernelStats;

fn bench_encode(c: &mut Criterion) {
    let chunk = bench::sample_chunk();
    let mut g = c.benchmark_group("component_encode");
    g.throughput(Throughput::Bytes(chunk.len() as u64));
    // One representative per family at the float-matched word size keeps
    // the run short; pass --bench components -- --exact <name> for others.
    for name in [
        "DBEFS_4", "DBESF_4", "TCMS_4", "TCNB_4", "BIT_4", "TUPL2_2", "DIFF_4", "DIFFMS_4",
        "DIFFNB_4", "CLOG_4", "HCLOG_4", "RARE_4", "RAZE_4", "RLE_4", "RRE_4", "RZE_4",
    ] {
        let comp = lc_components::lookup(name).expect(name);
        g.bench_with_input(BenchmarkId::from_parameter(name), &chunk, |b, chunk| {
            let mut out = Vec::with_capacity(chunk.len() * 2);
            b.iter(|| {
                out.clear();
                let mut stats = KernelStats::new();
                comp.encode_chunk(black_box(chunk), &mut out, &mut stats);
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let chunk = bench::sample_chunk();
    let mut g = c.benchmark_group("component_decode");
    g.throughput(Throughput::Bytes(chunk.len() as u64));
    for name in [
        "TCMS_4", "BIT_4", "DIFF_4", "CLOG_4", "RARE_4", "RLE_4", "RZE_4",
    ] {
        let comp = lc_components::lookup(name).expect(name);
        let mut encoded = Vec::new();
        comp.encode_chunk(&chunk, &mut encoded, &mut KernelStats::new());
        g.bench_with_input(BenchmarkId::from_parameter(name), &encoded, |b, enc| {
            let mut out = Vec::with_capacity(chunk.len());
            b.iter(|| {
                out.clear();
                let mut stats = KernelStats::new();
                comp.decode_chunk(black_box(enc), &mut out, &mut stats)
                    .unwrap();
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_word_sizes(c: &mut Criterion) {
    // The §6.2 axis: the same transform at all four word sizes.
    let chunk = bench::sample_chunk();
    let mut g = c.benchmark_group("wordsize_tcms");
    g.throughput(Throughput::Bytes(chunk.len() as u64));
    for w in [1usize, 2, 4, 8] {
        let comp = lc_components::lookup(&format!("TCMS_{w}")).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(w), &chunk, |b, chunk| {
            let mut out = Vec::with_capacity(chunk.len());
            b.iter(|| {
                out.clear();
                comp.encode_chunk(black_box(chunk), &mut out, &mut KernelStats::new());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_word_sizes);
criterion_main!(benches);
