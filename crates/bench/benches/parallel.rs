//! Substrate benchmarks: the decoupled look-back scan (the framework
//! operation the paper localizes the Clang/NVCC split in, §6.1) and the
//! pool's scheduling overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lc_parallel::{scan::parallel_exclusive_scan, Pool};

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookback_scan");
    for n in [64usize, 1024, 16384] {
        let values: Vec<u64> = (0..n as u64).map(|i| (i * 977) % 4096).collect();
        g.throughput(Throughput::Elements(n as u64));
        for threads in [1usize, 4] {
            let pool = Pool::new(threads);
            g.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), n),
                &values,
                |b, values| {
                    b.iter(|| black_box(parallel_exclusive_scan(&pool, black_box(values))));
                },
            );
        }
    }
    g.finish();
}

fn bench_pool_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_dispatch");
    for tasks in [16usize, 256, 4096] {
        g.throughput(Throughput::Elements(tasks as u64));
        let pool = Pool::new(4);
        g.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                pool.run(tasks, |i| {
                    black_box(i);
                })
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scan, bench_pool_overhead);
criterion_main!(benches);
