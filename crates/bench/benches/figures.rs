//! One benchmark per paper figure (Figs. 2–15): each regenerates its
//! figure's letter-value series from a shared campaign. The campaign
//! itself (the expensive stage-tree execution) is built once; the benches
//! measure the per-figure selection + letter-value computation, i.e. the
//! code path `reproduce --figure N` takes after measurement.
//!
//! The full-scale regeneration of every figure is
//! `cargo run --release -p lc-study --bin reproduce -- --figure all`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lc_study::{figures, FigId};

fn bench_figures(c: &mut Criterion) {
    let m = bench::shared_measurements();
    let mut g = c.benchmark_group("figure");
    g.sample_size(10);
    for id in FigId::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("fig{:02}", id.number())),
            &id,
            |b, &id| {
                b.iter(|| black_box(figures::figure(m, id)));
            },
        );
    }
    g.finish();
}

fn bench_letter_values(c: &mut Criterion) {
    // The statistic every box in every figure needs.
    let values: Vec<f64> = (0..107_632u64)
        .map(|i| 100.0 + ((i.wrapping_mul(2654435761)) % 100_000) as f64 / 500.0)
        .collect();
    c.bench_function("letter_values_107632", |b| {
        b.iter(|| black_box(lc_study::stats::letter_values(black_box(&values))));
    });
}

fn bench_findings(c: &mut Criterion) {
    let m = bench::shared_measurements();
    c.bench_function("findings_checklist", |b| {
        b.iter(|| black_box(lc_study::report::findings(m)));
    });
}

criterion_group!(benches, bench_figures, bench_letter_values, bench_findings);
criterion_main!(benches);
