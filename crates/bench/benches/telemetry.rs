//! Telemetry overhead benchmarks.
//!
//! Two questions, answered as A/B pairs:
//!
//! * `telemetry_encode/{disabled,enabled}` — end-to-end archive encode
//!   with telemetry off vs. on. The acceptance bar is < 1% throughput
//!   cost when disabled relative to a build that never links telemetry
//!   (disabled here is the default state, so the `disabled` arm IS that
//!   measurement) and the `enabled` arm shows the full recording cost.
//! * `telemetry_span/{disabled,enabled}` — nanobench of the `span!`
//!   macro itself. Disabled must compile down to one relaxed atomic
//!   load and a branch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lc_core::archive;
use lc_parallel::Pool;
use lc_telemetry::span;

const PIPELINE: &str = "DBEFS_4 DIFF_4 RZE_4";

fn bench_encode_ab(c: &mut Criterion) {
    let input = bench::sample_input();
    let pool = Pool::with_default_threads();
    let pipeline = lc_components::parse_pipeline(PIPELINE).unwrap();
    let mut g = c.benchmark_group("telemetry_encode");
    g.throughput(Throughput::Bytes(input.len() as u64));
    g.sample_size(20);

    lc_telemetry::disable();
    g.bench_function(BenchmarkId::from_parameter("disabled"), |b| {
        b.iter(|| black_box(archive::encode(&pipeline, black_box(&input), &pool)));
    });

    lc_telemetry::enable();
    g.bench_function(BenchmarkId::from_parameter("enabled"), |b| {
        b.iter(|| {
            let out = black_box(archive::encode(&pipeline, black_box(&input), &pool));
            // Drain per iteration so the event buffers don't grow without
            // bound; the drain cost is part of what "enabled" costs.
            black_box(lc_telemetry::drain());
            out
        });
    });
    lc_telemetry::disable();
    lc_telemetry::reset();
    g.finish();
}

fn bench_span_macro(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_span");

    lc_telemetry::disable();
    g.bench_function(BenchmarkId::from_parameter("disabled"), |b| {
        b.iter(|| {
            let s = span!("bench.span", n = black_box(1u64));
            black_box(s)
        });
    });

    lc_telemetry::enable();
    g.bench_function(BenchmarkId::from_parameter("enabled"), |b| {
        b.iter(|| {
            let s = span!("bench.span", n = black_box(1u64));
            black_box(s)
        });
    });
    lc_telemetry::disable();
    lc_telemetry::drain();
    lc_telemetry::reset();
    g.finish();
}

criterion_group!(benches, bench_encode_ab, bench_span_macro);
criterion_main!(benches);
