//! Cost-model benchmarks: how fast the GPU/compiler simulator evaluates —
//! this bounds the wall time of the full 107,632-pipeline campaign, which
//! performs millions of these evaluations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use gpu_sim::{pipeline_time, CompilerId, Direction, OptLevel, SimConfig, ALL_GPUS, RTX_4090};
use lc_core::KernelStats;

fn typical_stats(chunks: u64) -> KernelStats {
    let words = chunks * 4096;
    KernelStats {
        words,
        thread_ops: words * 4,
        global_reads: chunks * 16384,
        global_writes: chunks * 16384,
        shared_traffic: chunks * 32768,
        warp_shuffles: words / 8,
        warp_syncs: chunks * 16,
        block_syncs: chunks * 4,
        atomic_ops: chunks,
        scan_steps: chunks * 13,
        divergent_branches: chunks * 10,
    }
}

fn bench_pipeline_time(c: &mut Criterion) {
    let chunks = 6400u64;
    let stats = [typical_stats(chunks); 3];
    let mut g = c.benchmark_group("pipeline_time");
    g.throughput(Throughput::Elements(1));
    for gpu in ALL_GPUS {
        let compiler = if gpu.vendor == gpu_sim::Vendor::Nvidia {
            CompilerId::Nvcc
        } else {
            CompilerId::Hipcc
        };
        let cfg = SimConfig::new(gpu, compiler, OptLevel::O3);
        g.bench_with_input(BenchmarkId::from_parameter(gpu.name), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(pipeline_time(
                    black_box(cfg),
                    Direction::Encode,
                    black_box(&stats),
                    chunks,
                    chunks * 16384,
                    chunks * 9000,
                ))
            });
        });
    }
    g.finish();
}

fn bench_campaign_inner_loop(c: &mut Criterion) {
    // The per-(pipeline, platform) arithmetic the campaign repeats ~60M
    // times at full scale.
    let cfg = SimConfig::new(&RTX_4090, CompilerId::Clang, OptLevel::O3);
    let stats = typical_stats(6400);
    c.bench_function("stage_time_single", |b| {
        b.iter(|| {
            black_box(gpu_sim::stage_time(
                black_box(&cfg),
                black_box(&stats),
                6400,
            ))
        });
    });
}

criterion_group!(benches, bench_pipeline_time, bench_campaign_inner_loop);
criterion_main!(benches);
