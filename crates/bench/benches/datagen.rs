//! Synthetic SP dataset generation throughput (Table 3 substitution):
//! generation must stay cheap relative to the campaign it feeds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lc_data::{file_by_name, generate, Scale};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagen");
    // One file per domain.
    for name in ["msg_bt", "num_brain", "obs_temp"] {
        let file = file_by_name(name).unwrap();
        let bytes = Scale::tiny().bytes_for(file);
        g.throughput(Throughput::Bytes(bytes as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), file, |b, file| {
            b.iter(|| black_box(generate(black_box(file), Scale::tiny())));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
