//! End-to-end archive benchmarks: chunk-parallel encode and decode of a
//! multi-chunk input through representative pipelines (the paper's
//! encoding/decoding throughput metric, on the CPU substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lc_core::archive;
use lc_parallel::Pool;

const PIPELINES: [&str; 4] = [
    "DBEFS_4 DIFF_4 RZE_4",
    "DBESF_4 DIFFMS_4 RARE_4",
    "TCMS_4 DIFF_4 CLOG_4",
    "TUPL2_1 BIT_1 RLE_1",
];

fn bench_encode(c: &mut Criterion) {
    let input = bench::sample_input();
    let pool = Pool::with_default_threads();
    let mut g = c.benchmark_group("archive_encode");
    g.throughput(Throughput::Bytes(input.len() as u64));
    g.sample_size(20);
    for desc in PIPELINES {
        let pipeline = lc_components::parse_pipeline(desc).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(desc), &input, |b, input| {
            b.iter(|| black_box(archive::encode(&pipeline, black_box(input), &pool)));
        });
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let input = bench::sample_input();
    let pool = Pool::with_default_threads();
    let mut g = c.benchmark_group("archive_decode");
    g.throughput(Throughput::Bytes(input.len() as u64));
    g.sample_size(20);
    for desc in PIPELINES {
        let pipeline = lc_components::parse_pipeline(desc).unwrap();
        let encoded = archive::encode(&pipeline, &input, &pool);
        g.bench_with_input(BenchmarkId::from_parameter(desc), &encoded, |b, enc| {
            b.iter(|| {
                black_box(archive::decode(black_box(enc), lc_components::lookup, &pool).unwrap())
            });
        });
    }
    g.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let input = bench::sample_input();
    let pipeline = lc_components::parse_pipeline("DBEFS_4 DIFF_4 RZE_4").unwrap();
    let mut g = c.benchmark_group("archive_encode_threads");
    g.throughput(Throughput::Bytes(input.len() as u64));
    g.sample_size(20);
    for threads in [1usize, 2, 4] {
        let pool = Pool::new(threads);
        g.bench_with_input(BenchmarkId::from_parameter(threads), &input, |b, input| {
            b.iter(|| black_box(archive::encode(&pipeline, black_box(input), &pool)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_thread_scaling);
criterion_main!(benches);
