//! Perf-regression comparison between two bench snapshots.
//!
//! `bench diff` reads a committed baseline (`BENCH_campaign.json` /
//! `BENCH_serve.json`) and a freshly generated snapshot of the same
//! schema, compares a fixed set of gated metrics, and classifies each
//! as ok / warn / fail. The thresholds implement the repo's regression
//! policy: a gated metric more than 15 % worse than baseline fails the
//! build, more than 5 % worse warns. Latency percentiles and sweep-knee
//! metrics are compared warn-only — they are real signals but too noisy
//! on shared CI runners to gate merges on.
//!
//! "Worse" is direction-aware: throughput shrinking is a regression,
//! latency growing is a regression.

use lc_json::Value;

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are better (throughput, speedup, hit rate).
    HigherIsBetter,
    /// Smaller numbers are better (latency, overhead).
    LowerIsBetter,
}

/// One metric the differ tracks.
#[derive(Debug, Clone, Copy)]
pub struct MetricSpec {
    /// Dot-separated path into the snapshot JSON (`"archive.encode_mb_s"`).
    pub path: &'static str,
    /// Which way the metric improves.
    pub direction: Direction,
    /// Whether a fail-severity regression on this metric fails the
    /// build. Ungated metrics cap out at warn.
    pub gate: bool,
}

/// The gated metric set for `BENCH_campaign.json`.
pub const CAMPAIGN_METRICS: &[MetricSpec] = &[
    MetricSpec {
        path: "campaign.units_per_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "sweep.speedup",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "archive.encode_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "archive.decode_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "telemetry.enabled_overhead_pct",
        direction: Direction::LowerIsBetter,
        gate: false,
    },
    // Kernel-layer single-thread throughput (the SIMD dispatch path).
    // The chained pipeline number is the headline gate; the per-family
    // numbers localize a regression to one kernel.
    MetricSpec {
        path: "kernels.pipeline_st_enc_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "kernels.pipeline_st_dec_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "kernels.dbefs_4.enc_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "kernels.diff_4.enc_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "kernels.diff_4.dec_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "kernels.rze_4.enc_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "kernels.bit_1.enc_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "kernels.rle_4.enc_mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    // Up-front cost of the canonical-mode class map over the full
    // 107,632-pipeline space. Warn-only: it runs once per campaign and
    // is dominated by allocator noise on shared runners.
    MetricSpec {
        path: "analyze.canonicalize_ms",
        direction: Direction::LowerIsBetter,
        gate: false,
    },
    // Sharded-execution path: total wall across the 4 sequential
    // in-process shards and the journal-merge cost. Warn-only — shard
    // wall is campaign wall plus journal/digest overhead, all of it
    // dominated by scheduler noise at tiny scale — but a sustained
    // drift here is the first sign the sharded full-space path got
    // more expensive.
    MetricSpec {
        path: "shard.wall_s",
        direction: Direction::LowerIsBetter,
        gate: false,
    },
    MetricSpec {
        path: "shard.merge_ms",
        direction: Direction::LowerIsBetter,
        gate: false,
    },
];

/// The gated metric set for `BENCH_serve.json`.
pub const SERVE_METRICS: &[MetricSpec] = &[
    MetricSpec {
        path: "reqs_per_sec",
        direction: Direction::HigherIsBetter,
        gate: true,
    },
    MetricSpec {
        path: "p50_us",
        direction: Direction::LowerIsBetter,
        gate: false,
    },
    MetricSpec {
        path: "p90_us",
        direction: Direction::LowerIsBetter,
        gate: false,
    },
    MetricSpec {
        path: "p99_us",
        direction: Direction::LowerIsBetter,
        gate: false,
    },
    MetricSpec {
        path: "rate_sweep.knee_goodput_rps",
        direction: Direction::HigherIsBetter,
        gate: false,
    },
];

/// How one metric's comparison came out, worst first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Within the warn threshold (or improved).
    Ok,
    /// Worse than the warn threshold, or the metric is missing from
    /// one of the snapshots (schema drift is worth a look, not a block).
    Warn,
    /// A gated metric worse than the fail threshold.
    Fail,
}

/// One metric's comparison.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The metric's JSON path.
    pub path: &'static str,
    /// Baseline value, if present.
    pub baseline: Option<f64>,
    /// Current value, if present.
    pub current: Option<f64>,
    /// Regression percentage (positive = worse, direction-adjusted);
    /// `None` when either side is missing.
    pub regression_pct: Option<f64>,
    /// Classification under the thresholds.
    pub severity: Severity,
}

/// Comparison thresholds, as regression percentages.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Regressions beyond this warn.
    pub warn_pct: f64,
    /// Gated regressions beyond this fail.
    pub fail_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            warn_pct: 5.0,
            fail_pct: 15.0,
        }
    }
}

/// Walk a dot-separated path into a snapshot.
fn lookup(v: &Value, path: &str) -> Option<f64> {
    let mut cur = v;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    cur.as_f64()
}

/// Compare `current` against `baseline` over `specs`.
pub fn compare(
    baseline: &Value,
    current: &Value,
    specs: &[MetricSpec],
    thresholds: Thresholds,
) -> Vec<DiffOutcome> {
    specs
        .iter()
        .map(|spec| {
            let base = lookup(baseline, spec.path);
            let cur = lookup(current, spec.path);
            let (regression_pct, severity) = match (base, cur) {
                (Some(b), Some(c)) if b.abs() > f64::EPSILON => {
                    let pct = match spec.direction {
                        Direction::HigherIsBetter => (b - c) / b * 100.0,
                        Direction::LowerIsBetter => (c - b) / b * 100.0,
                    };
                    let severity = if pct > thresholds.fail_pct && spec.gate {
                        Severity::Fail
                    } else if pct > thresholds.warn_pct {
                        Severity::Warn
                    } else {
                        Severity::Ok
                    };
                    (Some(pct), severity)
                }
                // A zero baseline cannot express a percentage; treat as
                // schema drift rather than inventing an infinity.
                (Some(_), Some(_)) | (None, _) | (_, None) => (None, Severity::Warn),
            };
            DiffOutcome {
                path: spec.path,
                baseline: base,
                current: cur,
                regression_pct,
                severity,
            }
        })
        .collect()
}

/// The worst severity in a comparison (what the exit code reports).
pub fn worst(outcomes: &[DiffOutcome]) -> Severity {
    outcomes
        .iter()
        .map(|o| o.severity)
        .max()
        .unwrap_or(Severity::Ok)
}

/// Render the comparison as an aligned plain-text table.
pub fn render(outcomes: &[DiffOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:>14} {:>14} {:>9}  {}\n",
        "metric", "baseline", "current", "delta", "status"
    ));
    for o in outcomes {
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.2}"),
            None => "-".to_string(),
        };
        let delta = match o.regression_pct {
            // regression_pct is positive-is-worse; readers expect a
            // signed delta where minus means "got worse".
            Some(pct) => format!("{:+.1}%", -pct),
            None => "-".to_string(),
        };
        let status = match o.severity {
            Severity::Ok => "ok",
            Severity::Warn => "WARN",
            Severity::Fail => "FAIL",
        };
        out.push_str(&format!(
            "{:<36} {:>14} {:>14} {:>9}  {}\n",
            o.path,
            fmt(o.baseline),
            fmt(o.current),
            delta,
            status
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, f64)]) -> Value {
        // One-level-deep builder: "a.b" becomes {"a": {"b": v}}.
        let mut root: Vec<(String, Value)> = Vec::new();
        for (path, v) in pairs {
            match path.split_once('.') {
                None => root.push((path.to_string(), Value::from(*v))),
                Some((head, rest)) => {
                    let entry = root.iter_mut().find(|(k, _)| k == head);
                    let obj = match entry {
                        Some((_, Value::Object(fields))) => fields,
                        _ => {
                            root.push((head.to_string(), Value::Object(Vec::new())));
                            match &mut root.last_mut().unwrap().1 {
                                Value::Object(fields) => fields,
                                _ => unreachable!(),
                            }
                        }
                    };
                    obj.push((rest.to_string(), Value::from(*v)));
                }
            }
        }
        Value::Object(root)
    }

    const SPEC_UP: &[MetricSpec] = &[MetricSpec {
        path: "t.mb_s",
        direction: Direction::HigherIsBetter,
        gate: true,
    }];

    #[test]
    fn within_noise_is_ok_and_improvement_is_ok() {
        for cur in [98.0, 100.0, 150.0] {
            let out = compare(
                &snap(&[("t.mb_s", 100.0)]),
                &snap(&[("t.mb_s", cur)]),
                SPEC_UP,
                Thresholds::default(),
            );
            assert_eq!(out[0].severity, Severity::Ok, "current {cur}");
        }
    }

    #[test]
    fn thresholds_split_warn_from_fail() {
        let base = snap(&[("t.mb_s", 100.0)]);
        let warn = compare(
            &base,
            &snap(&[("t.mb_s", 90.0)]),
            SPEC_UP,
            Thresholds::default(),
        );
        assert_eq!(warn[0].severity, Severity::Warn);
        let fail = compare(
            &base,
            &snap(&[("t.mb_s", 80.0)]),
            SPEC_UP,
            Thresholds::default(),
        );
        assert_eq!(fail[0].severity, Severity::Fail);
        assert!((fail[0].regression_pct.unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn lower_is_better_inverts_the_direction() {
        let spec = &[MetricSpec {
            path: "p99_us",
            direction: Direction::LowerIsBetter,
            gate: true,
        }];
        let base = snap(&[("p99_us", 1000.0)]);
        let worse = compare(
            &base,
            &snap(&[("p99_us", 1300.0)]),
            spec,
            Thresholds::default(),
        );
        assert_eq!(worse[0].severity, Severity::Fail);
        let better = compare(
            &base,
            &snap(&[("p99_us", 500.0)]),
            spec,
            Thresholds::default(),
        );
        assert_eq!(better[0].severity, Severity::Ok);
    }

    #[test]
    fn ungated_metrics_cap_at_warn() {
        let spec = &[MetricSpec {
            path: "p99_us",
            direction: Direction::LowerIsBetter,
            gate: false,
        }];
        let out = compare(
            &snap(&[("p99_us", 1000.0)]),
            &snap(&[("p99_us", 5000.0)]),
            spec,
            Thresholds::default(),
        );
        assert_eq!(out[0].severity, Severity::Warn);
        assert_eq!(worst(&out), Severity::Warn);
    }

    #[test]
    fn missing_metric_warns_instead_of_failing() {
        let out = compare(
            &snap(&[("t.mb_s", 100.0)]),
            &snap(&[("unrelated", 1.0)]),
            SPEC_UP,
            Thresholds::default(),
        );
        assert_eq!(out[0].severity, Severity::Warn);
        assert_eq!(out[0].current, None);
        assert_eq!(out[0].regression_pct, None);
    }

    #[test]
    fn render_lists_every_metric_with_status() {
        let out = compare(
            &snap(&[("t.mb_s", 100.0)]),
            &snap(&[("t.mb_s", 80.0)]),
            SPEC_UP,
            Thresholds::default(),
        );
        let table = render(&out);
        assert!(table.contains("t.mb_s"));
        assert!(table.contains("FAIL"));
        assert!(table.contains("-20.0%"));
    }

    #[test]
    fn real_snapshot_shapes_resolve() {
        // Mirrors the committed BENCH_campaign.json nesting.
        let v = Value::parse(
            r#"{"campaign":{"units_per_s":31.9},"sweep":{"speedup":4.1},
                "archive":{"encode_mb_s":177.1,"decode_mb_s":225.4},
                "kernels":{"pipeline_st_enc_mb_s":1100.0,"pipeline_st_dec_mb_s":900.0,
                           "dbefs_4":{"enc_mb_s":4000.0},
                           "diff_4":{"enc_mb_s":3000.0,"dec_mb_s":2500.0},
                           "rze_4":{"enc_mb_s":2000.0},
                           "bit_1":{"enc_mb_s":1500.0},
                           "rle_4":{"enc_mb_s":1800.0}},
                "telemetry":{"enabled_overhead_pct":13.1},
                "analyze":{"canonicalize_ms":222.2},
                "shard":{"wall_s":1.9,"merge_ms":3.2}}"#,
        )
        .unwrap();
        let out = compare(&v, &v, CAMPAIGN_METRICS, Thresholds::default());
        assert_eq!(worst(&out), Severity::Ok);
        assert!(out.iter().all(|o| o.regression_pct == Some(0.0)));
    }
}
