//! `cargo run --release -p bench --bin snapshot` — emit
//! `BENCH_campaign.json`, a small machine-readable performance snapshot
//! of a fixed tiny-scale campaign (run both prefix-memoized and naive,
//! with the cache hit rate and sweep speedup) plus archive encode/decode
//! throughput and the telemetry A/B overhead, for tracking across
//! commits.
//!
//! Unlike the Criterion benches (statistical, slow), this is a
//! single-shot snapshot: medians of a few repetitions, done in seconds,
//! with a stable JSON schema that diffs cleanly.

use std::time::Instant;

use lc_core::archive;
use lc_data::{Scale, SP_FILES};
use lc_json::Value;
use lc_parallel::Pool;
use lc_study::{
    merge_shards, report, run_campaign_with, CampaignOptions, PruneMode, PrunePlan, ShardSpec,
    Space, StudyConfig, SweepMode,
};

const PIPELINE: &str = "DBEFS_4 DIFF_4 RZE_4";
const REPS: usize = 9;

fn median_secs(mut times: Vec<f64>) -> f64 {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Median wall time of `f` over [`REPS`] repetitions.
fn time_median(mut f: impl FnMut()) -> f64 {
    let times = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    median_secs(times)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());

    // 1. The fixed tiny-scale campaign: same restricted space the figure
    //    benches use, so numbers are comparable across harnesses.
    let sc = StudyConfig {
        space: Space::restricted_to_families(&["TCMS", "BIT", "DIFF", "RLE", "RZE"]),
        scale: Scale::tiny(),
        threads: lc_parallel::default_threads(),
        files: vec![&SP_FILES[0], &SP_FILES[5], &SP_FILES[12]],
        opt_levels: vec![gpu_sim::OptLevel::O1, gpu_sim::OptLevel::O3],
        verify: false,
    };
    let units = sc.files.len() * sc.space.components.len();
    eprintln!("campaign: {units} units ({} pipelines) ...", sc.space.len());
    let run_sweep = |sweep: SweepMode| {
        let opts = CampaignOptions {
            sweep,
            ..Default::default()
        };
        let t0 = Instant::now();
        let outcome = run_campaign_with(&sc, &opts).expect("campaign failed");
        (outcome, t0.elapsed().as_secs_f64())
    };
    let (outcome, campaign_s) = run_sweep(SweepMode::default());
    let m = outcome.measurements;
    let cache = outcome.cache;
    eprintln!(
        "campaign (memoized): {campaign_s:.2}s ({:.1} units/s, {:.1}% cache hit rate)",
        units as f64 / campaign_s,
        100.0 * cache.hit_rate()
    );
    let (naive_outcome, naive_s) = run_sweep(SweepMode::Naive);
    drop(naive_outcome);
    eprintln!(
        "campaign (naive):    {naive_s:.2}s ({:.1} units/s)",
        units as f64 / naive_s
    );

    // 2. Archive encode/decode throughput on the shared bench input.
    let input = bench::sample_input();
    let pool = Pool::with_default_threads();
    let pipeline = lc_components::parse_pipeline(PIPELINE).unwrap();
    let encoded = archive::encode(&pipeline, &input, &pool);
    let enc_s = time_median(|| {
        std::hint::black_box(archive::encode(
            &pipeline,
            std::hint::black_box(&input),
            &pool,
        ));
    });
    let dec_s = time_median(|| {
        std::hint::black_box(
            archive::decode(std::hint::black_box(&encoded), lc_components::lookup, &pool).unwrap(),
        );
    });
    let mb = input.len() as f64 / 1e6;
    eprintln!(
        "archive: encode {:.1} MB/s, decode {:.1} MB/s",
        mb / enc_s,
        mb / dec_s
    );

    // 3. Telemetry A/B: the same encode with recording on. The disabled
    //    arm above is the default state (one relaxed load on the hot
    //    path); `overhead_pct` is the full cost of recording.
    lc_telemetry::enable();
    let enc_tel_s = time_median(|| {
        std::hint::black_box(archive::encode(
            &pipeline,
            std::hint::black_box(&input),
            &pool,
        ));
        std::hint::black_box(lc_telemetry::drain());
    });
    lc_telemetry::disable();
    lc_telemetry::reset();
    let overhead_pct = (enc_tel_s / enc_s - 1.0) * 100.0;
    eprintln!(
        "telemetry: enabled encode {:.1} MB/s ({overhead_pct:+.1}%)",
        mb / enc_tel_s
    );

    // 4. Kernel layer: single-thread throughput through the batch stage
    //    entry points, i.e. what one CPU core does with the SIMD kernels
    //    and no pool. The pipeline number chains all three stages
    //    per chunk (including copy-on-expand stage skips), so it is the
    //    honest "1 GB/s single-thread encode" figure; the per-component
    //    numbers isolate each kernel family.
    let kernel_tier = lc_components::kernels::tier().label();
    let chunks: Vec<&[u8]> = input.chunks(lc_core::CHUNK_SIZE).collect();
    // Ping-pong between two retained buffers, exactly like a pool
    // worker's Scratch arena: after the first chunk the loop allocates
    // nothing, so the number measures the kernels, not the allocator.
    let mut ping = Vec::new();
    let mut pong = Vec::new();
    let st_enc_s = time_median(|| {
        let mut stats = lc_core::KernelStats::new();
        for chunk in &chunks {
            ping.clear();
            ping.extend_from_slice(chunk);
            for stage in pipeline.stages() {
                if lc_core::encode_stage(stage.as_ref(), &ping, &mut pong, &mut stats) {
                    std::mem::swap(&mut ping, &mut pong);
                }
            }
            std::hint::black_box(&ping);
        }
    });
    // Encode once outside the timer to get decodable chunks + stage masks.
    let st_encoded: Vec<(Vec<u8>, Vec<bool>)> = chunks
        .iter()
        .map(|chunk| {
            let mut stats = lc_core::KernelStats::new();
            let mut cur = chunk.to_vec();
            let mut applied = Vec::with_capacity(pipeline.len());
            for stage in pipeline.stages() {
                let mut out = Vec::new();
                let a = lc_core::encode_stage(stage.as_ref(), &cur, &mut out, &mut stats);
                if a {
                    cur = out;
                }
                applied.push(a);
            }
            (cur, applied)
        })
        .collect();
    let st_dec_s = time_median(|| {
        let mut stats = lc_core::KernelStats::new();
        for (enc, applied) in &st_encoded {
            ping.clear();
            ping.extend_from_slice(enc);
            for (stage, a) in pipeline.stages().iter().zip(applied).rev() {
                if !a {
                    continue;
                }
                lc_core::decode_stage(stage.as_ref(), &ping, &mut pong, &mut stats)
                    .expect("snapshot pipeline decodes its own output");
                std::mem::swap(&mut ping, &mut pong);
            }
            std::hint::black_box(&ping);
        }
    });
    eprintln!(
        "kernels ({kernel_tier}): pipeline single-thread encode {:.1} MB/s, decode {:.1} MB/s",
        mb / st_enc_s,
        mb / st_dec_s
    );
    let mut kernel_entries: Vec<(String, Value)> = vec![
        ("variant".to_string(), Value::from(kernel_tier)),
        ("pipeline".to_string(), Value::from(PIPELINE)),
        (
            "pipeline_st_enc_mb_s".to_string(),
            Value::from(mb / st_enc_s),
        ),
        (
            "pipeline_st_dec_mb_s".to_string(),
            Value::from(mb / st_dec_s),
        ),
    ];
    for name in [
        "TCMS_4", "DBEFS_4", "BIT_1", "DIFF_4", "RLE_4", "RRE_4", "RZE_4",
    ] {
        let comp = lc_components::lookup(name).expect("snapshot component exists");
        let enc_s = time_median(|| {
            let mut stats = lc_core::KernelStats::new();
            for chunk in &chunks {
                ping.clear();
                comp.encode_chunk(chunk, &mut ping, &mut stats);
                std::hint::black_box(&ping);
            }
        });
        let encoded_chunks: Vec<Vec<u8>> = chunks
            .iter()
            .map(|chunk| {
                let mut stats = lc_core::KernelStats::new();
                let mut out = Vec::new();
                comp.encode_chunk(chunk, &mut out, &mut stats);
                out
            })
            .collect();
        let dec_s = time_median(|| {
            let mut stats = lc_core::KernelStats::new();
            for enc in &encoded_chunks {
                ping.clear();
                comp.decode_chunk(enc, &mut ping, &mut stats)
                    .expect("snapshot component decodes its own output");
                std::hint::black_box(&ping);
            }
        });
        eprintln!(
            "kernels: {name} ({}) encode {:.1} MB/s, decode {:.1} MB/s",
            comp.kernel_variant().label(),
            mb / enc_s,
            mb / dec_s
        );
        kernel_entries.push((
            name.to_lowercase(),
            Value::object([
                ("variant", Value::from(comp.kernel_variant().label())),
                ("enc_mb_s", Value::from(mb / enc_s)),
                ("dec_mb_s", Value::from(mb / dec_s)),
            ]),
        ));
    }

    // 5. Static analysis: contract-check the full registry and compute
    //    the pruning plan over the paper's full 107,632-pipeline space,
    //    so the analyzer's runtime and the pruned-pipeline count are
    //    tracked across commits alongside the raw throughputs. (The
    //    tiny bench space above has no commuting pairs by construction,
    //    so its own prune report is always zero; the full space is what
    //    the analyzer earns its keep on.)
    let analysis = lc_analyze::analyze_registry();
    let full = Space::full();
    let full_reducers = full.reducers.len();
    let plan = PrunePlan::for_space(&full, PruneMode::Commute);
    let prune = plan.report(full_reducers);
    eprintln!(
        "analyze: {} checks on {} components in {:.1} ms; {} commuting pairs prune {} of {} pipelines",
        analysis.checks,
        analysis.components,
        analysis.runtime.as_secs_f64() * 1e3,
        prune.commuting_pairs,
        prune.pruned_pipelines,
        full.len(),
    );

    // 6. Canonicalization: the abstract-interpretation class map over
    //    the same full space. Its wall time is the cost a canonical-mode
    //    campaign pays up front, and the class/pruned counts are the
    //    census numbers CI gates on — tracking them here catches both
    //    performance regressions and accidental rule-table drift.
    let t0 = Instant::now();
    let canonical_plan = PrunePlan::for_space(&full, PruneMode::Canonical);
    let canonical_s = t0.elapsed().as_secs_f64();
    let canonical = canonical_plan.report(full_reducers);
    eprintln!(
        "canonicalize: {} classes over {} pipelines, {} certified-redundant, class map {:016x} in {:.1} ms",
        canonical.classes,
        full.len(),
        canonical.pruned_pipelines,
        canonical.class_map,
        canonical_s * 1e3,
    );

    // 7. Sharded execution: the same tiny campaign as 4 sequential
    //    in-process shards (journaled, with dataset digests), then a
    //    merge and a resume from the merged journal. `identical` checks
    //    the fused measurements are bit-for-bit the single-process
    //    run's; the wall times track per-shard overhead (journal
    //    appends + input digests) and merge cost, and the full-space
    //    extrapolation is the headline the sharding exists for: what
    //    the whole 107,632-pipeline space costs at this units/s.
    let shard_dir = std::env::temp_dir().join(format!("lc-bench-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&shard_dir);
    std::fs::create_dir_all(&shard_dir).expect("create shard scratch dir");
    let shard_n = 4;
    let mut shard_walls = Vec::new();
    for index in 0..shard_n {
        let spec = ShardSpec {
            index,
            count: shard_n,
        };
        let opts = CampaignOptions {
            journal: Some(shard_dir.join(spec.journal_file())),
            shard: Some(spec),
            ..Default::default()
        };
        let t0 = Instant::now();
        run_campaign_with(&sc, &opts).expect("shard campaign failed");
        shard_walls.push(t0.elapsed().as_secs_f64());
    }
    let shard_total_s: f64 = shard_walls.iter().sum();
    let shard_max_s = shard_walls.iter().copied().fold(0.0, f64::max);
    let merged_path = shard_dir.join("journal.jsonl");
    let t0 = Instant::now();
    let merge_report = merge_shards(&shard_dir, &merged_path).expect("merge failed");
    let merge_s = t0.elapsed().as_secs_f64();
    let fused = run_campaign_with(
        &sc,
        &CampaignOptions {
            journal: Some(merged_path),
            resume: true,
            ..Default::default()
        },
    )
    .expect("resume from merged journal failed");
    let identical = fused.executed_units == 0
        && report::to_json(&m, &[]) == report::to_json(&fused.measurements, &[]);
    let _ = std::fs::remove_dir_all(&shard_dir);
    let full_units = sc.files.len() * full.components.len();
    let full_space_est_s = full_units as f64 * (shard_total_s / units as f64);
    eprintln!(
        "shard: {shard_n} shards in {shard_total_s:.2}s (max {shard_max_s:.2}s), merge {:.1} ms, \
         {} units fused, identical={identical}; full space (~{full_units} units) \u{2248} {:.0}s at this rate",
        merge_s * 1e3,
        merge_report.units,
        full_space_est_s,
    );

    let snapshot = Value::object([
        ("schema", Value::from("lc-bench-campaign/v3")),
        (
            "campaign",
            Value::object([
                ("space", Value::from("TCMS+BIT+DIFF+RLE+RZE")),
                ("pipelines", Value::from(m.space.len() as u64)),
                (
                    "files",
                    Value::array(sc.files.iter().map(|f| Value::from(f.name))),
                ),
                ("units", Value::from(units as u64)),
                ("wall_s", Value::from(campaign_s)),
                ("units_per_s", Value::from(units as f64 / campaign_s)),
            ]),
        ),
        (
            "sweep",
            Value::object([
                (
                    "memoized_units_per_s",
                    Value::from(units as f64 / campaign_s),
                ),
                ("naive_units_per_s", Value::from(units as f64 / naive_s)),
                ("speedup", Value::from(naive_s / campaign_s)),
            ]),
        ),
        (
            "cache",
            Value::object([
                ("hit_rate", Value::from(cache.hit_rate())),
                ("resident_mb", Value::from(cache.peak_resident_mb())),
                ("evictions", Value::from(cache.evictions)),
            ]),
        ),
        (
            "archive",
            Value::object([
                ("pipeline", Value::from(PIPELINE)),
                ("input_bytes", Value::from(input.len() as u64)),
                ("archive_bytes", Value::from(encoded.len() as u64)),
                ("encode_mb_s", Value::from(mb / enc_s)),
                ("decode_mb_s", Value::from(mb / dec_s)),
            ]),
        ),
        ("kernels", Value::Object(kernel_entries)),
        (
            "telemetry",
            Value::object([
                ("encode_disabled_mb_s", Value::from(mb / enc_s)),
                ("encode_enabled_mb_s", Value::from(mb / enc_tel_s)),
                ("enabled_overhead_pct", Value::from(overhead_pct)),
            ]),
        ),
        (
            "analyze",
            Value::object([
                ("components", Value::from(analysis.components as u64)),
                ("checks", Value::from(analysis.checks as u64)),
                ("violations", Value::from(analysis.diagnostics.len() as u64)),
                (
                    "runtime_ms",
                    Value::from(analysis.runtime.as_secs_f64() * 1e3),
                ),
                ("full_space_pipelines", Value::from(full.len() as u64)),
                (
                    "full_space_commuting_pairs",
                    Value::from(prune.commuting_pairs as u64),
                ),
                (
                    "full_space_pruned_pipelines",
                    Value::from(prune.pruned_pipelines as u64),
                ),
                ("plan_ms", Value::from(prune.analysis.as_secs_f64() * 1e3)),
                (
                    "bench_campaign_pruned_pipelines",
                    Value::from(outcome.prune.pruned_pipelines as u64),
                ),
                ("canonicalize_ms", Value::from(canonical_s * 1e3)),
                ("canonical_classes", Value::from(canonical.classes as u64)),
                (
                    "canonical_pruned_pipelines",
                    Value::from(canonical.pruned_pipelines as u64),
                ),
                (
                    "canonical_class_map",
                    Value::from(format!("{:016x}", canonical.class_map).as_str()),
                ),
            ]),
        ),
        (
            "shard",
            Value::object([
                ("shards", Value::from(shard_n as u64)),
                ("wall_s", Value::from(shard_total_s)),
                ("max_shard_s", Value::from(shard_max_s)),
                ("merge_ms", Value::from(merge_s * 1e3)),
                ("merged_units", Value::from(merge_report.units as u64)),
                ("identical", Value::from(identical)),
                (
                    "overhead_vs_single",
                    Value::from(shard_total_s / campaign_s),
                ),
                ("full_space_units", Value::from(full_units as u64)),
                ("full_space_est_s", Value::from(full_space_est_s)),
            ]),
        ),
    ]);
    let policy = lc_chaos::fs::SyncPolicy::default();
    lc_chaos::fs::atomic_write(
        std::path::Path::new(&out_path),
        snapshot.pretty().as_bytes(),
        policy,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("{out_path} written");
}
