//! `cargo run -p bench --bin diff` — the perf-regression gate.
//!
//! ```text
//! diff --kind campaign|serve --baseline PATH --current PATH
//!      [--fail-pct 15] [--warn-pct 5]
//! ```
//!
//! Compares a fresh snapshot against the committed baseline and prints
//! a per-metric table. Exit codes: 0 clean (warnings allowed, reported
//! on stderr), 2 when any gated metric regressed past the fail
//! threshold, 1 on usage or unreadable/unparseable snapshots.

use std::process::ExitCode;

use bench::diff::{compare, render, worst, Severity, Thresholds, CAMPAIGN_METRICS, SERVE_METRICS};
use lc_json::Value;

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Value::parse(&text).map_err(|e| format!("{path}: not valid JSON: {e:?}"))
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "diff — compare a bench snapshot against its committed baseline\n\
             --kind campaign|serve  which metric set to gate (required)\n\
             --baseline PATH        committed snapshot (required)\n\
             --current PATH         freshly generated snapshot (required)\n\
             --fail-pct P           gated-regression failure threshold (default 15)\n\
             --warn-pct P           regression warning threshold (default 5)"
        );
        return Ok(ExitCode::SUCCESS);
    }
    let kind = flag(&args, "--kind").ok_or("missing --kind campaign|serve")?;
    let specs = match kind {
        "campaign" => CAMPAIGN_METRICS,
        "serve" => SERVE_METRICS,
        other => return Err(format!("--kind {other:?}: expected campaign or serve")),
    };
    let baseline = load(flag(&args, "--baseline").ok_or("missing --baseline PATH")?)?;
    let current = load(flag(&args, "--current").ok_or("missing --current PATH")?)?;
    let parse_pct = |name: &str, default: f64| -> Result<f64, String> {
        match flag(&args, name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("{name}: {e}")),
        }
    };
    let thresholds = Thresholds {
        warn_pct: parse_pct("--warn-pct", 5.0)?,
        fail_pct: parse_pct("--fail-pct", 15.0)?,
    };

    let outcomes = compare(&baseline, &current, specs, thresholds);
    print!("{}", render(&outcomes));
    match worst(&outcomes) {
        Severity::Ok => Ok(ExitCode::SUCCESS),
        Severity::Warn => {
            eprintln!(
                "warning: {} metric(s) regressed past {}% (or were missing); not gating",
                outcomes
                    .iter()
                    .filter(|o| o.severity == Severity::Warn)
                    .count(),
                thresholds.warn_pct
            );
            Ok(ExitCode::SUCCESS)
        }
        Severity::Fail => {
            eprintln!(
                "error: kind=perf-regression exit=2 gated metric(s) regressed past {}%",
                thresholds.fail_pct
            );
            Ok(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: kind=usage exit=1 {msg}");
            ExitCode::FAILURE
        }
    }
}
