//! Shared helpers for the Criterion benchmark harness.
//!
//! One bench target exists per paper artifact class:
//!
//! | target        | regenerates |
//! |---------------|-------------|
//! | `components`  | per-component kernel throughput (Tables 1/2 inventory) |
//! | `archive`     | end-to-end chunk-parallel encode/decode |
//! | `parallel`    | the decoupled look-back scan (the §6.1 framework op) |
//! | `cost_model`  | GPU/compiler simulated-time evaluation |
//! | `figures`     | Figs. 2–15 letter-value series from a campaign |
//! | `datagen`     | Table 3 synthetic input generation |

#![forbid(unsafe_code)]

pub mod diff;

use std::sync::OnceLock;

use lc_data::{Scale, SP_FILES};
use lc_study::{run_campaign, Measurements, Space, StudyConfig};

/// A 16 kB chunk of synthetic single-precision data (one block's worth).
pub fn sample_chunk() -> Vec<u8> {
    lc_data::generate(&SP_FILES[12], Scale::tiny())[..16384].to_vec()
}

/// A multi-chunk input (~256 kB) for archive-level benches.
pub fn sample_input() -> Vec<u8> {
    let mut data = Vec::new();
    for f in [&SP_FILES[10], &SP_FILES[12]] {
        data.extend(lc_data::generate(f, Scale::tiny()));
    }
    data
}

/// A small campaign shared by all figure benches (built once).
pub fn shared_measurements() -> &'static Measurements {
    static M: OnceLock<Measurements> = OnceLock::new();
    M.get_or_init(|| {
        run_campaign(&StudyConfig {
            space: Space::restricted_to_families(&["TCMS", "BIT", "DIFF", "RLE", "RZE"]),
            scale: Scale::tiny(),
            threads: lc_parallel::default_threads(),
            files: vec![&SP_FILES[0], &SP_FILES[5], &SP_FILES[12]],
            opt_levels: vec![gpu_sim::OptLevel::O1, gpu_sim::OptLevel::O3],
            verify: false,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_sizes() {
        assert_eq!(sample_chunk().len(), 16384);
        assert!(sample_input().len() >= 2 * 65536);
    }
}
