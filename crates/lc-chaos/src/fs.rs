//! Hardened durable-state I/O: the writer side of the crash-consistency
//! contract, instrumented with the chaos sites from the crate root.
//!
//! Three primitives cover every durable artifact the campaign runtime
//! produces:
//!
//! * [`DurableFile`] — append-only record files (the campaign journal).
//!   Each record is issued as a **single** `write_all` of one buffer, so
//!   a crash can tear at most the final record, never interleave two.
//!   Once an append fails the file refuses further appends: torn bytes
//!   can therefore only ever exist at end-of-file, which is exactly the
//!   case journal recovery knows how to truncate away.
//! * [`atomic_write`] — whole-file artifacts (`run.json`, telemetry
//!   exports, bench snapshots): write to a temp file in the same
//!   directory, sync, rename over the target. Readers observe the old
//!   bytes or the new bytes, never a mixture.
//! * [`LockFile`] — one campaign per output directory, with stale-lock
//!   reclamation keyed on `/proc/<pid>`.
//!
//! Transient errors (`EINTR`, `ENOSPC`, `EAGAIN`, timeouts) are retried
//! with bounded exponential backoff and *deterministic* jitter (splitmix64
//! of the attempt index — no wall-clock entropy, so chaos-soak runs are
//! reproducible). Fsync failures are **never** retried: after a failed
//! fsync the kernel may have discarded the dirty pages, so the only
//! honest response is to mark the file failed and surface the error.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::{crash_error, fault_at, is_crash, splitmix64, FaultKind, Site};

/// When durable files issue `fsync` (`reproduce --fsync {never,checkpoint,always}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync. Fastest; a host crash can lose the buffered tail
    /// (process crashes still lose at most the final record).
    Never,
    /// Fsync at checkpoints (after each completed input file and at
    /// campaign end/interrupt). The default.
    #[default]
    Checkpoint,
    /// Fsync after every record append. Slowest, smallest loss window.
    Always,
}

impl SyncPolicy {
    /// Parse a `--fsync` argument.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "never" => Some(Self::Never),
            "checkpoint" => Some(Self::Checkpoint),
            "always" => Some(Self::Always),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Never => "never",
            Self::Checkpoint => "checkpoint",
            Self::Always => "always",
        }
    }
}

/// Maximum attempts for a transiently-failing operation (initial try +
/// retries). ENOSPC storms beyond this surface as errors.
pub const MAX_ATTEMPTS: u32 = 5;
/// EINTR is retried immediately (no backoff) with its own, much higher
/// bound: "interrupted" means "call again", and the bound only exists so
/// a pathological fault plan cannot spin forever.
pub const MAX_EINTR: u32 = 64;
/// Base backoff unit; attempt `k` sleeps ~`BASE << k` plus jitter.
pub const BACKOFF_BASE_US: u64 = 200;

/// The exact sleep (µs) before retrying attempt `attempt` (0-based) of
/// the operation tagged `tag`: an exponential step plus seed-pure jitter.
///
/// Pure and deterministic — no wall-clock entropy — so a chaos soak's
/// retry timing is byte-reproducible from its seed, and so the `lc-serve`
/// client can reuse the same shape for shed-retry backoff. The tag is
/// mixed through splitmix64 *before* combining with the attempt index;
/// the previous `tag ^ attempt` fold made schedules collide between
/// distinct call sites (`tag=8, attempt=9` and `tag=9, attempt=8` drew
/// identical jitter), which correlated retries that must be independent.
pub fn backoff_us(tag: u64, attempt: u32) -> u64 {
    let step = BACKOFF_BASE_US << attempt;
    let jitter = splitmix64(splitmix64(tag).wrapping_add(u64::from(attempt))) % BACKOFF_BASE_US;
    step + jitter
}

/// Whether `e` is worth a bounded retry. Interrupted and StorageFull are
/// the kinds the chaos layer injects; WouldBlock/TimedOut are their
/// real-world cousins.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted
            | io::ErrorKind::StorageFull
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    )
}

/// Run `f`, retrying transient failures up to [`MAX_ATTEMPTS`] times with
/// exponential backoff and deterministic jitter. Non-transient errors
/// (including injected torn-crashes) propagate immediately.
pub fn retry_io<T>(tag: u64, mut f: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempt: u32 = 0;
    let mut eintr: u32 = 0;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            // EINTR means "call again now": no backoff, and its own much
            // larger bound so interrupt storms don't eat the backoff
            // budget meant for ENOSPC-style conditions.
            Err(e) if e.kind() == io::ErrorKind::Interrupted && eintr + 1 < MAX_EINTR => {
                eintr += 1;
            }
            Err(e) if is_transient(&e) && attempt + 1 < MAX_ATTEMPTS => {
                std::thread::sleep(Duration::from_micros(backoff_us(tag, attempt)));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One `write` syscall with chaos consulted first. Short writes and torn
/// crashes put a *real* prefix of `buf` into the file so the torn state
/// is physically present for recovery code to deal with.
fn chaos_write(file: &mut File, buf: &[u8]) -> io::Result<usize> {
    match fault_at(Site::Write) {
        None | Some(FaultKind::Stall) | Some(FaultKind::AllocDeny) => file.write(buf),
        Some(FaultKind::Eintr) => Err(io::Error::from(io::ErrorKind::Interrupted)),
        Some(FaultKind::Enospc) => Err(io::Error::from(io::ErrorKind::StorageFull)),
        Some(FaultKind::ShortWrite) => {
            let n = (buf.len() / 2).max(1);
            file.write(&buf[..n])
        }
        Some(FaultKind::TornCrash) => {
            let n = (buf.len() / 2).max(1);
            file.write_all(&buf[..n])?;
            Err(crash_error())
        }
        // Wrong-site kinds; ignore. Kill only ever fires at
        // Site::UnitBoundary via `kill_requested`.
        Some(FaultKind::FsyncFail) | Some(FaultKind::Kill) => file.write(buf),
    }
}

/// Write all of `buf`, absorbing short writes and retrying transients.
fn write_all_chaos(file: &mut File, mut buf: &[u8], tag: u64) -> io::Result<()> {
    while !buf.is_empty() {
        match retry_io(tag, || chaos_write(file, buf)) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
            Ok(n) => buf = &buf[n..],
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// `sync_data` with chaos consulted. Never retried (see module docs).
fn chaos_sync(file: &File) -> io::Result<()> {
    match fault_at(Site::Sync) {
        Some(FaultKind::FsyncFail) => Err(io::Error::other("chaos: fsync failed")),
        _ => file.sync_data(),
    }
}

fn failed_state_error() -> io::Error {
    io::Error::other(
        "durable file is in a failed state after an earlier write error; \
         refusing further appends so torn bytes stay at end-of-file",
    )
}

/// Append-only record file with crash-consistent appends.
///
/// Invariants:
/// * every successful [`append`](Self::append) put the whole record into
///   the file with a single `write_all` of one buffer;
/// * after any failed append the file is either repaired back to the last
///   good length (ordinary errors) or frozen (`failed`, crash/fsync
///   errors) — so torn bytes can only exist at end-of-file, after the
///   last complete record.
#[derive(Debug)]
pub struct DurableFile {
    file: File,
    path: PathBuf,
    /// Bytes of complete, successfully-appended records.
    good_len: u64,
    policy: SyncPolicy,
    failed: bool,
}

impl DurableFile {
    /// Create (truncate) `path` for appending.
    pub fn create(path: &Path, policy: SyncPolicy) -> io::Result<Self> {
        let file = retry_io(0x11, || {
            match fault_at(Site::Create) {
                Some(FaultKind::Eintr) => return Err(io::Error::from(io::ErrorKind::Interrupted)),
                Some(FaultKind::Enospc) => return Err(io::Error::from(io::ErrorKind::StorageFull)),
                _ => {}
            }
            OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)
        })?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            good_len: 0,
            policy,
            failed: false,
        })
    }

    /// Reopen `path` for appending after recovery decided the first
    /// `valid_len` bytes are good: truncates anything past `valid_len`
    /// (a torn tail from a previous crash) and positions at end.
    pub fn resume(path: &Path, valid_len: u64, policy: SyncPolicy) -> io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            good_len: valid_len,
            policy,
            failed: false,
        })
    }

    /// Append one complete record (caller includes any terminator) as a
    /// single buffer. On ordinary failure the file is truncated back to
    /// the last good record; on crash/fsync failure it is frozen.
    pub fn append(&mut self, record: &[u8]) -> io::Result<()> {
        if self.failed {
            return Err(failed_state_error());
        }
        let tag = self.good_len ^ 0x5EED_F00D;
        if let Err(e) = write_all_chaos(&mut self.file, record, tag) {
            if is_crash(&e) {
                // Simulated process death mid-write: the torn bytes are
                // on disk and "we" are gone — no repair is possible, and
                // freezing keeps the tear at EOF.
                self.failed = true;
            } else if self.repair().is_err() {
                self.failed = true;
            }
            return Err(e);
        }
        self.good_len += record.len() as u64;
        if self.policy == SyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Truncate back to the last complete record after a partial write.
    fn repair(&mut self) -> io::Result<()> {
        self.file.set_len(self.good_len)?;
        self.file.seek(SeekFrom::Start(self.good_len))?;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if let Err(e) = chaos_sync(&self.file) {
            self.failed = true;
            return Err(e);
        }
        Ok(())
    }

    /// Durability barrier per the file's [`SyncPolicy`]: fsyncs unless
    /// the policy is [`SyncPolicy::Never`]. Call after each completed
    /// input file and at campaign end/interrupt.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        if self.failed {
            return Err(failed_state_error());
        }
        match self.policy {
            SyncPolicy::Never => Ok(()),
            SyncPolicy::Checkpoint | SyncPolicy::Always => self.sync(),
        }
    }

    /// Bytes of complete records appended or resumed so far.
    pub fn len(&self) -> u64 {
        self.good_len
    }

    /// Whether no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.good_len == 0
    }

    /// Whether an earlier failure froze the file.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// The underlying path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Atomically replace `path` with `bytes`: write a temp file in the same
/// directory, optionally fsync it, then rename over the target. Any
/// reader — and any crash — observes either the old contents or the new
/// contents, never a mixture. On failure the temp file is removed
/// (best-effort) and the original file is untouched.
pub fn atomic_write(path: &Path, bytes: &[u8], policy: SyncPolicy) -> io::Result<()> {
    let tmp = tmp_path(path);
    let result = atomic_write_inner(path, &tmp, bytes, policy);
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = std::ffi::OsString::from(".");
    name.push(path.file_name().unwrap_or_else(|| "artifact".as_ref()));
    name.push(".tmp");
    path.with_file_name(name)
}

fn atomic_write_inner(path: &Path, tmp: &Path, bytes: &[u8], policy: SyncPolicy) -> io::Result<()> {
    let mut file = retry_io(0x22, || {
        match fault_at(Site::Create) {
            Some(FaultKind::Eintr) => return Err(io::Error::from(io::ErrorKind::Interrupted)),
            Some(FaultKind::Enospc) => return Err(io::Error::from(io::ErrorKind::StorageFull)),
            _ => {}
        }
        OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(tmp)
    })?;
    write_all_chaos(&mut file, bytes, bytes.len() as u64 ^ 0xA70A)?;
    if policy != SyncPolicy::Never {
        chaos_sync(&file)?;
    }
    drop(file);
    retry_io(0x33, || {
        match fault_at(Site::Rename) {
            Some(FaultKind::Eintr) => return Err(io::Error::from(io::ErrorKind::Interrupted)),
            Some(FaultKind::Enospc) => return Err(io::Error::from(io::ErrorKind::StorageFull)),
            _ => {}
        }
        std::fs::rename(tmp, path)
    })?;
    // Make the rename itself durable. Best-effort: some filesystems
    // refuse to open directories for writing, and the data rename above
    // already succeeded.
    if policy != SyncPolicy::Never {
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

/// Advisory lock claiming an output directory for one campaign.
///
/// Created with `O_EXCL` so exactly one process wins; the file records
/// the owner pid. A lock whose pid no longer exists (per `/proc`) is
/// stale — left by a killed campaign — and is silently reclaimed.
/// Dropping the guard releases the lock.
#[derive(Debug)]
pub struct LockFile {
    path: PathBuf,
}

impl LockFile {
    /// The lock file name inside the governed directory.
    pub const NAME: &'static str = ".campaign.lock";

    /// Claim `dir` for this process, or fail with a descriptive error if
    /// a live campaign already holds it.
    pub fn acquire(dir: &Path) -> io::Result<Self> {
        Self::acquire_named(dir, Self::NAME)
    }

    /// Claim `dir` under a caller-chosen lock name. Shard campaigns use
    /// `.campaign.lock.K-of-N` so N shards sharing one output directory
    /// contend only with their own previous incarnation, never with
    /// siblings; stale-pid reclaim works per lock file.
    pub fn acquire_named(dir: &Path, name: &str) -> io::Result<Self> {
        let path = dir.join(name);
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    match holder_pid(&path) {
                        Some(pid) if pid_alive(pid) => {
                            return Err(io::Error::other(format!(
                                "output directory {} is locked by a running campaign \
                                 (pid {pid}, {name}); use a different --out or wait for it \
                                 to finish",
                                dir.display()
                            )));
                        }
                        _ => {
                            // Stale (dead pid or unreadable) — reclaim
                            // and retry the exclusive create once.
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::other(format!(
            "could not acquire campaign lock in {} (contended)",
            dir.display()
        )))
    }

    /// The lock file's path (diagnostics/tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn holder_pid(path: &Path) -> Option<u32> {
    std::fs::read_to_string(path).ok()?.trim().parse().ok()
}

#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    // No portable liveness check: assume the holder is alive and make
    // the user delete the lock by hand. Conservative but safe.
    true
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::serial;
    use crate::{install, report, FaultPlan};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lc-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn sync_policy_parses_and_labels() {
        for p in [
            SyncPolicy::Never,
            SyncPolicy::Checkpoint,
            SyncPolicy::Always,
        ] {
            assert_eq!(SyncPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(SyncPolicy::parse("sometimes"), None);
        assert_eq!(SyncPolicy::default(), SyncPolicy::Checkpoint);
    }

    #[test]
    fn durable_append_roundtrip_without_chaos() {
        let _serial = serial();
        let dir = tmp_dir("plain");
        let path = dir.join("records.jsonl");
        let mut f = DurableFile::create(&path, SyncPolicy::Always).unwrap();
        for i in 0..10 {
            f.append(format!("record {i}\n").as_bytes()).unwrap();
        }
        f.checkpoint().unwrap();
        let expect: String = (0..10).map(|i| format!("record {i}\n")).collect();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), expect);
        assert_eq!(f.len(), expect.len() as u64);
        assert!(!f.is_empty());

        // Resume from a prefix and append more.
        drop(f);
        let keep = "record 0\nrecord 1\n".len() as u64;
        let mut f = DurableFile::resume(&path, keep, SyncPolicy::Checkpoint).unwrap();
        f.append(b"record 9\n").unwrap();
        f.checkpoint().unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "record 0\nrecord 1\nrecord 9\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_are_absorbed_completely() {
        let _serial = serial();
        let dir = tmp_dir("transient");
        let path = dir.join("records.jsonl");
        let expect: String = (0..40).map(|i| format!("transient record {i}\n")).collect();
        let _guard = install(FaultPlan::transient_only(42));
        let mut f = DurableFile::create(&path, SyncPolicy::Never).unwrap();
        for i in 0..40 {
            f.append(format!("transient record {i}\n").as_bytes())
                .unwrap();
        }
        let r = report();
        assert!(
            r.eintr + r.short_writes > 0,
            "transient plan must actually fire: {r:?}"
        );
        assert_eq!(std::fs::read_to_string(&path).unwrap(), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Under the full default mix, every seed must uphold the writer
    /// invariant: the file is always a prefix of the intended records
    /// plus (after a crash) one torn tail, and a frozen writer refuses
    /// further appends. The seed range is wide enough that crash,
    /// fsync-failure, and clean-completion outcomes all occur.
    #[test]
    fn default_mix_keeps_torn_bytes_at_eof_only() {
        let _serial = serial();
        let dir = tmp_dir("mix");
        let records: Vec<String> = (0..25)
            .map(|i| format!("mixed record number {i}\n"))
            .collect();
        let full: String = records.concat();
        let (mut crashes, mut fsync_fails, mut clean) = (0, 0, 0);
        for seed in 0..120u64 {
            let path = dir.join(format!("seed-{seed}.jsonl"));
            let guard = install(FaultPlan::from_seed(seed));
            let mut f = DurableFile::create(&path, SyncPolicy::Always).unwrap();
            let mut good = String::new();
            let mut froze = false;
            for rec in &records {
                match f.append(rec.as_bytes()) {
                    Ok(()) => good.push_str(rec),
                    Err(e) => {
                        if is_crash(&e) {
                            crashes += 1;
                        } else {
                            fsync_fails += 1;
                        }
                        froze = f.is_failed();
                        break;
                    }
                }
            }
            if froze {
                let err = f.append(b"after failure\n").unwrap_err();
                assert!(err.to_string().contains("failed state"));
            } else {
                clean += 1;
                assert_eq!(good, full);
            }
            drop(guard);
            let on_disk = std::fs::read_to_string(&path).unwrap();
            assert!(
                on_disk.starts_with(&good),
                "seed {seed}: good records must be intact"
            );
            let tail = &on_disk[good.len()..];
            assert!(
                tail.is_empty() || !on_disk[..good.len()].is_empty() || froze,
                "seed {seed}: unexpected tail state"
            );
            if !froze {
                assert_eq!(
                    tail, "",
                    "seed {seed}: non-failed writer leaves no torn tail"
                );
            } else if !tail.is_empty() {
                // The torn tail is a strict prefix of some record — the
                // single-buffer append means it can never contain a
                // complete record followed by garbage.
                assert!(
                    records.iter().any(|r| r.starts_with(tail)),
                    "seed {seed}: torn tail {tail:?} is not a record prefix"
                );
            }
        }
        assert!(crashes > 0, "seed range must include torn crashes");
        assert!(fsync_fails > 0, "seed range must include fsync failures");
        assert!(clean > 0, "seed range must include clean completions");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_is_old_or_new_under_chaos() {
        let _serial = serial();
        let dir = tmp_dir("atomic");
        let path = dir.join("artifact.json");
        let old = b"{\"version\": \"old\"}\n";
        let new = b"{\"version\": \"new\", \"longer\": true}\n";
        let (mut succeeded, mut failed) = (0, 0);
        for seed in 0..120u64 {
            atomic_write(&path, old, SyncPolicy::Never).unwrap();
            let guard = install(FaultPlan::from_seed(seed));
            let r = atomic_write(&path, new, SyncPolicy::Checkpoint);
            drop(guard);
            let got = std::fs::read(&path).unwrap();
            match r {
                Ok(()) => {
                    succeeded += 1;
                    assert_eq!(got, new, "seed {seed}: success must publish new bytes");
                }
                Err(_) => {
                    failed += 1;
                    assert_eq!(got, old, "seed {seed}: failure must leave old bytes");
                    assert!(
                        !tmp_path(&path).exists(),
                        "seed {seed}: temp file must be cleaned up"
                    );
                }
            }
        }
        assert!(succeeded > 0 && failed > 0, "{succeeded} ok / {failed} err");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_file_excludes_and_releases() {
        let dir = tmp_dir("lock");
        let lock = LockFile::acquire(&dir).unwrap();
        let err = LockFile::acquire(&dir).unwrap_err();
        assert!(err.to_string().contains("locked by a running campaign"));
        drop(lock);
        let relock = LockFile::acquire(&dir).unwrap();
        drop(relock);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_reclaimed() {
        let dir = tmp_dir("stale");
        // A pid that cannot exist (beyond PID_MAX_LIMIT) and a garbage
        // lock both count as stale.
        std::fs::write(dir.join(LockFile::NAME), "4194304999\n").unwrap();
        let lock = LockFile::acquire(&dir);
        #[cfg(target_os = "linux")]
        {
            let lock = lock.unwrap();
            drop(lock);
            std::fs::write(dir.join(LockFile::NAME), "not a pid\n").unwrap();
            let lock2 = LockFile::acquire(&dir).unwrap();
            drop(lock2);
        }
        #[cfg(not(target_os = "linux"))]
        let _ = lock;
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The exact retry schedules for the tags this module actually uses,
    /// pinned to literal microsecond values: any change to the mixer, the
    /// base, or the tag handling shows up as a diff here, which is the
    /// property that keeps chaos-soak timing byte-reproducible per seed.
    #[test]
    fn backoff_schedules_are_pinned_per_tag() {
        let schedule = |tag: u64| -> Vec<u64> { (0..4).map(|a| backoff_us(tag, a)).collect() };
        assert_eq!(schedule(0x11), vec![248, 493, 965, 1610]);
        assert_eq!(schedule(0x22), vec![322, 573, 961, 1747]);
        assert_eq!(schedule(0x33), vec![275, 417, 956, 1671]);
        assert_eq!(schedule(9), vec![326, 413, 811, 1793]);
    }

    #[test]
    fn backoff_is_deterministic_and_tag_independent() {
        for tag in 0..64u64 {
            for attempt in 0..MAX_ATTEMPTS {
                assert_eq!(backoff_us(tag, attempt), backoff_us(tag, attempt));
                let step = BACKOFF_BASE_US << attempt;
                let b = backoff_us(tag, attempt);
                assert!(
                    (step..step + BACKOFF_BASE_US).contains(&b),
                    "jitter bounded by base: {b} for step {step}"
                );
            }
        }
        // The old `tag ^ attempt` fold collided: these pairs drew the
        // same jitter. The mixed form must keep them distinct.
        assert_ne!(
            backoff_us(8, 9) - (BACKOFF_BASE_US << 9),
            backoff_us(9, 8) - (BACKOFF_BASE_US << 8),
            "cross-site schedules must not be correlated"
        );
    }

    /// The generous EINTR bound: interrupts retry immediately (without
    /// consuming the backoff budget) up to [`MAX_EINTR`], after which
    /// further interrupts fall through to the bounded-backoff path.
    #[test]
    fn eintr_bound_is_generous_and_separate_from_backoff_budget() {
        // A storm of MAX_EINTR-2 interrupts is absorbed silently with no
        // backoff attempts consumed.
        let mut remaining = MAX_EINTR - 2;
        let mut calls = 0u32;
        let v = retry_io(9, || {
            calls += 1;
            if remaining > 0 {
                remaining -= 1;
                Err(io::Error::from(io::ErrorKind::Interrupted))
            } else {
                Ok(5u8)
            }
        })
        .unwrap();
        assert_eq!(v, 5);
        assert_eq!(calls, MAX_EINTR - 1, "storm + final success");

        // An unbounded interrupt storm terminates: MAX_EINTR-1 immediate
        // retries, then the backoff path's MAX_ATTEMPTS, then the error
        // surfaces instead of spinning forever.
        let mut calls = 0u32;
        let e = retry_io(9, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::from(io::ErrorKind::Interrupted))
        })
        .unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        assert_eq!(calls, (MAX_EINTR - 1) + MAX_ATTEMPTS);
    }

    #[test]
    fn retry_absorbs_bounded_transients() {
        let mut remaining = 3;
        let v = retry_io(9, || {
            if remaining > 0 {
                remaining -= 1;
                Err(io::Error::from(io::ErrorKind::Interrupted))
            } else {
                Ok(77)
            }
        })
        .unwrap();
        assert_eq!(v, 77);

        let mut calls = 0;
        let e = retry_io(9, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::from(io::ErrorKind::StorageFull))
        })
        .unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        assert_eq!(calls, MAX_ATTEMPTS, "retries are bounded");

        let mut calls = 0;
        let e = retry_io(9, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::other("hard"))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "non-transient errors do not retry");
        assert_eq!(e.to_string(), "hard");
    }
}
