//! Deterministic fault injection for the campaign runtime's durable-state
//! paths, plus the hardened I/O layer ([`fs`]) built to survive it.
//!
//! # Why a chaos layer
//!
//! A full characterization sweep is a multi-hour batch job. Its failure
//! handling (checkpoint/resume, torn-tail recovery, quarantine) is only
//! trustworthy if the failure paths are *exercised*, and real disks do not
//! fail on demand. This crate makes them fail on demand, deterministically:
//! a [`FaultPlan`] is a pure function of a seed (splitmix64, the same
//! idiom as the campaign's run-jitter model and the PR 4 model checks)
//! that decides, for every instrumented I/O call index, whether to inject
//! a fault and which one:
//!
//! * `EINTR` — the call fails with [`std::io::ErrorKind::Interrupted`];
//!   a correct caller retries immediately.
//! * **Short write** — only a prefix of the buffer is accepted (`Ok(n)`
//!   with `n < len`); a correct caller continues with the remainder.
//! * `ENOSPC` — [`std::io::ErrorKind::StorageFull`]; a correct caller
//!   retries with bounded backoff (space may be freed) and eventually
//!   gives up cleanly.
//! * **Torn crash** — a prefix of the buffer reaches the file and then
//!   the call dies, simulating a process kill mid-`write`: the torn
//!   bytes stay on disk. Recovery happens at *resume* time, not in the
//!   writer.
//! * **Fsync failure** — `sync_data` fails. Never retried: after a
//!   failed fsync the kernel may have dropped the dirty pages, so the
//!   only safe response is to treat the file state as unknown.
//! * **Allocation denial** — a cache admission is refused, forcing the
//!   prefix cache to shed instead of grow.
//! * **Worker stall** — a pool worker sleeps briefly mid-claim,
//!   perturbing completion order the way an oversubscribed host would.
//!
//! Injection is process-global and off by default; the disabled cost on
//! every instrumented path is a single relaxed atomic load (the same
//! contract as `lc-telemetry`). Tests [`install`] a plan for a scoped
//! region and the guard restores the real world on drop.
//!
//! The injected-fault *site indices* are claimed from a global atomic
//! counter, so which operation a fault lands on depends on thread
//! interleaving — the plan is deterministic per seed, the schedule is
//! not. That is exactly the property the chaos soak suite wants: the
//! recovery invariant ("complete, or resume to a bitwise-identical
//! result") must hold for *every* schedule, not one blessed ordering.

#![forbid(unsafe_code)]

pub mod fs;
pub mod net;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// splitmix64: cheap, well-mixed deterministic hash. Identical to the
/// campaign's run-jitter mixer; duplicated here so the fault layer stays
/// dependency-free.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// The faults a plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with `ErrorKind::Interrupted` before touching the file.
    Eintr,
    /// Accept only a prefix of the buffer (`Ok(n)`, `n < len`).
    ShortWrite,
    /// Fail with `ErrorKind::StorageFull` before touching the file.
    Enospc,
    /// Write a prefix of the buffer, then die — the torn bytes persist.
    TornCrash,
    /// `sync_data` fails.
    FsyncFail,
    /// Refuse a cache admission.
    AllocDeny,
    /// Sleep briefly (worker-schedule perturbation).
    Stall,
    /// Kill the process (SIGKILL) at a work-unit boundary. The chaos
    /// layer only *schedules* the kill ([`kill_requested`]); the caller
    /// performs it (`lc_parallel::raise_sigkill`), because this crate
    /// forbids `unsafe` and a raw signal raise needs one.
    Kill,
}

/// Instrumented call sites. Each site draws independently from the plan,
/// so (for example) a high write-fault rate does not starve sync faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// File creation (journal create, temp files for atomic writes).
    Create,
    /// A `write` syscall on a durable file.
    Write,
    /// `sync_data` on a durable file.
    Sync,
    /// The rename that publishes an atomic whole-file write.
    Rename,
    /// A prefix-cache admission decision.
    Alloc,
    /// A pool worker claiming its next task.
    Worker,
    /// A `read` on a live socket (`lc-serve` request path).
    NetRead,
    /// A `write` on a live socket (`lc-serve` response path).
    NetWrite,
    /// A campaign work-unit boundary (the unit just finished and its
    /// journal record was appended). The one fault this site carries is
    /// [`FaultKind::Kill`] — a seeded SIGKILL, the process-level
    /// analogue of [`FaultKind::TornCrash`], used to soak the shard
    /// supervisor the same way torn writes soak the journal layer.
    UnitBoundary,
}

impl Site {
    fn salt(self) -> u64 {
        match self {
            Site::Create => 0xC0DE_0001,
            Site::Write => 0xC0DE_0002,
            Site::Sync => 0xC0DE_0003,
            Site::Rename => 0xC0DE_0004,
            Site::Alloc => 0xC0DE_0005,
            Site::Worker => 0xC0DE_0006,
            Site::NetRead => 0xC0DE_0007,
            Site::NetWrite => 0xC0DE_0008,
            Site::UnitBoundary => 0xC0DE_0009,
        }
    }
}

/// A seed-deterministic fault plan: `decide(site, op)` is a pure
/// function, so the same seed always produces the same fault sequence
/// for the same sequence of operation indices.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
    /// Per-site injection rates in permille (‰ of operations faulted).
    write_permille: u64,
    sync_permille: u64,
    create_permille: u64,
    rename_permille: u64,
    alloc_permille: u64,
    worker_permille: u64,
    net_read_permille: u64,
    net_write_permille: u64,
    unit_permille: u64,
}

impl FaultPlan {
    /// The soak-suite default mix: frequent-but-absorbable transients
    /// (EINTR, short writes, retried ENOSPC) plus enough hard faults
    /// (torn crashes, fsync failures) that a meaningful fraction of
    /// seeded campaigns actually crash and must prove resume converges.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            write_permille: 180,
            sync_permille: 100,
            create_permille: 30,
            rename_permille: 30,
            alloc_permille: 120,
            worker_permille: 20,
            net_read_permille: 0,
            net_write_permille: 0,
            unit_permille: 0,
        }
    }

    /// The serving-soak mix: faults land on the live socket paths
    /// (interrupted and short reads/writes, dropped connections), cache
    /// admissions, and worker schedules, while the durable-file sites
    /// stay clean so drain-time telemetry flushes are not the thing
    /// under test. Every fault here is one a correct server absorbs
    /// into exactly one of {response, structured error, shed} — never
    /// a silent drop.
    pub fn serve(seed: u64) -> Self {
        Self {
            seed,
            write_permille: 0,
            sync_permille: 0,
            create_permille: 0,
            rename_permille: 0,
            alloc_permille: 60,
            worker_permille: 25,
            net_read_permille: 70,
            net_write_permille: 70,
            unit_permille: 0,
        }
    }

    /// A transients-only plan: every injected fault is absorbable by a
    /// correct retry loop (no torn crashes, no fsync failures), so a
    /// hardened writer must complete *successfully* under it.
    pub fn transient_only(seed: u64) -> Self {
        Self {
            seed,
            write_permille: 1000, // every write op draws; hard kinds remapped below
            sync_permille: 0,
            create_permille: 0,
            rename_permille: 0,
            alloc_permille: 0,
            worker_permille: 0,
            net_read_permille: 0,
            net_write_permille: 0,
            unit_permille: 0,
        }
    }

    /// The supervisor-soak mix: a seeded SIGKILL at ~15% of work-unit
    /// boundaries and nothing else. The I/O sites stay clean because
    /// the fault under test is process death itself — every kill lands
    /// *after* a completed unit's journal append, so a correct
    /// supervisor + resume pair must converge with no lost or
    /// duplicated units.
    pub fn kill(seed: u64) -> Self {
        Self {
            seed,
            write_permille: 0,
            sync_permille: 0,
            create_permille: 0,
            rename_permille: 0,
            alloc_permille: 0,
            worker_permille: 0,
            net_read_permille: 0,
            net_write_permille: 0,
            unit_permille: 150,
        }
    }

    fn is_transient_only(&self) -> bool {
        self.write_permille == 1000
    }

    /// The plan's seed (diagnostics).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide the fault (if any) for operation number `op` at `site`.
    /// Pure: no global state involved.
    pub fn decide(&self, site: Site, op: u64) -> Option<FaultKind> {
        let rate = match site {
            Site::Create => self.create_permille,
            Site::Write => self.write_permille,
            Site::Sync => self.sync_permille,
            Site::Rename => self.rename_permille,
            Site::Alloc => self.alloc_permille,
            Site::Worker => self.worker_permille,
            Site::NetRead => self.net_read_permille,
            Site::NetWrite => self.net_write_permille,
            Site::UnitBoundary => self.unit_permille,
        };
        if rate == 0 {
            return None;
        }
        let h = splitmix64(self.seed ^ site.salt() ^ op.wrapping_mul(0xA24BAED4963EE407));
        if h % 1000 >= rate {
            return None;
        }
        let pick = (h >> 32) % 100;
        Some(match site {
            Site::Write => {
                if self.is_transient_only() {
                    // Only kinds a correct writer absorbs without error.
                    if pick < 50 {
                        FaultKind::Eintr
                    } else {
                        FaultKind::ShortWrite
                    }
                } else if pick < 35 {
                    FaultKind::Eintr
                } else if pick < 60 {
                    FaultKind::ShortWrite
                } else if pick < 80 {
                    FaultKind::Enospc
                } else {
                    FaultKind::TornCrash
                }
            }
            Site::Sync => FaultKind::FsyncFail,
            Site::Create | Site::Rename => {
                if pick < 60 {
                    FaultKind::Enospc
                } else {
                    FaultKind::Eintr
                }
            }
            Site::Alloc => FaultKind::AllocDeny,
            Site::Worker => FaultKind::Stall,
            // Socket faults: EINTR retries immediately, a short write
            // continues with the remainder, and TornCrash stands in for
            // "peer reset / connection dropped mid-transfer" — the server
            // must still account the request (error or shed), never lose it.
            Site::NetRead => {
                if pick < 60 {
                    FaultKind::Eintr
                } else {
                    FaultKind::TornCrash
                }
            }
            Site::NetWrite => {
                if pick < 40 {
                    FaultKind::Eintr
                } else if pick < 75 {
                    FaultKind::ShortWrite
                } else {
                    FaultKind::TornCrash
                }
            }
            Site::UnitBoundary => FaultKind::Kill,
        })
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static OP_COUNTER: AtomicU64 = AtomicU64::new(0);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Per-kind injection totals since the last [`install`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Instrumented operations consulted while a plan was active.
    pub consults: u64,
    /// `ErrorKind::Interrupted` injections.
    pub eintr: u64,
    /// Short-write injections.
    pub short_writes: u64,
    /// `ErrorKind::StorageFull` injections.
    pub enospc: u64,
    /// Torn-crash injections (partial bytes persisted, then death).
    pub torn_crashes: u64,
    /// Failed `sync_data` injections.
    pub fsync_failures: u64,
    /// Refused cache admissions.
    pub alloc_denials: u64,
    /// Worker stalls.
    pub stalls: u64,
    /// Scheduled process kills (unit-boundary SIGKILLs).
    pub kills: u64,
}

impl InjectionReport {
    /// Total faults injected, all kinds.
    pub fn total(&self) -> u64 {
        self.eintr
            + self.short_writes
            + self.enospc
            + self.torn_crashes
            + self.fsync_failures
            + self.alloc_denials
            + self.stalls
            + self.kills
    }
}

static CONSULTS: AtomicU64 = AtomicU64::new(0);
static N_EINTR: AtomicU64 = AtomicU64::new(0);
static N_SHORT: AtomicU64 = AtomicU64::new(0);
static N_ENOSPC: AtomicU64 = AtomicU64::new(0);
static N_TORN: AtomicU64 = AtomicU64::new(0);
static N_FSYNC: AtomicU64 = AtomicU64::new(0);
static N_ALLOC: AtomicU64 = AtomicU64::new(0);
static N_STALL: AtomicU64 = AtomicU64::new(0);
static N_KILL: AtomicU64 = AtomicU64::new(0);

fn count(kind: FaultKind) {
    let c = match kind {
        FaultKind::Eintr => &N_EINTR,
        FaultKind::ShortWrite => &N_SHORT,
        FaultKind::Enospc => &N_ENOSPC,
        FaultKind::TornCrash => &N_TORN,
        FaultKind::FsyncFail => &N_FSYNC,
        FaultKind::AllocDeny => &N_ALLOC,
        FaultKind::Stall => &N_STALL,
        FaultKind::Kill => &N_KILL,
    };
    c.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot the injection totals since the last [`install`].
pub fn report() -> InjectionReport {
    InjectionReport {
        consults: CONSULTS.load(Ordering::Relaxed),
        eintr: N_EINTR.load(Ordering::Relaxed),
        short_writes: N_SHORT.load(Ordering::Relaxed),
        enospc: N_ENOSPC.load(Ordering::Relaxed),
        torn_crashes: N_TORN.load(Ordering::Relaxed),
        fsync_failures: N_FSYNC.load(Ordering::Relaxed),
        alloc_denials: N_ALLOC.load(Ordering::Relaxed),
        stalls: N_STALL.load(Ordering::Relaxed),
        kills: N_KILL.load(Ordering::Relaxed),
    }
}

fn reset_counters() {
    for c in [
        &CONSULTS, &N_EINTR, &N_SHORT, &N_ENOSPC, &N_TORN, &N_FSYNC, &N_ALLOC, &N_STALL, &N_KILL,
    ] {
        c.store(0, Ordering::Relaxed);
    }
    OP_COUNTER.store(0, Ordering::Relaxed);
}

/// RAII scope for an installed plan: dropping it deactivates injection.
#[must_use = "dropping the guard immediately uninstalls the plan"]
pub struct ChaosGuard {
    _priv: (),
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        *lock_plan() = None;
    }
}

fn lock_plan() -> std::sync::MutexGuard<'static, Option<FaultPlan>> {
    // A panic while holding this mutex cannot corrupt the Option; recover
    // the guard instead of poisoning every later chaos test.
    PLAN.lock().unwrap_or_else(|p| p.into_inner())
}

/// Install `plan` process-wide and reset the injection counters. Faults
/// are injected on every instrumented path of every thread until the
/// returned guard drops. Installing is last-writer-wins; callers running
/// concurrent chaos scopes must serialize themselves (the soak suite
/// runs its seeds sequentially in one test).
pub fn install(plan: FaultPlan) -> ChaosGuard {
    reset_counters();
    *lock_plan() = Some(plan);
    ACTIVE.store(true, Ordering::SeqCst);
    ChaosGuard { _priv: () }
}

/// Whether a plan is currently installed (one relaxed load).
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Consult the installed plan for the next operation at `site`.
/// Returns `None` (at the cost of one relaxed load) when no plan is
/// installed.
pub fn fault_at(site: Site) -> Option<FaultKind> {
    if !active() {
        return None;
    }
    let plan = (*lock_plan())?;
    let op = OP_COUNTER.fetch_add(1, Ordering::Relaxed);
    CONSULTS.fetch_add(1, Ordering::Relaxed);
    let fault = plan.decide(site, op);
    if let Some(kind) = fault {
        count(kind);
    }
    fault
}

/// Cache-admission gate: `false` means the chaos plan denies this
/// allocation and the caller must shed instead of grow. Always `true`
/// with no plan installed.
pub fn alloc_allowed(_bytes: u64) -> bool {
    !matches!(fault_at(Site::Alloc), Some(FaultKind::AllocDeny))
}

/// Process-kill gate, consulted by the campaign executor at each
/// work-unit boundary (after the unit's journal append). `true` means
/// the installed plan schedules a SIGKILL here; the caller must then
/// actually die (`lc_parallel::raise_sigkill`) — everything journaled
/// so far survives, everything else is the supervisor's problem.
/// Always `false` with no plan installed (one relaxed load).
pub fn kill_requested() -> bool {
    matches!(fault_at(Site::UnitBoundary), Some(FaultKind::Kill))
}

/// Worker-schedule perturbation point: sleeps ~1 ms when the plan says
/// so, otherwise costs one relaxed load.
pub fn maybe_stall() {
    if matches!(fault_at(Site::Worker), Some(FaultKind::Stall)) {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Marker payload for injected torn-crash errors, so recovery code can
/// distinguish "the process (simulatedly) died mid-write" — where no
/// in-process repair is possible and torn bytes persist — from ordinary
/// write errors, where the writer truncates back to the last good
/// record.
#[derive(Debug)]
struct CrashMarker;

impl std::fmt::Display for CrashMarker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos: simulated crash mid-write")
    }
}

impl std::error::Error for CrashMarker {}

/// Build the error a torn-crash injection surfaces as.
pub fn crash_error() -> std::io::Error {
    std::io::Error::other(CrashMarker)
}

/// Whether `e` is an injected torn-crash (see [`crash_error`]).
pub fn is_crash(e: &std::io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<CrashMarker>())
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::Mutex;

    /// Chaos installation is process-global while `cargo test` runs this
    /// crate's unit tests concurrently; every test that installs a plan
    /// (or asserts fault-free file behavior) holds this lock.
    pub static CHAOS_TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn serial() -> std::sync::MutexGuard<'static, ()> {
        CHAOS_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let a = FaultPlan::from_seed(7);
        let b = FaultPlan::from_seed(7);
        let c = FaultPlan::from_seed(8);
        let seq = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..512).map(|op| p.decide(Site::Write, op)).collect()
        };
        assert_eq!(seq(&a), seq(&b), "same seed, same plan");
        assert_ne!(seq(&a), seq(&c), "different seeds diverge");
    }

    #[test]
    fn default_mix_injects_every_write_kind() {
        let p = FaultPlan::from_seed(3);
        let mut kinds = std::collections::BTreeSet::new();
        for op in 0..20_000 {
            if let Some(k) = p.decide(Site::Write, op) {
                kinds.insert(format!("{k:?}"));
            }
        }
        for want in ["Eintr", "ShortWrite", "Enospc", "TornCrash"] {
            assert!(kinds.contains(want), "missing {want} in {kinds:?}");
        }
    }

    #[test]
    fn transient_only_plans_never_inject_hard_faults() {
        let p = FaultPlan::transient_only(11);
        for op in 0..20_000 {
            for site in [
                Site::Create,
                Site::Write,
                Site::Sync,
                Site::Rename,
                Site::Alloc,
                Site::Worker,
                Site::NetRead,
                Site::NetWrite,
                Site::UnitBoundary,
            ] {
                match p.decide(site, op) {
                    None | Some(FaultKind::Eintr) | Some(FaultKind::ShortWrite) => {}
                    Some(hard) => panic!("transient-only plan injected {hard:?} at {site:?}"),
                }
            }
        }
    }

    #[test]
    fn serve_plan_faults_sockets_not_durable_files() {
        let p = FaultPlan::serve(29);
        let mut net_kinds = std::collections::BTreeSet::new();
        for op in 0..20_000 {
            for site in [Site::Create, Site::Write, Site::Sync, Site::Rename] {
                assert_eq!(
                    p.decide(site, op),
                    None,
                    "serve plan must leave durable-file site {site:?} clean"
                );
            }
            for site in [Site::NetRead, Site::NetWrite] {
                if let Some(k) = p.decide(site, op) {
                    net_kinds.insert(format!("{k:?}"));
                    assert!(
                        matches!(
                            k,
                            FaultKind::Eintr | FaultKind::ShortWrite | FaultKind::TornCrash
                        ),
                        "unexpected socket fault {k:?}"
                    );
                }
            }
        }
        for want in ["Eintr", "ShortWrite", "TornCrash"] {
            assert!(net_kinds.contains(want), "missing {want} in {net_kinds:?}");
        }
    }

    #[test]
    fn inactive_layer_injects_nothing() {
        let _serial = test_support::serial();
        assert!(!active());
        for _ in 0..100 {
            assert_eq!(fault_at(Site::Write), None);
            assert!(alloc_allowed(1 << 20));
        }
    }

    #[test]
    fn install_scopes_injection_and_counts() {
        let _serial = test_support::serial();
        {
            let _guard = install(FaultPlan::from_seed(1));
            assert!(active());
            let mut injected = 0;
            for _ in 0..5_000 {
                if fault_at(Site::Write).is_some() {
                    injected += 1;
                }
            }
            assert!(injected > 0, "the default mix must fire at ~18%");
            let r = report();
            assert_eq!(r.consults, 5_000);
            assert_eq!(r.total(), injected);
        }
        assert!(!active(), "guard drop uninstalls");
        assert_eq!(fault_at(Site::Write), None);
    }

    #[test]
    fn crash_errors_are_recognizable() {
        let e = crash_error();
        assert!(is_crash(&e));
        assert!(!is_crash(&std::io::Error::other("ordinary")));
        assert!(!is_crash(&std::io::Error::from(
            std::io::ErrorKind::StorageFull
        )));
    }
}
