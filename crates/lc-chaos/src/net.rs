//! Chaos-instrumented socket I/O: the live-traffic counterpart of [`crate::fs`].
//!
//! `lc-serve` routes every socket read and write through these wrappers so
//! a [`crate::FaultPlan::serve`] soak can perturb the request path the way
//! a hostile network would:
//!
//! * `EINTR` — absorbed by the same immediate-retry discipline as file
//!   I/O ([`crate::fs::retry_io`]);
//! * **short write** — only a prefix is accepted; the caller continues
//!   with the remainder;
//! * **torn crash** — reinterpreted for sockets as *connection reset*:
//!   for a write, a real prefix reaches the peer first (a torn response
//!   the client must detect by framing), then the call fails with
//!   `ErrorKind::ConnectionReset`. This is terminal for the connection,
//!   not retryable — the server must still account the request as a
//!   structured error, never lose it.
//!
//! The wrappers are generic over `Read`/`Write` so unit tests exercise
//! them on in-memory cursors with the identical fault schedule a live
//! `TcpStream` would see.

use std::io::{self, Read, Write};

use crate::fs::retry_io;
use crate::{fault_at, FaultKind, Site};

/// One `read` with chaos consulted first. A torn-crash draw surfaces as
/// `ConnectionReset` *before* consuming bytes (the peer vanished).
pub fn chaos_read(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    match fault_at(Site::NetRead) {
        Some(FaultKind::Eintr) => Err(io::Error::from(io::ErrorKind::Interrupted)),
        Some(FaultKind::TornCrash) => Err(io::Error::from(io::ErrorKind::ConnectionReset)),
        _ => r.read(buf),
    }
}

/// One `write` with chaos consulted first. Short writes accept a real
/// prefix; a torn crash puts a prefix on the wire and then resets.
pub fn chaos_write(w: &mut impl Write, buf: &[u8]) -> io::Result<usize> {
    match fault_at(Site::NetWrite) {
        Some(FaultKind::Eintr) => Err(io::Error::from(io::ErrorKind::Interrupted)),
        Some(FaultKind::ShortWrite) => {
            let n = (buf.len() / 2).max(1);
            w.write(&buf[..n])
        }
        Some(FaultKind::TornCrash) => {
            let n = (buf.len() / 2).max(1);
            w.write_all(&buf[..n])?;
            Err(io::Error::from(io::ErrorKind::ConnectionReset))
        }
        _ => w.write(buf),
    }
}

/// Fill `buf` completely, absorbing interrupts and short reads. EOF
/// before the buffer fills is `UnexpectedEof` (a peer that hung up
/// mid-frame); connection resets propagate as-is.
pub fn read_full(r: &mut impl Read, buf: &mut [u8], tag: u64) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match retry_io(tag, || chaos_read(r, &mut buf[filled..])) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::UnexpectedEof)),
            Ok(n) => filled += n,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Write all of `buf`, absorbing interrupts and short writes. Resets and
/// other hard errors propagate; the caller decides what a torn response
/// means for its accounting.
pub fn write_all(w: &mut impl Write, mut buf: &[u8], tag: u64) -> io::Result<()> {
    while !buf.is_empty() {
        match retry_io(tag, || chaos_write(w, buf)) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
            Ok(n) => buf = &buf[n..],
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::serial;
    use crate::{install, report, FaultPlan};
    use std::io::Cursor;

    #[test]
    fn clean_world_passes_bytes_through() {
        let _serial = serial();
        let payload = b"frame: the quick brown fox".to_vec();
        let mut src = Cursor::new(payload.clone());
        let mut buf = vec![0u8; payload.len()];
        read_full(&mut src, &mut buf, 1).unwrap();
        assert_eq!(buf, payload);

        let mut dst = Cursor::new(Vec::new());
        write_all(&mut dst, &payload, 2).unwrap();
        assert_eq!(dst.into_inner(), payload);
    }

    #[test]
    fn eof_mid_frame_is_unexpected_eof() {
        let _serial = serial();
        let mut src = Cursor::new(vec![1u8, 2, 3]);
        let mut buf = [0u8; 8];
        let e = read_full(&mut src, &mut buf, 3).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// Under the serve plan, every transfer either completes with the
    /// exact bytes or fails with a reset — and on a torn write the
    /// on-wire bytes are a strict prefix of the intended frame.
    #[test]
    fn serve_plan_transfers_complete_or_reset() {
        let _serial = serial();
        let payload: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        let (mut complete, mut reset) = (0, 0);
        for seed in 0..80u64 {
            let guard = install(FaultPlan::serve(seed));
            let mut dst = Cursor::new(Vec::new());
            let r = write_all(&mut dst, &payload, seed);
            let wire = dst.into_inner();
            match r {
                Ok(()) => {
                    complete += 1;
                    assert_eq!(wire, payload, "seed {seed}: complete must be exact");
                }
                Err(e) => {
                    reset += 1;
                    assert_eq!(e.kind(), io::ErrorKind::ConnectionReset, "seed {seed}");
                    assert!(
                        payload.starts_with(&wire),
                        "seed {seed}: torn wire bytes must be a payload prefix"
                    );
                    assert!(wire.len() < payload.len(), "seed {seed}");
                }
            }
            let rep = report();
            drop(guard);
            assert!(rep.consults > 0, "seed {seed}: plan must be consulted");
        }
        assert!(complete > 0 && reset > 0, "{complete} ok / {reset} reset");
    }

    #[test]
    fn serve_plan_reads_absorb_transients_or_reset() {
        let _serial = serial();
        let payload: Vec<u8> = (0..1024u32).map(|i| (i % 241) as u8).collect();
        let (mut complete, mut reset) = (0, 0);
        for seed in 0..80u64 {
            let guard = install(FaultPlan::serve(seed));
            let mut src = Cursor::new(payload.clone());
            let mut buf = vec![0u8; payload.len()];
            match read_full(&mut src, &mut buf, seed) {
                Ok(()) => {
                    complete += 1;
                    assert_eq!(buf, payload, "seed {seed}");
                }
                Err(e) => {
                    reset += 1;
                    assert_eq!(e.kind(), io::ErrorKind::ConnectionReset, "seed {seed}");
                }
            }
            drop(guard);
        }
        assert!(complete > 0 && reset > 0, "{complete} ok / {reset} reset");
    }
}
