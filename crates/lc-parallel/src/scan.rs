//! Single-pass decoupled look-back prefix scan (Merrill & Garland).
//!
//! The LC encoder must place each compressed chunk at the cumulative offset
//! of all prior chunks' compressed sizes. On the GPU this is done with the
//! decoupled look-back technique: every thread block publishes its local
//! aggregate, then walks backwards over its predecessors' published state —
//! summing aggregates until it reaches a block that already knows its
//! inclusive prefix — and finally publishes its own inclusive prefix.
//!
//! This module implements the same protocol with CPU atomics. It is used by
//! `lc-core`'s parallel encoder, making the "framework-level operation" the
//! paper identifies as the locus of the Clang/NVCC performance split a real
//! piece of executed code in this reproduction.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Entry has published nothing yet.
pub const SCAN_STATUS_INVALID: u8 = 0;
/// Entry has published its local aggregate.
pub const SCAN_STATUS_AGGREGATE: u8 = 1;
/// Entry has published its inclusive prefix.
pub const SCAN_STATUS_PREFIX: u8 = 2;

/// A single-use decoupled look-back scan over `n` participants.
///
/// Each participant `i` calls [`LookbackScan::publish`] exactly once with
/// its local value and receives the *exclusive* prefix sum of all
/// participants `0..i`. Participants may call `publish` in any order from
/// any thread, provided that whenever participant `i` is running, every
/// participant `j < i` has been claimed by some thread that will eventually
/// call `publish(j, ..)` (the in-order claiming of [`crate::Pool`]
/// guarantees this).
pub struct LookbackScan {
    status: Vec<AtomicU8>,
    aggregate: Vec<AtomicU64>,
    prefix: Vec<AtomicU64>,
}

impl LookbackScan {
    /// Create a scan over `n` participants, all in the invalid state.
    pub fn new(n: usize) -> Self {
        Self {
            status: (0..n).map(|_| AtomicU8::new(SCAN_STATUS_INVALID)).collect(),
            aggregate: (0..n).map(|_| AtomicU64::new(0)).collect(),
            prefix: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.status.len()
    }

    /// Whether the scan has zero participants.
    pub fn is_empty(&self) -> bool {
        self.status.is_empty()
    }

    /// Publish participant `i`'s local `value`; returns the exclusive prefix
    /// (sum of values of participants `0..i`).
    ///
    /// Spins (with exponential backoff to `yield_now`) while a predecessor
    /// has published neither aggregate nor prefix.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` or if `i` publishes twice.
    pub fn publish(&self, i: usize, value: u64) -> u64 {
        assert!(
            self.status[i].load(Ordering::Relaxed) == SCAN_STATUS_INVALID,
            "participant {i} published twice"
        );
        // Publish the aggregate so later participants can make progress
        // past us while we look back.
        self.aggregate[i].store(value, Ordering::Relaxed);
        self.status[i].store(SCAN_STATUS_AGGREGATE, Ordering::Release);

        let exclusive = if i == 0 {
            0
        } else {
            let mut running: u64 = 0;
            let mut j = i - 1;
            loop {
                let mut spins = 0u32;
                let st = loop {
                    let st = self.status[j].load(Ordering::Acquire);
                    if st != SCAN_STATUS_INVALID {
                        break st;
                    }
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                };
                if st == SCAN_STATUS_PREFIX {
                    // Acquire on the status load above orders this read
                    // after the predecessor's prefix store.
                    running = running.wrapping_add(self.prefix[j].load(Ordering::Relaxed));
                    break;
                }
                running = running.wrapping_add(self.aggregate[j].load(Ordering::Relaxed));
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            running
        };

        self.prefix[i].store(exclusive.wrapping_add(value), Ordering::Relaxed);
        self.status[i].store(SCAN_STATUS_PREFIX, Ordering::Release);
        exclusive
    }

    /// Total of all published values. Only meaningful after every
    /// participant has published.
    pub fn total(&self) -> u64 {
        match self.status.last() {
            None => 0,
            Some(st) => {
                assert!(
                    st.load(Ordering::Acquire) == SCAN_STATUS_PREFIX,
                    "total() requires all participants to have published"
                );
                self.prefix[self.len() - 1].load(Ordering::Relaxed)
            }
        }
    }
}

/// Convenience: exclusive prefix sums of `values`, computed with the
/// decoupled look-back protocol over `pool`. Returns `(prefixes, total)`.
pub fn parallel_exclusive_scan(pool: &crate::Pool, values: &[u64]) -> (Vec<u64>, u64) {
    let scan = LookbackScan::new(values.len());
    let mut out = vec![0u64; values.len()];
    {
        let slots = crate::DisjointSlice::new(&mut out);
        pool.run(values.len(), |i| {
            let excl = scan.publish(i, values[i]);
            // SAFETY: pool.run claims each index exactly once.
            unsafe { *slots.get_mut(i) = excl };
        });
    }
    let total = scan.total();
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;

    fn reference_scan(values: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(values.len());
        let mut acc = 0u64;
        for &v in values {
            out.push(acc);
            acc = acc.wrapping_add(v);
        }
        (out, acc)
    }

    #[test]
    fn empty_scan() {
        let pool = Pool::new(4);
        let (pfx, total) = parallel_exclusive_scan(&pool, &[]);
        assert!(pfx.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn single_element() {
        let pool = Pool::new(4);
        let (pfx, total) = parallel_exclusive_scan(&pool, &[7]);
        assert_eq!(pfx, vec![0]);
        assert_eq!(total, 7);
    }

    #[test]
    fn matches_reference_small() {
        let pool = Pool::new(8);
        let values: Vec<u64> = (0..100).map(|i| (i * 37 + 11) % 255).collect();
        let (pfx, total) = parallel_exclusive_scan(&pool, &values);
        let (rpfx, rtotal) = reference_scan(&values);
        assert_eq!(pfx, rpfx);
        assert_eq!(total, rtotal);
    }

    #[test]
    fn matches_reference_large_many_threads() {
        let pool = Pool::new(16);
        let values: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(2654435761) % 1000)
            .collect();
        let (pfx, total) = parallel_exclusive_scan(&pool, &values);
        let (rpfx, rtotal) = reference_scan(&values);
        assert_eq!(pfx, rpfx);
        assert_eq!(total, rtotal);
    }

    #[test]
    fn sequential_publish_in_order() {
        let scan = LookbackScan::new(4);
        assert_eq!(scan.publish(0, 5), 0);
        assert_eq!(scan.publish(1, 3), 5);
        assert_eq!(scan.publish(2, 0), 8);
        assert_eq!(scan.publish(3, 2), 8);
        assert_eq!(scan.total(), 10);
    }

    #[test]
    #[should_panic(expected = "published twice")]
    fn double_publish_panics() {
        let scan = LookbackScan::new(2);
        scan.publish(0, 1);
        scan.publish(0, 1);
    }

    #[test]
    fn wrapping_does_not_panic() {
        let scan = LookbackScan::new(2);
        scan.publish(0, u64::MAX);
        let excl = scan.publish(1, 5);
        assert_eq!(excl, u64::MAX);
        assert_eq!(scan.total(), 4); // wrapped
    }
}
