//! Disjoint-index shared slice writes.
//!
//! GPU kernels routinely have every thread block write its own disjoint
//! region of a shared output buffer. Safe Rust has no direct equivalent for
//! dynamically-scheduled indices, so [`DisjointSlice`] provides the minimal
//! unsafe core: a `Sync` wrapper over `&mut [T]` whose `get_mut` hands out
//! raw disjoint element access. The (small) proof obligation is on the
//! caller: no index may be accessed by two tasks.

use std::cell::UnsafeCell;

/// A shared view over a mutable slice permitting concurrent writes to
/// *disjoint* indices.
///
/// # Safety contract
///
/// [`DisjointSlice::get_mut`] is `unsafe`: callers must guarantee that no
/// index is handed to two concurrently running tasks. [`crate::Pool::run`]
/// provides exactly that guarantee (each index claimed once), which is why
/// `Pool::map` can use this soundly.
pub struct DisjointSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: `DisjointSlice` only exposes element access through the unsafe
// `get_mut`, whose contract forbids aliased concurrent access. `T: Send` is
// required because elements are written from other threads.
unsafe impl<'a, T: Send> Sync for DisjointSlice<'a, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    /// Wrap a mutable slice. The borrow is held for `'a`, so the original
    /// slice is inaccessible while the wrapper lives.
    pub fn new(slice: &'a mut [T]) -> Self {
        let len = slice.len();
        let ptr = slice.as_mut_ptr() as *const UnsafeCell<T>;
        // SAFETY: `UnsafeCell<T>` is `repr(transparent)` over `T`, and we
        // hold the unique borrow of the slice for 'a.
        let data = unsafe { std::slice::from_raw_parts(ptr, len) };
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Obtain a mutable reference to element `i`.
    ///
    /// # Safety
    ///
    /// The caller must ensure `i` is not accessed (read or written) by any
    /// other thread while the returned reference is live, and that no two
    /// calls with the same `i` overlap.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.data[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;

    #[test]
    fn parallel_disjoint_writes_land() {
        let mut v = vec![0usize; 4096];
        {
            let cells = DisjointSlice::new(&mut v);
            Pool::new(8).run(4096, |i| unsafe { *cells.get_mut(i) = i + 1 });
        }
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i + 1);
        }
    }

    #[test]
    fn len_and_empty() {
        let mut v = vec![1u8; 3];
        let s = DisjointSlice::new(&mut v);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let mut e: Vec<u8> = vec![];
        let s = DisjointSlice::new(&mut e);
        assert!(s.is_empty());
    }
}
