//! SIMT warp emulation: `WS` lanes executing in lockstep.
//!
//! The paper's §4 is about porting warp-level CUDA primitives to AMD's
//! 64-thread wavefronts; its Listing 1 shows the prefix-sum kernel that
//! had to gain an extra `__shfl_up` level guarded by `#if WS == 64`. This
//! module reproduces those primitives *functionally* — lane-array in,
//! lane-array out — so the ported code path can be executed and tested on
//! the CPU at both warp sizes, including the exact bug the port fixes
//! (see `truncated_scan_is_wrong_at_warp64` below).

/// Emulated `__shfl_up_sync`: every lane receives the value of the lane
/// `delta` below it; lanes whose source would be negative keep their own
/// value (CUDA semantics for out-of-range sources).
pub fn shfl_up<const WS: usize, T: Copy>(vals: &[T; WS], delta: usize) -> [T; WS] {
    let mut out = *vals;
    for lane in 0..WS {
        if lane >= delta {
            out[lane] = vals[lane - delta];
        }
    }
    out
}

/// Emulated `__shfl_down_sync` (own value when the source overflows).
pub fn shfl_down<const WS: usize, T: Copy>(vals: &[T; WS], delta: usize) -> [T; WS] {
    let mut out = *vals;
    for lane in 0..WS {
        if lane + delta < WS {
            out[lane] = vals[lane + delta];
        }
    }
    out
}

/// Emulated `__shfl_xor_sync`: lane `i` receives the value of lane
/// `i ^ mask` (the butterfly used by BIT_4/BIT_8's transposes, §6.4).
pub fn shfl_xor<const WS: usize, T: Copy>(vals: &[T; WS], mask: usize) -> [T; WS] {
    let mut out = *vals;
    for (lane, slot) in out.iter_mut().enumerate() {
        let src = lane ^ mask;
        if src < WS {
            *slot = vals[src];
        }
    }
    out
}

/// Emulated `__ballot_sync`: bit `i` of the result is lane `i`'s predicate.
pub fn ballot<const WS: usize>(preds: &[bool; WS]) -> u64 {
    let mut word = 0u64;
    for (lane, &p) in preds.iter().enumerate() {
        if p {
            word |= 1 << lane;
        }
    }
    word
}

/// The paper's Listing 1: warp-inclusive prefix sum via `__shfl_up`.
///
/// ```text
/// int tmp = __shfl_up(val, 1);  if (lane >= 1)  val += tmp;
/// int tmp = __shfl_up(val, 2);  if (lane >= 2)  val += tmp;
/// …
/// int tmp = __shfl_up(val, 16); if (lane >= 16) val += tmp;
/// #if defined(WS) && (WS == 64)
/// int tmp = __shfl_up(val, 32); if (lane >= 32) val += tmp;   // the §4 fix
/// #endif
/// ```
///
/// The const generic replaces the preprocessor: `WS = 32` runs five
/// doubling steps, `WS = 64` runs six.
pub fn warp_inclusive_scan<const WS: usize>(vals: &[i64; WS]) -> [i64; WS] {
    let mut val = *vals;
    let mut delta = 1;
    while delta < WS {
        let tmp = shfl_up(&val, delta);
        for lane in 0..WS {
            if lane >= delta {
                val[lane] = val[lane].wrapping_add(tmp[lane]);
            }
        }
        delta *= 2;
    }
    val
}

/// The *unported* Listing 1: the loop stops after the `delta = 16` step
/// regardless of warp size — correct at `WS = 32`, silently wrong at
/// `WS = 64`. Kept public so tests (and readers) can see exactly what the
/// §4 port fixes.
pub fn warp_inclusive_scan_truncated<const WS: usize>(vals: &[i64; WS]) -> [i64; WS] {
    let mut val = *vals;
    let mut delta = 1;
    while delta < WS.min(32) {
        let tmp = shfl_up(&val, delta);
        for lane in 0..WS {
            if lane >= delta {
                val[lane] = val[lane].wrapping_add(tmp[lane]);
            }
        }
        delta *= 2;
    }
    val
}

/// Block-level inclusive prefix sum built from warp scans, the way LC's
/// decoder kernels do it: scan each warp, scan the warp totals, add the
/// carry — exercised here over `WARPS · WS` lanes.
pub fn block_inclusive_scan<const WS: usize>(vals: &[i64]) -> Vec<i64> {
    assert!(vals.len().is_multiple_of(WS), "block must be whole warps");
    let warps = vals.len() / WS;
    let mut out = vec![0i64; vals.len()];
    let mut warp_totals = vec![0i64; warps];
    for w in 0..warps {
        let mut lane_vals = [0i64; WS];
        lane_vals.copy_from_slice(&vals[w * WS..(w + 1) * WS]);
        let scanned = warp_inclusive_scan(&lane_vals);
        out[w * WS..(w + 1) * WS].copy_from_slice(&scanned);
        warp_totals[w] = scanned[WS - 1];
    }
    // Exclusive scan of warp totals (a tiny serial loop on the GPU too —
    // warp 0 handles it), then add carries.
    let mut carry = 0i64;
    for w in 0..warps {
        for lane in 0..WS {
            out[w * WS + lane] = out[w * WS + lane].wrapping_add(carry);
        }
        carry = carry.wrapping_add(warp_totals[w]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_inclusive(vals: &[i64]) -> Vec<i64> {
        let mut acc = 0i64;
        vals.iter()
            .map(|&v| {
                acc = acc.wrapping_add(v);
                acc
            })
            .collect()
    }

    fn lanes<const WS: usize>() -> [i64; WS] {
        let mut v = [0i64; WS];
        for (i, x) in v.iter_mut().enumerate() {
            *x = (i as i64 * 37 + 11) % 101 - 50;
        }
        v
    }

    #[test]
    fn shfl_up_basic() {
        let vals: [i64; 32] = core::array::from_fn(|i| i as i64);
        let up2 = shfl_up(&vals, 2);
        assert_eq!(up2[0], 0, "out-of-range keeps own value");
        assert_eq!(up2[1], 1);
        assert_eq!(up2[2], 0);
        assert_eq!(up2[31], 29);
    }

    #[test]
    fn shfl_xor_is_an_involution() {
        let vals: [i64; 64] = core::array::from_fn(|i| i as i64 * 3);
        for mask in [1usize, 2, 4, 8, 16, 32] {
            let once = shfl_xor(&vals, mask);
            let twice = shfl_xor(&once, mask);
            assert_eq!(twice, vals, "mask {mask}");
        }
    }

    #[test]
    fn ballot_packs_lane_predicates() {
        let mut preds = [false; 64];
        preds[0] = true;
        preds[63] = true;
        preds[10] = true;
        assert_eq!(ballot(&preds), (1 << 0) | (1 << 10) | (1 << 63));
    }

    #[test]
    fn listing1_scan_correct_at_warp32() {
        let v = lanes::<32>();
        assert_eq!(warp_inclusive_scan(&v).to_vec(), reference_inclusive(&v));
    }

    #[test]
    fn listing1_scan_correct_at_warp64_with_the_port() {
        let v = lanes::<64>();
        assert_eq!(warp_inclusive_scan(&v).to_vec(), reference_inclusive(&v));
    }

    #[test]
    fn truncated_scan_is_wrong_at_warp64() {
        // The exact §4 bug: without the extra shfl_up(32) level, lanes
        // 32..63 miss the contribution of lanes 0..31.
        let v = lanes::<64>();
        let broken = warp_inclusive_scan_truncated(&v);
        let correct = reference_inclusive(&v);
        assert_eq!(&broken[..32], &correct[..32], "low half is fine");
        assert_ne!(
            &broken[32..],
            &correct[32..64],
            "high half is silently wrong"
        );
        // And the same truncation is NOT a bug at warp 32.
        let v32 = lanes::<32>();
        assert_eq!(
            warp_inclusive_scan_truncated(&v32).to_vec(),
            reference_inclusive(&v32)
        );
    }

    #[test]
    fn block_scan_matches_reference_at_both_warp_sizes() {
        let vals: Vec<i64> = (0..512).map(|i| (i * 7919) % 251 - 125).collect();
        assert_eq!(
            block_inclusive_scan::<32>(&vals),
            reference_inclusive(&vals)
        );
        assert_eq!(
            block_inclusive_scan::<64>(&vals),
            reference_inclusive(&vals)
        );
    }

    #[test]
    fn block_scan_warp64_uses_half_the_warps() {
        // 512 threads = 16 warps at WS=32 but 8 at WS=64 — same result,
        // different hierarchy (the §4 porting trade-off).
        let vals: Vec<i64> = (0..512).map(|i| i as i64 % 17).collect();
        assert_eq!(
            block_inclusive_scan::<32>(&vals),
            block_inclusive_scan::<64>(&vals)
        );
    }

    #[test]
    #[should_panic(expected = "whole warps")]
    fn block_scan_rejects_partial_warps() {
        block_inclusive_scan::<32>(&[1, 2, 3]);
    }
}
