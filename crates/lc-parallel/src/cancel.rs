//! Cooperative cancellation for long fan-out jobs.
//!
//! A [`CancelToken`] is a cloneable flag that workers poll between task
//! claims. Cancellation is *cooperative*: nothing is interrupted
//! mid-task — a worker finishes the unit it holds, observes the token at
//! its next claim, and stops. That granularity is exactly what the
//! campaign runner needs: every completed unit has already been
//! journaled, so a cancelled campaign is simply a resumable one.
//!
//! Tokens can additionally carry a **deadline** ([`CancelToken::with_deadline`]):
//! once the instant passes, the token reads as cancelled at every poll.
//! This is how `lc-serve` bounds per-request work — the request's stage
//! loop and the pool's claim loop both poll the same token, so a blown
//! deadline stops chunk fan-out at the next claim boundary.
//!
//! [`CancelToken::watching_signals`] additionally arms the token on
//! SIGINT/SIGTERM via a process-global flag set from an async-signal-safe
//! handler (one atomic store plus one atomic increment). The handler
//! installation is **shared and idempotent**: any number of subsystems
//! (`reproduce`, `lc serve`) may request it, the first call installs, and
//! every later call reuses the same registration. If some *other* code
//! already installed a foreign SIGINT/SIGTERM handler, installation fails
//! with a descriptive [`SignalWatchError`] instead of silently clobbering
//! it; a signal the process inherited as *ignored* (`nohup`, shell
//! background jobs) is respected per-signal — it stays ignored while the
//! rest are watched. The handler also counts deliveries ([`signal_count`]), which is
//! what lets a draining server treat a second Ctrl-C as "stop waiting,
//! exit now".

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Set by the signal handler; read by every signal-watching token.
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);
/// Number of SIGINT/SIGTERM deliveries since handler installation.
static SIGNAL_COUNT: AtomicU64 = AtomicU64::new(0);

/// Installing the shared SIGINT/SIGTERM handler failed because a foreign
/// handler is already registered for `signal`.
///
/// The install never clobbers an existing registration: whoever owns the
/// process's signal disposition keeps it, and the caller gets this error
/// to surface ("cannot watch signals: ...") instead of UB or a silent
/// double-install race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalWatchError {
    /// The signal whose disposition conflicted (2 = SIGINT, 15 = SIGTERM).
    pub signal: i32,
}

impl fmt::Display for SignalWatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.signal {
            2 => "SIGINT",
            15 => "SIGTERM",
            other => return write!(f, "a conflicting handler is installed for signal {other}"),
        };
        write!(
            f,
            "a conflicting {name} handler is already installed by other code; \
             refusing to replace it (signal watching is shared — install it \
             through lc-parallel everywhere or nowhere)"
        )
    }
}

impl std::error::Error for SignalWatchError {}

#[cfg(unix)]
mod sys {
    use super::{SignalWatchError, SIGNAL_COUNT, SIGNAL_FLAG};
    use std::sync::atomic::Ordering;
    use std::sync::Mutex;

    pub(super) const SIGINT: i32 = 2;
    pub(super) const SIGTERM: i32 = 15;

    /// POSIX `SIG_DFL`. (`SIG_IGN` is 1; anything else is a handler.)
    const SIG_DFL: usize = 0;
    /// POSIX `SIG_IGN`: the signal is deliberately ignored.
    const SIG_IGN: usize = 1;
    /// POSIX `signal(2)` error return (`SIG_ERR`, i.e. `-1`).
    const SIG_ERR: usize = usize::MAX;

    /// Async-signal-safe by construction: the body is two lock-free
    /// atomic ops (no allocation, no locks, no formatting).
    pub(super) extern "C" fn handle_signal(_signum: i32) {
        SIGNAL_FLAG.store(true, Ordering::SeqCst);
        SIGNAL_COUNT.fetch_add(1, Ordering::SeqCst);
    }

    extern "C" {
        // POSIX `signal(2)`, declared locally to avoid a libc
        // dependency. The handler and the returned previous handler are
        // both pointer-sized.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Whether installation already succeeded. A `Mutex` (not `Once`)
    /// so concurrent first-installs serialize and a failed attempt can
    /// be retried after the conflict is resolved.
    static INSTALLED: Mutex<bool> = Mutex::new(false);

    /// Classify the previous disposition `signal(2)` returned: only the
    /// default disposition (or our own handler, for an idempotent
    /// re-install) may be replaced. Foreign handlers are conflicts;
    /// `SIG_IGN` is neither (see [`respected`]).
    pub(super) fn replaceable(prev: usize) -> bool {
        prev == SIG_DFL || prev == handle_signal as *const () as usize
    }

    /// `SIG_IGN` is a deliberate disposition the process inherited —
    /// `nohup`, or a non-interactive shell backgrounding a job sets
    /// SIGINT to ignore. The POSIX convention is to honor it: leave the
    /// signal ignored rather than either clobbering it or refusing the
    /// whole install (a backgrounded `lc serve &` must still drain on
    /// SIGTERM even though its SIGINT arrives ignored).
    pub(super) fn respected(prev: usize) -> bool {
        prev == SIG_IGN
    }

    pub(super) fn install_handlers() -> Result<(), SignalWatchError> {
        let mut installed = INSTALLED.lock().unwrap_or_else(|p| p.into_inner());
        if *installed {
            return Ok(());
        }
        for sig in [SIGINT, SIGTERM] {
            let prev = unsafe { signal(sig, handle_signal as *const () as usize) };
            if prev == SIG_ERR || respected(prev) || !replaceable(prev) {
                // Restore whatever was there (best-effort for SIG_ERR,
                // where nothing was changed).
                if prev != SIG_ERR {
                    unsafe { signal(sig, prev) };
                }
                if prev != SIG_ERR && respected(prev) {
                    // Inherited-ignored: keep it ignored, keep going —
                    // the other signals still arm the flag.
                    continue;
                }
                // Foreign handler (or SIG_ERR): report which signal
                // conflicted. A SIGINT already swapped to our handler
                // stays ours only if it was replaceable, which the loop
                // order guarantees.
                return Err(SignalWatchError { signal: sig });
            }
        }
        *installed = true;
        Ok(())
    }

    /// Tear down for unit tests only: restore the default disposition so
    /// a test can exercise the first-install and conflict paths.
    #[cfg(test)]
    pub(super) fn reset_for_test() {
        let mut installed = INSTALLED.lock().unwrap_or_else(|p| p.into_inner());
        unsafe {
            signal(SIGINT, SIG_DFL);
            signal(SIGTERM, SIG_DFL);
        }
        *installed = false;
        SIGNAL_FLAG.store(false, Ordering::SeqCst);
        SIGNAL_COUNT.store(0, Ordering::SeqCst);
    }

    /// Install a foreign (non-lc) handler, for conflict tests.
    #[cfg(test)]
    pub(super) fn install_foreign_for_test(sig: i32) {
        extern "C" fn foreign(_signum: i32) {}
        unsafe {
            signal(sig, foreign as *const () as usize);
        }
    }

    /// Set `SIG_IGN`, simulating the disposition a backgrounded job
    /// inherits from a non-interactive shell (or `nohup`).
    #[cfg(test)]
    pub(super) fn set_ignored_for_test(sig: i32) {
        unsafe {
            signal(sig, SIG_IGN);
        }
    }

    /// Query the current disposition without changing it (set + restore).
    #[cfg(test)]
    pub(super) fn disposition_for_test(sig: i32) -> usize {
        let prev = unsafe { signal(sig, SIG_DFL) };
        unsafe { signal(sig, prev) };
        prev
    }

    /// Address of our shared handler, for disposition assertions.
    #[cfg(test)]
    pub(super) fn own_handler_addr() -> usize {
        handle_signal as *const () as usize
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install_handlers() -> Result<(), super::SignalWatchError> {
        Ok(())
    }
}

/// Number of SIGINT/SIGTERM deliveries observed by the shared handler
/// since installation. `0` until the first signal; a drain loop that
/// sees this reach `2` knows the operator pressed Ctrl-C again and wants
/// out *now*.
pub fn signal_count() -> u64 {
    SIGNAL_COUNT.load(Ordering::SeqCst)
}

/// A cloneable cancellation flag polled by [`crate::Pool`] workers
/// between task claims. All clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    watch_signals: bool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only trips via [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally trips once `deadline` passes. The
    /// deadline is evaluated lazily at each [`is_cancelled`]
    /// (Self::is_cancelled) poll — there is no timer thread.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// A clone sharing this token's flag (and signal watch) but with its
    /// own `deadline`: tripping the parent trips the child, and the
    /// child additionally trips when its deadline passes. This is the
    /// request-scoped shape `lc-serve` uses — one server-wide abort
    /// token, one deadline per request.
    pub fn child_with_deadline(&self, deadline: Instant) -> Self {
        Self {
            flag: Arc::clone(&self.flag),
            watch_signals: self.watch_signals,
            deadline: Some(deadline),
        }
    }

    /// A token that additionally trips when the process receives SIGINT
    /// or SIGTERM. The process-global handler is installed on first use,
    /// shared by every later caller, and **never replaces a foreign
    /// handler**: if other code already owns the signal disposition this
    /// returns a [`SignalWatchError`] instead of racing it.
    pub fn watching_signals() -> Result<Self, SignalWatchError> {
        sys::install_handlers()?;
        Ok(Self {
            flag: Arc::new(AtomicBool::new(false)),
            watch_signals: true,
            deadline: None,
        })
    }

    /// Trip the token: workers stop at their next claim.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested — manually, by a passed
    /// deadline, or (for a signal-watching token) by SIGINT/SIGTERM.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || (self.watch_signals && SIGNAL_FLAG.load(Ordering::Relaxed))
            || self.deadline_exceeded()
    }

    /// Whether this token's deadline (if any) has passed. Distinguishes
    /// "request ran out of time" from "server is shutting down" when
    /// both share a flag via [`child_with_deadline`](Self::child_with_deadline).
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The token's deadline, if it carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether this token's cancellation came from a signal rather than
    /// a manual [`cancel`](Self::cancel) call or a deadline.
    pub fn cancelled_by_signal(&self) -> bool {
        self.watch_signals && SIGNAL_FLAG.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Signal installation state is process-global; every test that
    /// installs, resets, or fires handlers holds this lock.
    static SIGNAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SIGNAL_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn manual_cancel_trips_all_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        assert!(!t.cancelled_by_signal(), "manual cancel is not a signal");
        assert!(!t.deadline_exceeded(), "manual cancel is not a deadline");
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        a.cancel();
        let b = CancelToken::new();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn past_deadline_reads_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.deadline_exceeded());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
        assert!(!future.deadline_exceeded());
        assert!(future.deadline().is_some());
    }

    #[test]
    fn child_deadline_shares_parent_flag() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled(), "parent cancel reaches the child");
        assert!(!child.deadline_exceeded(), "but not via the deadline");

        let parent = CancelToken::new();
        let expired = parent.child_with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled());
        assert!(!parent.is_cancelled(), "child deadline never trips parent");
    }

    #[cfg(unix)]
    #[test]
    fn signal_flag_trips_watching_tokens_only() {
        let _serial = serial();
        sys::reset_for_test();
        let watching = CancelToken::watching_signals().unwrap();
        let manual = CancelToken::new();
        assert!(!watching.is_cancelled());
        assert_eq!(signal_count(), 0);
        sys::handle_signal(2); // exactly what the kernel would invoke
        assert!(watching.is_cancelled());
        assert!(watching.cancelled_by_signal());
        assert!(!manual.is_cancelled(), "plain tokens ignore signals");
        assert_eq!(signal_count(), 1);
        sys::handle_signal(15);
        assert_eq!(signal_count(), 2, "each delivery counts");
        sys::reset_for_test();
        assert!(!watching.is_cancelled());
    }

    #[cfg(unix)]
    #[test]
    fn install_is_idempotent_and_shared() {
        let _serial = serial();
        sys::reset_for_test();
        // Two subsystems (think `reproduce` and `lc serve`) both request
        // signal watching; both must succeed against one registration.
        let a = CancelToken::watching_signals().unwrap();
        let b = CancelToken::watching_signals().unwrap();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        sys::handle_signal(15);
        assert!(a.is_cancelled() && b.is_cancelled(), "watch is shared");
        sys::reset_for_test();
    }

    #[cfg(unix)]
    #[test]
    fn foreign_handler_is_a_reported_conflict_not_a_clobber() {
        let _serial = serial();
        sys::reset_for_test();
        sys::install_foreign_for_test(2); // someone else owns SIGINT
        let err = CancelToken::watching_signals().unwrap_err();
        assert_eq!(err.signal, 2);
        let msg = err.to_string();
        assert!(
            msg.contains("SIGINT") && msg.contains("conflicting"),
            "{msg}"
        );
        // The failed install must not leave our handler half-registered:
        // after the foreign handler is removed, installation succeeds.
        sys::reset_for_test();
        let t = CancelToken::watching_signals().unwrap();
        assert!(!t.is_cancelled());
        sys::reset_for_test();
    }

    #[cfg(unix)]
    #[test]
    fn foreign_sigterm_conflict_restores_sigint() {
        let _serial = serial();
        sys::reset_for_test();
        sys::install_foreign_for_test(15); // SIGTERM owned, SIGINT free
        let err = CancelToken::watching_signals().unwrap_err();
        assert_eq!(err.signal, 15);
        // SIGINT was swapped to ours and rolled back to SIG_DFL, so a
        // fresh install after clearing the conflict sees no residue.
        sys::reset_for_test();
        assert!(CancelToken::watching_signals().is_ok());
        sys::reset_for_test();
    }

    #[cfg(unix)]
    #[test]
    fn replaceable_classification() {
        assert!(sys::replaceable(0), "SIG_DFL is replaceable");
        assert!(
            sys::replaceable(sys::handle_signal as *const () as usize),
            "our own handler re-installs"
        );
        assert!(!sys::replaceable(1), "SIG_IGN is a deliberate disposition");
        assert!(sys::respected(1), "… and it is respected, not a conflict");
        assert!(!sys::respected(0), "SIG_DFL is replaced, not respected");
        assert!(!sys::replaceable(0xDEAD_BEE0), "foreign handlers conflict");
        assert!(!sys::respected(0xDEAD_BEE0), "foreign handlers conflict");
    }

    /// A non-interactive shell backgrounding `lc serve &` hands the
    /// child SIGINT = SIG_IGN. That must not refuse the install: SIGINT
    /// stays ignored (honoring the nohup convention) while SIGTERM is
    /// still watched — otherwise a scripted server could never drain.
    #[cfg(unix)]
    #[test]
    fn inherited_sig_ign_is_respected_not_a_conflict() {
        let _serial = serial();
        sys::reset_for_test();
        sys::set_ignored_for_test(2);
        let t = CancelToken::watching_signals().expect("SIG_IGN must not refuse the install");
        assert!(!t.is_cancelled());
        assert_eq!(sys::disposition_for_test(2), 1, "SIGINT left ignored");
        assert_eq!(
            sys::disposition_for_test(15),
            sys::own_handler_addr(),
            "SIGTERM is ours"
        );
        sys::handle_signal(15);
        assert!(t.is_cancelled(), "drain still reachable via SIGTERM");
        sys::reset_for_test();
    }
}
