//! Cooperative cancellation for long fan-out jobs.
//!
//! A [`CancelToken`] is a cloneable flag that workers poll between task
//! claims. Cancellation is *cooperative*: nothing is interrupted
//! mid-task — a worker finishes the unit it holds, observes the token at
//! its next claim, and stops. That granularity is exactly what the
//! campaign runner needs: every completed unit has already been
//! journaled, so a cancelled campaign is simply a resumable one.
//!
//! [`CancelToken::watching_signals`] additionally arms the token on
//! SIGINT/SIGTERM via a process-global flag set from an async-signal-safe
//! handler (a single atomic store). The handler is installed once,
//! directly against POSIX `signal(2)` — this crate stays libc-free.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Set by the signal handler; read by every signal-watching token.
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use super::SIGNAL_FLAG;
    use std::sync::atomic::Ordering;
    use std::sync::Once;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Async-signal-safe by construction: the body is one atomic store.
    pub(super) extern "C" fn handle_signal(_signum: i32) {
        SIGNAL_FLAG.store(true, Ordering::SeqCst);
    }

    static INSTALL: Once = Once::new();

    pub(super) fn install_handlers() {
        extern "C" {
            // POSIX `signal(2)`, declared locally to avoid a libc
            // dependency. The return value (the previous handler) is
            // pointer-sized; we ignore it.
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        INSTALL.call_once(|| unsafe {
            signal(SIGINT, handle_signal);
            signal(SIGTERM, handle_signal);
        });
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install_handlers() {}
}

/// A cloneable cancellation flag polled by [`crate::Pool`] workers
/// between task claims. All clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    watch_signals: bool,
}

impl CancelToken {
    /// A token that only trips via [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally trips when the process receives SIGINT
    /// or SIGTERM. Installs the (idempotent, process-global) signal
    /// handlers on first use.
    pub fn watching_signals() -> Self {
        sys::install_handlers();
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            watch_signals: true,
        }
    }

    /// Trip the token: workers stop at their next claim.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested (manually or, for a
    /// signal-watching token, by SIGINT/SIGTERM).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || (self.watch_signals && SIGNAL_FLAG.load(Ordering::Relaxed))
    }

    /// Whether this token's cancellation came from a signal rather than
    /// a manual [`cancel`](Self::cancel) call.
    pub fn cancelled_by_signal(&self) -> bool {
        self.watch_signals && SIGNAL_FLAG.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_trips_all_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        assert!(!t.cancelled_by_signal(), "manual cancel is not a signal");
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        a.cancel();
        let b = CancelToken::new();
        assert!(!b.is_cancelled());
    }

    #[cfg(unix)]
    #[test]
    fn signal_flag_trips_watching_tokens_only() {
        // This is the only test that touches the process-global flag; it
        // restores it before returning so concurrently-running tests
        // with watching tokens (there are none today) stay unaffected.
        let watching = CancelToken::watching_signals();
        let manual = CancelToken::new();
        assert!(!watching.is_cancelled());
        sys::handle_signal(2); // exactly what the kernel would invoke
        assert!(watching.is_cancelled());
        assert!(watching.cancelled_by_signal());
        assert!(!manual.is_cancelled(), "plain tokens ignore signals");
        SIGNAL_FLAG.store(false, Ordering::SeqCst);
        assert!(!watching.is_cancelled());
    }
}
