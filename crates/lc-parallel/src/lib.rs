//! Chunk-parallel execution substrate for the LC reproduction.
//!
//! The GPU version of LC assigns one 16 kB chunk to each 512-thread block
//! and synchronizes the blocks' output placement with a single-pass
//! decoupled look-back prefix scan (Merrill & Garland, NVR-2016-002).
//! This crate provides the CPU equivalents used by `lc-core`:
//!
//! * [`Pool`] — a fixed-size scoped thread pool with dynamic (atomic
//!   work-index) scheduling, standing in for the GPU's block scheduler;
//! * [`LookbackScan`] — a faithful decoupled look-back scan used by the
//!   encoder to compute compressed-chunk output offsets in one pass;
//! * [`DisjointSlice`] — a sound disjoint-index writer so that each task
//!   can fill exactly one slot of a shared output slice without locks.
//!
//! All atomics use the acquire/release protocol described in
//! "Rust Atomics and Locks" ch. 3: a publisher performs its payload writes
//! before a `Release` status store, and consumers `Acquire`-load the status
//! before reading the payload.

pub mod cancel;
pub mod pool;
pub mod scan;
pub mod slice;
pub mod warp;

pub use cancel::{signal_count, CancelToken, SignalWatchError};
pub use pool::Pool;
pub use scan::{LookbackScan, SCAN_STATUS_AGGREGATE, SCAN_STATUS_INVALID, SCAN_STATUS_PREFIX};
pub use slice::DisjointSlice;

/// Default worker count: the machine's available parallelism, clamped to
/// `[1, 32]` so oversubscribed CI machines do not thrash.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 32)
}

/// Deliver `SIGKILL` to the current process and never return.
///
/// This is the muscle behind `lc-chaos`'s `Site::UnitBoundary` kill
/// fault: the chaos crate (which forbids `unsafe`) only *schedules* the
/// kill; the campaign executor calls this to actually die. SIGKILL
/// cannot be caught or blocked, so the process ends exactly as if an
/// external `kill -9` had struck — no destructors, no atexit, no
/// buffered-write flushes. On non-unix targets it degrades to
/// `abort()`, which has the same "no cleanup runs" property.
#[cfg(unix)]
pub fn raise_sigkill() -> ! {
    extern "C" {
        fn raise(signum: i32) -> i32;
    }
    loop {
        // SAFETY: `raise(2)` is async-signal-safe and takes no pointers;
        // SIGKILL (9) is a valid signal number. The loop guards against
        // the (theoretical) window between raise returning and delivery.
        unsafe {
            raise(9);
        }
        std::thread::yield_now();
    }
}

/// Non-unix fallback: abort. Same contract — the process dies without
/// running any cleanup.
#[cfg(not(unix))]
pub fn raise_sigkill() -> ! {
    std::process::abort()
}

/// Extract a human-readable message from a `catch_unwind` payload.
///
/// Panic payloads are `&str` for `panic!("literal")` and `String` for
/// formatted panics; anything else (custom `panic_any` values) degrades to
/// a fixed marker rather than dropping the event.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}
